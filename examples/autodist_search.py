"""Automatic data-distribution search (Section 9's closing speculation).

The paper suggests running access normalization "in reverse" to choose the
data distribution, flagging load balance as the open difficulty.  The
search below sidesteps the difficulty directly: every candidate assignment
of wrapped/blocked distributions is pushed through the complete pipeline
(normalize -> SPMD codegen -> event-exact simulation), so locality, block
transfers and load balance are priced together in the simulated makespan.

Run:  python examples/autodist_search.py
"""

from repro.bench import format_table
from repro.blas import gemm_program, jacobi_program
from repro.core import access_normalize
from repro.core.autodist import search_distributions
from repro.numa import butterfly_gp1000


def search(title, program, processors=8):
    print(f"\n=== {title} (P={processors}) ===")
    outcome = search_distributions(
        program, processors=processors, machine=butterfly_gp1000()
    )
    rows = [
        (rank + 1, candidate.describe(),
         f"{candidate.time_us:,.0f}",
         ", ".join(candidate.transformation_labels))
        for rank, candidate in enumerate(outcome.ranking[:5])
    ]
    rows.append(("...", f"(worst of {outcome.evaluated})",
                 f"{outcome.ranking[-1].time_us:,.0f}", ""))
    print(format_table(["rank", "distribution", "time (us)", "derived T"], rows))
    best = outcome.best
    spread = outcome.ranking[-1].time_us / best.time_us
    print(f"best-to-worst spread: {spread:.2f}x")
    return best


def main() -> None:
    best_gemm = search("GEMM 24x24", gemm_program(24))
    print("\nThe winner ties the paper's all-wrapped-column choice "
          "(rows and columns are symmetric for GEMM).")

    best_jacobi = search("Jacobi stencil 24x24", jacobi_program(24))
    print("\nFor the stencil the search confirms that either wrapped axis "
          "works once the pass is free to interchange the loops; what it "
          "refuses to pick is a distribution the transformed code cannot "
          "keep local.")

    # Show the transformation the winning GEMM assignment induces.
    program = gemm_program(24)
    result = access_normalize(
        type(program)(
            nest=program.nest,
            arrays=program.arrays,
            distributions={
                k: v for k, v in best_gemm.distributions.items() if v
            },
            params=program.params,
            name=program.name,
        )
    )
    print("\nderived transformation for the winner:")
    print(result.report())


if __name__ == "__main__":
    main()
