"""A tour of the front-end DSL and the analysis machinery.

Shows what the compiler sees at every stage for a user-written program:
the parsed IR, the data access matrix with its ranking, the dependence
matrix, the derived transformation with its classification, and both code
emitters (paper-style pseudo-C and executable Python).

Run:  python examples/dsl_tour.py
"""

from repro import access_normalize, generate_spmd, parse_program, render_node_program
from repro.codegen import emit_python
from repro.dependence import analyze_dependences
from repro.ir import render_nest

SOURCE = """
program wavefront
param N = 96
real A(N, N)   distribute (*, wrapped)
real S(N, 2*N) distribute (*, wrapped)

for i = 1, N-1
    for j = 1, N-1
        S[i, i+j] = S[i, i+j] + A[i, j]
"""


def main() -> None:
    program = parse_program(SOURCE)
    print("=== parsed program ===")
    print(render_nest(program.nest))
    for decl in program.arrays:
        dist = program.distribution(decl.name)
        print(f"  {decl}: {dist.describe() if dist else 'replicated'}")

    print("\n=== dependences ===")
    deps = analyze_dependences(program.nest, program.bound_params())
    if deps:
        for dep in deps:
            print(f"  {dep}")
    else:
        print("  none (fully parallel nest)")

    result = access_normalize(program)
    print("\n=== access normalization ===")
    print(result.report())

    print("\n=== transformed nest ===")
    print(render_nest(result.transformed.nest))

    node = generate_spmd(result.transformed)
    print("\n=== pseudo-C node program ===")
    print(render_node_program(node))

    print("\n=== generated Python (the executable target) ===")
    print(emit_python(node.program))


if __name__ == "__main__":
    main()
