"""Banded SYR2K on a simulated NUMA machine (Section 8.2 / Figure 5).

The rank-2k update is the paper's showcase for block transfers: even after
access normalization many accesses stay non-local, so fetching whole band
columns with single block transfers is what makes the code scale.

Run:  python examples/syr2k_numa.py
"""

import numpy as np

from repro.bench import figure_machine, run_speedup_sweep, speedup_table
from repro.blas import PAPER_PRIORITY, syr2k_program, syr2k_reference
from repro.codegen import generate_spmd, render_node_program
from repro.core import access_normalize
from repro.ir import allocate_arrays
from repro.numa import simulate


def main() -> None:
    n, b = 200, 24
    program = syr2k_program(n, b)
    result = access_normalize(program, priority=PAPER_PRIORITY)
    print("=== transformation (matches Section 8.2) ===")
    print(result.report())

    nodes = {
        "syr2k": generate_spmd(program, block_transfers=False),
        "syr2kT": generate_spmd(result.transformed, block_transfers=False),
        "syr2kB": generate_spmd(result.transformed),
    }
    print("\n=== node program (syr2kB) ===")
    print(render_node_program(nodes["syr2kB"]))

    # Functional verification against a dense numpy reference.
    arrays = allocate_arrays(program, seed=1)
    expected = syr2k_reference(arrays, n, b)
    simulate(nodes["syr2kB"], processors=6, arrays=arrays, mode="execute")
    assert np.allclose(arrays["Cb"], expected), "parallel SYR2K disagrees"
    print("\nparallel execution verified against dense numpy reference ✓")

    procs = (1, 4, 8, 16, 24, 28)
    series = run_speedup_sweep(
        nodes, procs, machine=figure_machine(), baseline="syr2kB"
    )
    print(f"\n=== speedups (N={n}, b={b}, simulated GP-1000) ===")
    print(speedup_table(procs, series))
    print("\nNote how syr2kB pulls away from syr2kT: block transfers are")
    print("what pays here, exactly as Section 8.2 reports.")


if __name__ == "__main__":
    main()
