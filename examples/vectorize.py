"""The Section 9 application: access normalization for vector machines.

CRAY-style vector units need constant-stride loads; normalization turns the
column-crossing access ``A[i, j+k]`` of the Figure 1 program into the
unit-stride ``A[w, v]``.  This example prints the per-reference strides
before and after, and the predicted vector execution time under a simple
CRAY-like cost model.

Run:  python examples/vectorize.py
"""

from repro import access_normalize, parse_program
from repro.ir import render_nest
from repro.vector import VectorCostModel, stride_report, vector_loop_cycles

SOURCE = """
program figure1
param N1 = 512
param N2 = 512
param b = 16
real B(N1, b)         distribute (*, wrapped)
real A(N1, N1+b+N2)   distribute (*, wrapped)

for i = 0, N1-1
    for j = i, i+b-1
        for k = 0, N2-1
            B[i, j-i] = B[i, j-i] + A[i, j+k]
"""


def show_strides(title, program) -> None:
    print(f"\n=== {title} ===")
    print(render_nest(program.nest))
    innermost = program.nest.indices[-1]
    for info in stride_report(program):
        kind = "write" if info.is_write else "read "
        stride = info.stride
        label = (
            "unit stride (vectorizes perfectly)" if stride == 1 else
            "loop invariant (scalar register)" if stride == 0 else
            f"stride {stride} (bank conflicts / gather)"
        )
        print(f"  {kind} {info.ref}: per-{innermost} {label}")


def main() -> None:
    program = parse_program(SOURCE)
    show_strides("original program", program)

    result = access_normalize(program)
    show_strides("after access normalization", result.transformed)

    model = VectorCostModel()
    vector_length = 64
    before = vector_loop_cycles(program, vector_length, model=model)
    after = vector_loop_cycles(result.transformed, vector_length, model=model)
    print("\n=== predicted cycles per 64-element inner sweep ===")
    print(f"  original:   {before:8.0f}")
    print(f"  normalized: {after:8.0f}  ({before/after:.2f}x faster)")


if __name__ == "__main__":
    main()
