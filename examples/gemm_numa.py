"""GEMM on a simulated NUMA machine (Section 8.1 / Figure 4).

Builds the three compilations of 128x128 GEMM the paper compares —
untransformed (``gemm``), access-normalized (``gemmT``) and normalized
with block transfers (``gemmB``) — verifies each against numpy, then
prints a speedup table in the shape of Figure 4.

Run:  python examples/gemm_numa.py
"""

import numpy as np

from repro.bench import figure_machine, run_speedup_sweep, speedup_table
from repro.blas import gemm_program, gemm_reference
from repro.codegen import generate_spmd, render_node_program
from repro.core import access_normalize
from repro.ir import allocate_arrays
from repro.numa import simulate


def main() -> None:
    n = 128
    program = gemm_program(n)
    result = access_normalize(program)
    print("=== transformation ===")
    print(result.report())

    nodes = {
        "gemm": generate_spmd(program, block_transfers=False),
        "gemmT": generate_spmd(result.transformed, block_transfers=False),
        "gemmB": generate_spmd(result.transformed),
    }
    print("\n=== node program (gemmB) ===")
    print(render_node_program(nodes["gemmB"]))

    # Functional verification: the parallel execution must equal numpy.
    arrays = allocate_arrays(program, seed=0)
    expected = gemm_reference(arrays)
    simulate(nodes["gemmB"], processors=7, arrays=arrays, mode="execute")
    assert np.allclose(arrays["C"], expected), "parallel GEMM disagrees with numpy"
    print("\nparallel execution verified against numpy ✓")

    procs = (1, 4, 8, 16, 24, 28)
    series = run_speedup_sweep(
        nodes, procs, machine=figure_machine(), baseline="gemmB"
    )
    print(f"\n=== speedups (N={n}, simulated GP-1000) ===")
    print(speedup_table(procs, series))


if __name__ == "__main__":
    main()
