"""Jacobi stencil: the distribution decides the loop structure.

The same 5-point stencil is compiled twice — once with wrapped-row
distributions and once with wrapped-column — and access normalization
derives a different loop order each time: the identity for rows, a loop
interchange for columns, keeping the distributed loop aligned with the
data in both cases.  A deliberately mismatched compilation shows what that
alignment is worth.

Run:  python examples/stencil_numa.py
"""

import numpy as np

from repro.blas import jacobi_program, jacobi_reference
from repro.codegen import generate_spmd, render_node_program
from repro.core import access_normalize
from repro.distributions import wrapped_column, wrapped_row
from repro.ir import allocate_arrays, render_nest
from repro.numa import butterfly_gp1000, simulate


def compile_and_run(title, distribution, mismatch=False):
    n, processors = 128, 8
    program = jacobi_program(n, distribution)
    result = access_normalize(program)
    chosen = program if mismatch else result.transformed
    node = generate_spmd(chosen, block_transfers=False)

    print(f"\n=== {title} ===")
    print(f"T = {result.matrix!r}  ({', '.join(result.labels)})")
    print(render_nest(chosen.nest))

    arrays = allocate_arrays(program, seed=0)
    expected = jacobi_reference(arrays)
    outcome = simulate(
        node, processors=processors, arrays=arrays, mode="execute",
        machine=butterfly_gp1000(),
    )
    assert np.allclose(arrays["B"], expected), "stencil result mismatch"
    totals = outcome.totals
    fraction = totals.local / (totals.local + totals.remote)
    print(f"local fraction: {fraction:6.1%}   time: {outcome.total_time_us/1e3:9.1f} ms")
    return outcome.total_time_us


def main() -> None:
    time_rows = compile_and_run(
        "wrapped rows -> identity (i outermost)", wrapped_row()
    )
    time_cols = compile_and_run(
        "wrapped columns -> interchange (j outermost)", wrapped_column()
    )
    time_bad = compile_and_run(
        "wrapped columns WITHOUT restructuring (mismatch)",
        wrapped_column(),
        mismatch=True,
    )
    print("\nmatched compilations are equivalent "
          f"({time_rows/1e3:.1f} vs {time_cols/1e3:.1f} ms); the mismatch "
          f"costs {time_bad/min(time_rows, time_cols):.2f}x.")

    node = generate_spmd(
        access_normalize(jacobi_program(128, wrapped_column())).transformed,
        block_transfers=False,
    )
    print("\n=== node program (wrapped columns) ===")
    print(render_node_program(node))


if __name__ == "__main__":
    main()
