"""Quickstart: the whole pipeline on the paper's running example.

Takes the Figure 1(a) program (a simplified SYR2K), runs access
normalization, generates the SPMD node program with block transfers, and
simulates it on a BBN Butterfly GP-1000 — printing each artifact so you
can compare against Figures 1(c) and 1(d) of the paper.

Run:  python examples/quickstart.py
"""

from repro import (
    access_normalize,
    butterfly_gp1000,
    generate_spmd,
    parse_program,
    render_node_program,
    simulate,
)
from repro.ir import render_nest

SOURCE = """
program figure1
param N1 = 64
param N2 = 64
param b = 8
real B(N1, b)           distribute (*, wrapped)
real A(N1, N1+b+N2)     distribute (*, wrapped)

for i = 0, N1-1
    for j = i, i+b-1
        for k = 0, N2-1
            B[i, j-i] = B[i, j-i] + A[i, j+k]
"""


def main() -> None:
    program = parse_program(SOURCE)
    print("=== source program (Figure 1(a)) ===")
    print(render_nest(program.nest))

    result = access_normalize(program)
    print("\n=== what the pass did ===")
    print(result.report())

    print("\n=== transformed program (Figure 1(c)) ===")
    print(render_nest(result.transformed.nest))

    node = generate_spmd(result.transformed)
    print("\n=== SPMD node program (Figure 1(d)) ===")
    print(render_node_program(node))

    machine = butterfly_gp1000()
    sequential = simulate(node, processors=1, machine=machine).total_time_us
    print("\n=== simulated speedup on the Butterfly GP-1000 ===")
    for processors in (1, 2, 4, 8):
        outcome = simulate(node, processors=processors, machine=machine)
        print(
            f"P={processors:2d}  time={outcome.total_time_us/1e3:10.1f} ms  "
            f"speedup={sequential/outcome.total_time_us:5.2f}  "
            f"remote={outcome.totals.remote}  "
            f"block transfers={outcome.totals.block_transfers}"
        )


if __name__ == "__main__":
    main()
