"""Dependence analysis: distance vectors and the dependence matrix (Section 6)."""

from repro.dependence.analysis import analyze_dependences, subscript_matrix
from repro.dependence.distance import (
    Dependence,
    DependenceKind,
    dependence_matrix,
    has_non_uniform,
    is_lex_positive,
    lex_sign,
    normalize_lex_positive,
)

__all__ = [
    "Dependence",
    "DependenceKind",
    "analyze_dependences",
    "dependence_matrix",
    "has_non_uniform",
    "is_lex_positive",
    "lex_sign",
    "normalize_lex_positive",
    "subscript_matrix",
]
