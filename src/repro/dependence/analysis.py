"""Dependence analysis for affine loop nests.

The paper represents dependences by constant distance vectors (Section 6);
those arise from *uniform* reference pairs — same array, same linear part of
the subscript functions.  This module extracts them exactly with a
Diophantine solve, and falls back to conservative direction vectors (with
GCD and Banerjee filtering) for non-uniform pairs.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.dependence.distance import (
    Dependence,
    DependenceKind,
    normalize_lex_positive,
)
from repro.ir.affine import AffineExpr as _AffineExpr
from repro.ir.loop import LoopNest
from repro.ir.scalar import ArrayRef
from repro.linalg.diophantine import try_solve_diophantine
from repro.linalg.fraction_matrix import Matrix
from repro.linalg.intmat import vector_gcd


def subscript_matrix(ref: ArrayRef, indices: Sequence[str]) -> Matrix:
    """The linear part of a reference's subscripts w.r.t. the loop indices."""
    return Matrix([sub.coefficient_vector(indices) for sub in ref.subscripts])


def analyze_dependences(
    nest: LoopNest, params: Optional[Mapping[str, int]] = None
) -> List[Dependence]:
    """All data dependences of a loop nest.

    Uniform pairs yield exact distance vectors; non-uniform pairs that
    survive the GCD test (and, when concrete ``params`` allow it, the
    Banerjee bounds test) yield conservative ``'*'`` direction vectors.
    Input (read-read) pairs are ignored.
    """
    indices = list(nest.indices)
    refs = nest.array_refs()
    dependences: List[Dependence] = []
    seen: set = set()

    pairs = list(combinations(range(len(refs)), 2))
    pairs += [(i, i) for i, (_, write) in enumerate(refs) if write]
    for first, second in pairs:
        ref_a, write_a = refs[first]
        ref_b, write_b = refs[second]
        if ref_a.array != ref_b.array:
            continue
        if not (write_a or write_b):
            continue
        if first == second:
            # A write paired with itself only matters when distinct
            # iterations can hit the same element (handled by the uniform
            # solver below with a zero constant difference).
            pass
        for dependence in _pair_dependences(
            nest, indices, ref_a, write_a, ref_b, write_b, params
        ):
            key = (dependence.array, dependence.kind, dependence.distance, dependence.direction)
            if key not in seen:
                seen.add(key)
                dependences.append(dependence)
    return dependences


def _pair_dependences(
    nest: LoopNest,
    indices: List[str],
    ref_a: ArrayRef,
    write_a: bool,
    ref_b: ArrayRef,
    write_b: bool,
    params: Optional[Mapping[str, int]],
) -> List[Dependence]:
    matrix_a = subscript_matrix(ref_a, indices)
    matrix_b = subscript_matrix(ref_b, indices)
    if matrix_a == matrix_b:
        delta = _constant_delta(ref_a, ref_b, indices)
        if delta is not None:
            return _uniform_dependences(
                matrix_a, delta, ref_a.array, write_a, write_b, len(indices)
            )
    # Non-uniform (or symbolic offset): conservative path.
    if not _gcd_test(matrix_a, matrix_b, ref_a, ref_b, indices):
        return []
    if params is not None and not _banerjee_may_depend(
        nest, matrix_a, matrix_b, ref_a, ref_b, indices, params
    ):
        return []
    kind = _pair_kind(write_a, write_b, assume_forward=True)
    direction = tuple("*" for _ in indices)
    return [Dependence(array=ref_a.array, kind=kind, direction=direction)]


def _constant_delta(
    ref_a: ArrayRef, ref_b: ArrayRef, indices: List[str]
) -> Optional[List[int]]:
    """``c_a - c_b`` when it is a parameter-free integer vector, else ``None``."""
    delta: List[int] = []
    for sub_a, sub_b in zip(ref_a.subscripts, ref_b.subscripts):
        difference = sub_a - sub_b
        for name in indices:
            difference = difference - _AffineExpr.var(name) * difference.coeff(name)
        if not difference.is_constant() or difference.const.denominator != 1:
            return None
        delta.append(int(difference.const))
    return delta


def _uniform_dependences(
    matrix: Matrix,
    delta: List[int],
    array: str,
    write_a: bool,
    write_b: bool,
    depth: int,
) -> List[Dependence]:
    """Exact distances for a uniform pair: solve ``F d = c_a - c_b``.

    With ``d = i_b - i_a`` (iteration of the second reference minus the
    first), equal addresses mean ``F i_a + c_a = F i_b + c_b``, i.e.
    ``F d = c_a - c_b``.
    """
    solution = try_solve_diophantine(matrix, delta)
    if solution is None:
        return []
    particular = solution.particular
    generators = solution.homogeneous

    results: List[Dependence] = []
    if not any(particular) and len(generators) <= 1:
        # Exact summary: distances are the non-zero multiples of one
        # generator (or nothing at all).
        for generator in generators:
            normalized = normalize_lex_positive(generator)
            if normalized is None:
                continue
            for kind in _kinds_for_symmetric_pair(write_a, write_b):
                results.append(
                    Dependence(array=array, kind=kind, distance=normalized)
                )
        return results
    if not generators:
        normalized = normalize_lex_positive(particular)
        if normalized is None:
            return []  # Same-iteration dependence: preserved by any reordering.
        forward = tuple(particular) == normalized
        kind = _pair_kind(write_a, write_b, assume_forward=forward)
        return [Dependence(array=array, kind=kind, distance=normalized)]
    # Mixed case (offset plus a non-trivial solution lattice): summarize
    # conservatively with a direction vector marking the free positions.
    free_positions = set()
    for vector in [particular] + generators:
        for position, value in enumerate(vector):
            if value:
                free_positions.add(position)
    direction = tuple("*" if pos in free_positions else "=" for pos in range(depth))
    kind = _pair_kind(write_a, write_b, assume_forward=True)
    return [Dependence(array=array, kind=kind, direction=direction)]


def _kinds_for_symmetric_pair(write_a: bool, write_b: bool) -> List[DependenceKind]:
    if write_a and write_b:
        return [DependenceKind.OUTPUT]
    # One endpoint writes: both flow and anti dependences occur because the
    # homogeneous solution set is symmetric (±d).
    return [DependenceKind.FLOW, DependenceKind.ANTI]


def _pair_kind(write_a: bool, write_b: bool, assume_forward: bool) -> DependenceKind:
    if write_a and write_b:
        return DependenceKind.OUTPUT
    if write_a:
        return DependenceKind.FLOW if assume_forward else DependenceKind.ANTI
    return DependenceKind.ANTI if assume_forward else DependenceKind.FLOW


def _gcd_test(
    matrix_a: Matrix,
    matrix_b: Matrix,
    ref_a: ArrayRef,
    ref_b: ArrayRef,
    indices: List[str],
) -> bool:
    """Classic GCD screening: may the two references touch a common element?

    Per subscript dimension the equation is
    ``a . i - b . i' = const_b - const_a``; an integer solution requires the
    gcd of all coefficients to divide the constant difference.  A symbolic
    constant difference is conservatively assumed compatible.
    """
    for dim in range(len(ref_a.subscripts)):
        coeffs = [int(c) for c in matrix_a.row_at(dim)] + [
            -int(c) for c in matrix_b.row_at(dim)
        ]
        divisor = vector_gcd(coeffs)
        difference = ref_b.subscripts[dim] - ref_a.subscripts[dim]
        for name in indices:
            difference = difference - _AffineExpr.var(name) * difference.coeff(name)
        if not difference.is_constant():
            continue  # Symbolic offset: cannot disprove.
        constant = difference.const
        if constant.denominator != 1:
            return False
        if divisor == 0:
            if constant != 0:
                return False
        elif int(constant) % divisor != 0:
            return False
    return True


def _banerjee_may_depend(
    nest: LoopNest,
    matrix_a: Matrix,
    matrix_b: Matrix,
    ref_a: ArrayRef,
    ref_b: ArrayRef,
    indices: List[str],
    params: Mapping[str, int],
) -> bool:
    """Banerjee bounds screening with concrete rectangular bounds.

    Uses the loosest rectangular hull of the iteration space: for each loop,
    constant lower/upper bounds obtained by evaluating the bound expressions
    at the hull of the outer loops.  Sound (never rules out a real
    dependence) because widening bounds only widens the Banerjee interval.
    """
    hull = _rectangular_hull(nest, params)
    if hull is None:
        return True
    for dim in range(len(ref_a.subscripts)):
        coeffs = [int(c) for c in matrix_a.row_at(dim)] + [
            -int(c) for c in matrix_b.row_at(dim)
        ]
        difference = ref_b.subscripts[dim] - ref_a.subscripts[dim]
        for name in indices:
            difference = difference - _AffineExpr.var(name) * difference.coeff(name)
        if not difference.is_constant():
            continue
        constant = difference.const
        low = Fraction(0)
        high = Fraction(0)
        spans = hull + hull  # i and i' range over the same hull
        for coefficient, (lo, hi) in zip(coeffs, spans):
            if coefficient > 0:
                low += coefficient * lo
                high += coefficient * hi
            else:
                low += coefficient * hi
                high += coefficient * lo
        if not (low <= constant <= high):
            return False
    return True


def _rectangular_hull(
    nest: LoopNest, params: Mapping[str, int]
) -> Optional[List[Tuple[int, int]]]:
    """Per-loop constant [lo, hi] hull, or ``None`` when bounds stay symbolic."""
    hull: List[Tuple[int, int]] = []
    env_low: dict = dict(params)
    env_high: dict = dict(params)
    try:
        for loop in nest.loops:
            lows = []
            highs = []
            for which_env in (env_low, env_high):
                lows.append(loop.lower_value(which_env))
                highs.append(loop.upper_value(which_env))
            lo, hi = min(lows), max(highs)
            if lo > hi:
                hi = lo
            hull.append((lo, hi))
            env_low[loop.index] = lo
            env_high[loop.index] = hi
    except KeyError:
        return None
    return hull
