"""Distance and direction vectors.

A distance vector gives, componentwise per loop, how many iterations apart
the source and sink of a dependence are.  Its leading non-zero entry is
always positive (the source executes first); a legal transformation ``T``
must keep every column of ``T @ D`` lexicographically positive (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.errors import DependenceError
from repro.linalg.fraction_matrix import Matrix


def lex_sign(vector: Sequence[Fraction]) -> int:
    """Sign of the leading non-zero entry (0 for the zero vector)."""
    for entry in vector:
        if entry > 0:
            return 1
        if entry < 0:
            return -1
    return 0


def is_lex_positive(vector: Sequence[Fraction]) -> bool:
    """True when the leading non-zero entry is positive."""
    return lex_sign(vector) > 0


def normalize_lex_positive(vector: Sequence[int]) -> Optional[Tuple[int, ...]]:
    """Flip a vector so its leading non-zero is positive; ``None`` for zero."""
    sign = lex_sign([Fraction(v) for v in vector])
    if sign == 0:
        return None
    if sign < 0:
        return tuple(-v for v in vector)
    return tuple(vector)


class DependenceKind(Enum):
    """Classification of a dependence by its endpoint access types."""

    FLOW = "flow"       # write then read  (RAW)
    ANTI = "anti"       # read then write  (WAR)
    OUTPUT = "output"   # write then write (WAW)


@dataclass(frozen=True)
class Dependence:
    """One dependence between two references of a loop nest.

    ``distance`` is a concrete lexicographically positive vector when the
    dependence is uniform; otherwise ``direction`` holds a conservative
    per-loop direction (``'<'``, ``'='``, ``'>'`` or ``'*'`` for unknown).
    """

    array: str
    kind: DependenceKind
    distance: Optional[Tuple[int, ...]] = None
    direction: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        if (self.distance is None) == (self.direction is None):
            raise DependenceError("exactly one of distance/direction must be given")
        if self.distance is not None and not is_lex_positive(
            [Fraction(v) for v in self.distance]
        ):
            raise DependenceError(
                f"distance vector {self.distance} is not lexicographically positive"
            )

    @property
    def is_uniform(self) -> bool:
        """True when a concrete distance vector is known."""
        return self.distance is not None

    def __str__(self) -> str:
        body = self.distance if self.distance is not None else self.direction
        return f"{self.kind.value} dep on {self.array}: {tuple(body)}"


def dependence_matrix(dependences: Sequence[Dependence], depth: int) -> Matrix:
    """Assemble the dependence matrix ``D`` (one column per distance vector).

    Duplicate distances are collapsed.  Non-uniform dependences cannot be
    represented as columns; callers must check :func:`has_non_uniform` first
    (the transformation driver treats their presence as "every row of the
    access matrix might be illegal" and falls back conservatively).
    """
    columns: List[Tuple[int, ...]] = []
    for dependence in dependences:
        if dependence.distance is None:
            raise DependenceError(
                f"cannot put non-uniform dependence {dependence} into a distance matrix"
            )
        if len(dependence.distance) != depth:
            raise DependenceError(
                f"distance {dependence.distance} does not match nest depth {depth}"
            )
        if dependence.distance not in columns:
            columns.append(dependence.distance)
    if not columns:
        return Matrix.zeros(depth, 0) if depth else Matrix([])
    return Matrix.from_cols(columns)


def has_non_uniform(dependences: Sequence[Dependence]) -> bool:
    """True when any dependence lacks a concrete distance vector."""
    return any(dep.distance is None for dep in dependences)
