"""Command-line driver: the 'compiler binary' of this reproduction.

Subcommands:

* ``compile FILE``  — run access normalization and print the requested
  artifacts (report, transformed IR, node program, generated Python);
* ``analyze FILE...`` — statically check legality, bounds, SPMD races,
  and lint findings with stable diagnostic codes (see
  :mod:`repro.analysis`);
* ``simulate FILE`` — compile and sweep processor counts on a simulated
  NUMA machine, printing a speedup table;
* ``solve FILE``    — answer an analytic crossover question ("at what P
  does blocked overtake wrapped?") from the symbolic accounting forms;
* ``autodist FILE`` — search for a good data distribution (the Section 9
  "use our techniques in reverse" speculation);
* ``fuzz``          — differential fuzzing of the whole pipeline against
  the reference interpreter (see :mod:`repro.fuzz`);
* ``serve``         — run the long-lived compilation service daemon;
* ``fleet``         — run N serve replicas behind a consistent-hash
  router (identical requests always hit the warm replica);
* ``submit``        — run compile/analyze/simulate through a daemon (or
  a fleet router) with byte-identical output (see :mod:`repro.service`).

``compile``/``analyze``/``simulate`` execute through the same job layer
as the service (:mod:`repro.service.jobs`), so the direct and served
paths cannot drift apart.

Programs are written in the FORTRAN-D-style DSL (see ``repro.lang``);
sample programs live in ``examples/programs/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.bench.harness import format_table
from repro.errors import ReproError
from repro.lang import parse_program
from repro.runtime import Metrics
from repro.service.jobs import (
    MACHINES as _MACHINES,
    compile_payload,
    machine_from_payload,
    run_compile,
    run_solve,
    run_sweep,
    solve_payload,
    sweep_payload,
)


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_program(handle.read(), name=path)


def _machine(args):
    return machine_from_payload(
        {"machine": args.machine, "contention": args.contention}
    )


def _parse_procs(text: str) -> List[int]:
    """Argparse type for ``--processors``: positive ints, deduplicated and
    sorted (``4,4,1`` would otherwise produce duplicate/unordered sweep
    cells and skew cache statistics)."""
    try:
        procs = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid processor list {text!r}: expected comma-separated "
            "integers like '1,4,8'"
        )
    if not procs:
        raise argparse.ArgumentTypeError(
            "processor list is empty: pass comma-separated positive "
            "counts like '1,4,8'"
        )
    if any(p <= 0 for p in procs):
        raise argparse.ArgumentTypeError(
            f"processor counts must be positive, got {text!r}"
        )
    return sorted(set(procs))


def cmd_compile(args) -> int:
    print(run_compile(compile_payload(args)))
    return 0


def cmd_simulate(args) -> int:
    metrics = Metrics()
    stdout, stderr = run_sweep(
        sweep_payload(args), jobs=args.jobs, metrics=metrics
    )
    if stderr:
        print(stderr, file=sys.stderr)
    print(stdout)
    if args.profile:
        print(metrics.report(), file=sys.stderr)
    return 0


def cmd_solve(args) -> int:
    print(run_solve(solve_payload(args)))
    return 0


def cmd_autodist(args) -> int:
    from repro.core.autodist import search_distributions

    metrics = Metrics()
    with metrics.stage("parse"):
        program = _load(args.file)
    machine = _machine(args)
    outcome = search_distributions(
        program,
        processors=args.single_p,
        machine=machine,
        max_candidates=args.max_candidates,
        jobs=args.jobs,
        metrics=metrics,
    )
    rows = [
        (rank + 1, candidate.describe(), f"{candidate.time_us:,.0f}")
        for rank, candidate in enumerate(outcome.ranking[: args.top])
    ]
    print(f"machine: {machine.name}; P={args.single_p}; "
          f"{outcome.evaluated} candidates evaluated")
    print(format_table(["rank", "distribution", "time (us)"], rows))
    print(f"\nbest: {outcome.best.describe()}")
    if args.profile:
        print(metrics.report(), file=sys.stderr)
    return 0


def add_compile_options(parser: argparse.ArgumentParser) -> None:
    """The ``compile`` arguments, shared with ``repro submit compile``."""
    parser.add_argument(
        "--emit",
        choices=["report", "ir", "node", "python", "all"],
        default="all",
    )
    parser.add_argument(
        "--schedule", choices=["wrapped", "blocked"], default="wrapped"
    )
    parser.add_argument("--no-block-transfers", action="store_true")
    parser.add_argument(
        "--json", action="store_true",
        help="emit the selected artifacts as one JSON document",
    )


def add_simulate_options(parser: argparse.ArgumentParser) -> None:
    """The ``simulate`` arguments, shared with ``repro submit simulate``."""
    parser.add_argument(
        "-P", "--processors", default=[1, 4, 8, 16, 28], type=_parse_procs,
        help="comma-separated processor counts",
    )
    parser.add_argument(
        "--ownership", action="store_true",
        help="include the ownership-rule baseline",
    )
    parser.add_argument(
        "--detail", action="store_true",
        help="print a per-processor breakdown at the largest P",
    )
    parser.add_argument(
        "--engine",
        choices=["auto", "symbolic", "closed-form", "compiled", "walk"],
        default="auto",
        help="accounting engine tier: auto picks the fastest tier that "
        "handles the nest (all tiers are bit-identical); forcing "
        "symbolic, closed-form or compiled fails with a clear error when "
        "the tier cannot handle the nest (see docs/performance.md)",
    )


def add_solve_options(parser: argparse.ArgumentParser) -> None:
    """The ``solve`` arguments, shared with ``repro submit solve``."""
    parser.add_argument(
        "--left", default="normalized/wrapped", metavar="VARIANT[/SCHEDULE]",
        help="baseline candidate, e.g. 'normalized/wrapped' or 'naive' "
        "(default: normalized/wrapped)",
    )
    parser.add_argument(
        "--right", default="normalized/blocked", metavar="VARIANT[/SCHEDULE]",
        help="challenger candidate (default: normalized/blocked)",
    )
    parser.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="bind a symbolic program parameter, e.g. 'N=400' (repeatable)",
    )
    parser.add_argument(
        "--min-processors", type=int, default=1, metavar="P",
        help="low end of the processor range to scan (default: 1)",
    )
    parser.add_argument(
        "--max-processors", type=int, default=64, metavar="P",
        help="high end of the processor range to scan (default: 64)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full (P, time, time) series as one JSON document",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Access normalization for NUMA machines (Li & Pingali, "
        "ASPLOS 1992) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("file", help="DSL source file")
    common.add_argument(
        "--priority",
        help="comma-separated subscript expressions pinning access-matrix "
        "row order (e.g. 'j-i,j-k,k')",
    )
    common.add_argument(
        "--assume",
        action="append",
        default=[],
        metavar="FACT",
        help="parameter fact like 'N >= 2*b' used to simplify generated "
        "bounds (repeatable)",
    )
    machine = argparse.ArgumentParser(add_help=False)
    machine.add_argument(
        "--machine", choices=sorted(_MACHINES), default="butterfly"
    )
    machine.add_argument(
        "--contention", type=float, default=None,
        help="contention coefficient override",
    )
    runtime = argparse.ArgumentParser(add_help=False)
    runtime.add_argument(
        "--jobs", type=int, default=1,
        help="run simulations on this many worker processes "
        "(0 = all cores); results are identical at any job count",
    )
    runtime.add_argument(
        "--profile", action="store_true",
        help="print per-stage timings and cache statistics to stderr",
    )

    compile_cmd = sub.add_parser(
        "compile", parents=[common], help="run the pass and print artifacts"
    )
    add_compile_options(compile_cmd)
    compile_cmd.set_defaults(func=cmd_compile)

    simulate_cmd = sub.add_parser(
        "simulate", parents=[common, machine, runtime],
        help="sweep processor counts and print speedups",
    )
    add_simulate_options(simulate_cmd)
    simulate_cmd.set_defaults(func=cmd_simulate)

    solve_cmd = sub.add_parser(
        "solve", parents=[common, machine],
        help="answer an analytic crossover question from the symbolic forms",
    )
    add_solve_options(solve_cmd)
    solve_cmd.set_defaults(func=cmd_solve)

    autodist_cmd = sub.add_parser(
        "autodist", parents=[common, machine, runtime],
        help="search for a good data distribution (Section 9 future work)",
    )
    autodist_cmd.add_argument("--single-p", type=int, default=16)
    autodist_cmd.add_argument("--top", type=int, default=5)
    autodist_cmd.add_argument("--max-candidates", type=int, default=None)
    autodist_cmd.set_defaults(func=cmd_autodist)

    from repro.analysis.cli import add_analyze_parser
    from repro.fuzz.cli import add_fuzz_parser
    from repro.service.cli import (
        add_fleet_parser,
        add_serve_parser,
        add_submit_parser,
    )
    from repro.tune.cli import add_tune_options, cmd_tune

    tune_cmd = sub.add_parser(
        "tune", parents=[common, machine, runtime],
        help="autotune the transformation and data distribution jointly",
    )
    add_tune_options(tune_cmd)
    tune_cmd.set_defaults(func=cmd_tune)

    add_analyze_parser(sub)
    add_fuzz_parser(sub, parents=[runtime])
    add_serve_parser(sub)
    add_fleet_parser(sub)
    add_submit_parser(sub, common=common, machine=machine)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
