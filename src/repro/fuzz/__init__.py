"""Differential fuzzing of the normalization + SPMD pipeline.

The subsystem has four parts:

* :mod:`repro.fuzz.generator` — seeded random generation of valid affine
  loop-nest programs (:func:`generate_spec`);
* :mod:`repro.fuzz.oracle` — the differential oracle: interpreter
  equivalence, parallel execute-mode equivalence and simulator accounting
  conservation (:func:`check_spec`, :func:`fuzz_task`);
* :mod:`repro.fuzz.shrink` — delta-debugging minimization and repro
  emission (:func:`shrink_spec`);
* :mod:`repro.fuzz.cli` — the ``repro fuzz`` subcommand.

Regression corpus entries under ``tests/corpus/`` are
:class:`ProgramSpec` JSON documents; ``tests/test_corpus.py`` replays every
entry through the oracle on each test run.
"""

from repro.fuzz.generator import generate_spec
from repro.fuzz.oracle import (
    CheckResult,
    FuzzRecord,
    check_program,
    check_spec,
    fuzz_task,
)
from repro.fuzz.shrink import (
    refit_extents,
    shrink_spec,
    write_corpus_entry,
    write_pytest_repro,
)
from repro.fuzz.spec import DistSpec, ProgramSpec, SpecError

__all__ = [
    "CheckResult",
    "DistSpec",
    "FuzzRecord",
    "ProgramSpec",
    "SpecError",
    "check_program",
    "check_spec",
    "fuzz_task",
    "generate_spec",
    "refit_extents",
    "shrink_spec",
    "write_corpus_entry",
    "write_pytest_repro",
]
