"""Serializable program specifications for the differential fuzzer.

A :class:`ProgramSpec` is the fuzzer's unit of work: a loop nest, body
statements and array declarations in plain strings and ints, which makes a
spec (a) trivially JSON-serializable for the regression corpus, (b) easy to
mutate structurally in the shrinker, and (c) buildable into a real
:class:`~repro.ir.program.Program` through the public ``ir.builder`` API —
so every corpus entry doubles as a readable repro of the original program.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.distributions import Blocked, BlockCyclic, Wrapped
from repro.errors import ReproError
from repro.ir.builder import make_program
from repro.ir.program import Program
from repro.ir.validate import validate_program

#: Specs whose iteration space exceeds this are rejected: the oracle runs
#: every program through the reference interpreter several times, so the
#: fuzzer deliberately stays in the "small scope" regime.
MAX_ITERATIONS = 20_000


class SpecError(ReproError):
    """A program spec is structurally unusable (bad JSON, out-of-bounds
    subscripts, oversized iteration space...)."""


@dataclass(frozen=True)
class DistSpec:
    """A serializable distribution choice for one array."""

    kind: str  # "wrapped" | "blocked" | "blockcyclic"
    dim: int = 0
    block: int = 2

    def build(self):
        """The corresponding :mod:`repro.distributions` object."""
        if self.kind == "wrapped":
            return Wrapped(self.dim)
        if self.kind == "blocked":
            return Blocked(self.dim)
        if self.kind == "blockcyclic":
            return BlockCyclic(self.dim, self.block)
        raise SpecError(f"unknown distribution kind {self.kind!r}")

    def to_dict(self) -> Dict:
        data = {"kind": self.kind, "dim": self.dim}
        if self.kind == "blockcyclic":
            data["block"] = self.block
        return data

    @staticmethod
    def from_dict(data: Mapping) -> "DistSpec":
        return DistSpec(
            kind=data["kind"], dim=int(data.get("dim", 0)),
            block=int(data.get("block", 2)),
        )


@dataclass(frozen=True)
class ProgramSpec:
    """A whole fuzz program in serializable form.

    ``loops`` holds ``(index, lower, upper, step)`` tuples with string/int
    bounds, ``statements`` holds assignment strings parsed by
    :func:`repro.ir.builder.parse_assignment`, ``arrays`` maps each array
    name to its concrete integer extents.
    """

    name: str
    loops: Tuple[Tuple[str, str, str, int], ...]
    statements: Tuple[str, ...]
    arrays: Tuple[Tuple[str, Tuple[int, ...]], ...]
    distributions: Tuple[Tuple[str, DistSpec], ...] = ()
    params: Tuple[Tuple[str, int], ...] = ()
    seed: Optional[int] = None
    note: str = ""

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self, *, check_bounds: bool = True) -> Program:
        """Materialize the spec as a validated :class:`Program`.

        Raises :class:`SpecError` when the spec does not describe a legal,
        fully in-bounds program — the shrinker relies on this to discard
        mutations that stray outside the valid-program space.
        """
        try:
            program = make_program(
                loops=[tuple(loop) for loop in self.loops],
                body=list(self.statements),
                arrays=[(name, *extents) for name, extents in self.arrays],
                distributions={
                    name: dist.build() for name, dist in self.distributions
                },
                params=dict(self.params),
                name=self.name,
            )
            validate_program(program)
        except ReproError as error:
            raise SpecError(f"spec {self.name!r} does not build: {error}") from error
        if check_bounds:
            check_program_bounds(program)
        return program

    def with_(self, **changes) -> "ProgramSpec":
        """A structurally modified copy (thin wrapper over ``replace``)."""
        return replace(self, **changes)

    @property
    def indices(self) -> Tuple[str, ...]:
        """The loop index names, outermost first."""
        return tuple(loop[0] for loop in self.loops)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "loops": [list(loop) for loop in self.loops],
            "statements": list(self.statements),
            "arrays": {name: list(extents) for name, extents in self.arrays},
            "distributions": {
                name: dist.to_dict() for name, dist in self.distributions
            },
            "params": dict(self.params),
            "seed": self.seed,
            "note": self.note,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "ProgramSpec":
        try:
            loops = tuple(
                (str(loop[0]), str(loop[1]), str(loop[2]),
                 int(loop[3]) if len(loop) > 3 else 1)
                for loop in data["loops"]
            )
            arrays = tuple(
                (str(name), tuple(int(e) for e in extents))
                for name, extents in dict(data["arrays"]).items()
            )
            distributions = tuple(
                (str(name), DistSpec.from_dict(dist))
                for name, dist in dict(data.get("distributions", {})).items()
            )
            params = tuple(
                (str(name), int(value))
                for name, value in dict(data.get("params", {})).items()
            )
            return ProgramSpec(
                name=str(data.get("name", "fuzz")),
                loops=loops,
                statements=tuple(str(s) for s in data["statements"]),
                arrays=arrays,
                distributions=distributions,
                params=params,
                seed=data.get("seed"),
                note=str(data.get("note", "")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SpecError(f"malformed program spec: {error}") from error

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ProgramSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"corpus entry is not valid JSON: {error}") from error
        return ProgramSpec.from_dict(data)


def check_program_bounds(program: Program) -> None:
    """Reject programs whose subscripts leave their arrays' extents.

    Negative subscripts would silently wrap around under numpy indexing and
    break the simulator's ownership math, so out-of-bounds programs are not
    an interesting fuzz input — they are excluded from the valid space.
    Also enforces the :data:`MAX_ITERATIONS` budget.
    """
    params = program.bound_params()
    shapes = {decl.name: decl.shape(params) for decl in program.arrays}
    refs = program.nest.array_refs()
    count = 0
    for env in program.nest.iterate(params):
        count += 1
        if count > MAX_ITERATIONS:
            raise SpecError(
                f"program {program.name!r} exceeds the iteration budget "
                f"({MAX_ITERATIONS})"
            )
        for ref, _ in refs:
            shape = shapes[ref.array]
            for dim, sub in enumerate(ref.subscripts):
                value = sub.evaluate(env)
                if value.denominator != 1:
                    raise SpecError(
                        f"subscript {sub} of {ref.array!r} is non-integral "
                        f"at {dict(env)}"
                    )
                value = int(value)
                if not 0 <= value < shape[dim]:
                    raise SpecError(
                        f"subscript {sub} of {ref.array!r} evaluates to "
                        f"{value}, outside [0, {shape[dim]}) at {dict(env)}"
                    )
