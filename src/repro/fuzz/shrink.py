"""Delta-debugging shrinker and repro emission.

Given a failing program spec and a predicate that recognizes the failure,
:func:`shrink_spec` greedily applies structure-reducing mutations — drop
statements, drop distributions, shrink parameters, flatten loop bounds,
zero subscript coefficients — keeping a mutation only when the reduced
program still fails *and* is still a valid program (in-bounds subscripts,
non-empty iteration space is not required).  The result is typically a
handful of lines that a human can read at a glance.

:func:`write_corpus_entry` and :func:`write_pytest_repro` turn a failure
into durable artifacts: a JSON corpus entry (loaded forever after by
``tests/test_corpus.py``) and a standalone pytest file.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.ir.builder import make_nest, parse_assignment
from repro.fuzz.spec import MAX_ITERATIONS, ProgramSpec, SpecError

Predicate = Callable[[ProgramSpec], bool]

#: Upper bound on predicate evaluations per shrink (each runs the oracle).
MAX_EVALUATIONS = 500


def refit_extents(spec: ProgramSpec) -> Optional[ProgramSpec]:
    """Recompute array extents after a structural mutation.

    Re-enumerates the (concrete) iteration space and sizes each array
    dimension to the subscripts that actually occur.  Returns ``None`` when
    the mutated spec is not a valid program (negative subscripts, parse
    failure, iteration blow-up) — the shrinker discards such mutants.
    Arrays no longer referenced are dropped along with their distributions.
    """
    params = dict(spec.params)
    try:
        nest = make_nest(
            [tuple(loop) for loop in spec.loops], list(spec.statements)
        )
    except ReproError:
        return None

    refs = nest.array_refs()
    used = {ref.array for ref, _ in refs}
    ranks = {name: len(extents) for name, extents in spec.arrays}
    for ref, _ in refs:
        if ref.array not in ranks or ref.rank != ranks[ref.array]:
            return None

    spans: Dict[Tuple[str, int], Tuple[int, int]] = {}
    count = 0
    for env in nest.iterate(params):
        count += 1
        if count > MAX_ITERATIONS:
            return None
        for ref, _ in refs:
            for dim, sub in enumerate(ref.subscripts):
                value = sub.evaluate(env)
                if value.denominator != 1:
                    return None
                value = int(value)
                key = (ref.array, dim)
                lo, hi = spans.get(key, (value, value))
                spans[key] = (min(lo, value), max(hi, value))

    arrays: List[Tuple[str, Tuple[int, ...]]] = []
    for name, extents in spec.arrays:
        if name not in used:
            continue
        new_extents = []
        for dim in range(len(extents)):
            lo, hi = spans.get((name, dim), (0, 0))
            if lo < 0:
                return None
            new_extents.append(hi + 1)
        arrays.append((name, tuple(new_extents)))

    distributions = tuple(
        (name, dist) for name, dist in spec.distributions
        if name in used and dist.dim < ranks[name]
    )
    return spec.with_(arrays=tuple(arrays), distributions=distributions)


# ----------------------------------------------------------------------
# mutation generators (each yields structurally smaller candidate specs)
# ----------------------------------------------------------------------
def _drop_statements(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    if len(spec.statements) <= 1:
        return
    for position in range(len(spec.statements)):
        statements = (
            spec.statements[:position] + spec.statements[position + 1:]
        )
        yield spec.with_(statements=statements)


def _drop_distributions(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    for position in range(len(spec.distributions)):
        yield spec.with_(
            distributions=spec.distributions[:position]
            + spec.distributions[position + 1:]
        )


def _shrink_params(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    for position, (name, value) in enumerate(spec.params):
        if value <= 2:
            continue
        params = list(spec.params)
        params[position] = (name, value - 1)
        yield spec.with_(params=tuple(params))


def _flatten_bounds(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    size = spec.params[0][0] if spec.params else "N"
    for position, (index, lower, upper, step) in enumerate(spec.loops):
        for simpler in ((index, "0", upper, step), (index, lower, f"{size}-1", step)):
            if simpler != spec.loops[position]:
                loops = list(spec.loops)
                loops[position] = simpler
                yield spec.with_(loops=tuple(loops))


def _zero_coefficients(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    """Zero one subscript coefficient (or constant) in one statement."""
    indices = list(spec.indices)
    for position, text in enumerate(spec.statements):
        try:
            statement = parse_assignment(text, indices)
        except ReproError:
            continue
        refs = [statement.lhs] + list(statement.rhs.references())
        seen = set()
        for ref in refs:
            for sub in ref.subscripts:
                for variable in sub.variables():
                    seen.add((str(sub), variable))
        for sub_text, variable in sorted(seen):
            mutated = _zero_variable_in_statement(text, indices, sub_text, variable)
            if mutated and mutated != text:
                statements = list(spec.statements)
                statements[position] = mutated
                yield spec.with_(statements=tuple(statements))


def _zero_variable_in_statement(
    text: str, indices: List[str], sub_text: str, variable: str
) -> Optional[str]:
    """Re-render ``text`` with ``variable`` zeroed in subscripts equal to
    ``sub_text``."""
    try:
        statement = parse_assignment(text, indices)
    except ReproError:
        return None

    from repro.ir.affine import AffineExpr
    from repro.ir.scalar import ArrayRef, Load
    from repro.ir.stmt import Assign

    def fix_ref(ref: ArrayRef) -> ArrayRef:
        subs = tuple(
            sub - AffineExpr.var(variable) * sub.coeff(variable)
            if str(sub) == sub_text else sub
            for sub in ref.subscripts
        )
        return ArrayRef(ref.array, subs)

    def fix_expr(node):
        if isinstance(node, Load):
            return Load(fix_ref(node.ref))
        from repro.ir.scalar import BinOp

        if isinstance(node, BinOp):
            return BinOp(node.op, fix_expr(node.left), fix_expr(node.right))
        return node

    fixed = Assign(fix_ref(statement.lhs), fix_expr(statement.rhs))
    return str(fixed)


_MUTATORS = (
    _drop_statements,
    _drop_distributions,
    _shrink_params,
    _flatten_bounds,
    _zero_coefficients,
)


def shrink_spec(
    spec: ProgramSpec,
    failing: Predicate,
    *,
    max_evaluations: int = MAX_EVALUATIONS,
) -> ProgramSpec:
    """Greedily minimize ``spec`` while ``failing`` keeps returning True.

    ``failing`` must already be True for ``spec`` itself (the caller checks
    once); the function never returns a spec for which it is False.
    """
    current = spec
    evaluations = 0
    improved = True
    while improved and evaluations < max_evaluations:
        improved = False
        for mutate in _MUTATORS:
            for candidate in mutate(current):
                refit = refit_extents(candidate)
                if refit is None:
                    continue
                try:
                    refit.build()
                except SpecError:
                    continue
                evaluations += 1
                if evaluations > max_evaluations:
                    return current
                if failing(refit):
                    current = refit
                    improved = True
                    break  # restart mutation pass on the smaller spec
            if improved:
                break
    return current


# ----------------------------------------------------------------------
# repro emission
# ----------------------------------------------------------------------
def write_corpus_entry(
    spec: ProgramSpec,
    directory: str,
    *,
    status: str,
    stage: str = "",
    detail: str = "",
    note: str = "",
) -> str:
    """Write a JSON corpus entry; returns its path."""
    os.makedirs(directory, exist_ok=True)
    entry = {
        "spec": spec.to_dict(),
        "found": {
            "status": status,
            "stage": stage,
            "detail": detail,
            "seed": spec.seed,
        },
        "note": note,
    }
    path = os.path.join(directory, f"{_slug(spec)}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_pytest_repro(spec: ProgramSpec, directory: str, *, detail: str = "") -> str:
    """Write a standalone pytest repro file; returns its path."""
    os.makedirs(directory, exist_ok=True)
    name = _slug(spec).replace("-", "_")
    path = os.path.join(directory, f"test_repro_{name}.py")
    spec_json = json.dumps(spec.to_dict(), indent=4, sort_keys=True)
    body = f'''"""Standalone repro emitted by ``repro fuzz`` (shrunk program).

Original failure: {detail or "(see corpus entry)"}
Re-run with: pytest {os.path.basename(path)} -q
"""

from repro.fuzz import ProgramSpec, check_spec

SPEC = {spec_json}


def test_repro():
    outcome = check_spec(ProgramSpec.from_dict(SPEC))
    assert outcome.ok, f"{{outcome.status}} at {{outcome.stage}}: {{outcome.detail}}"
'''
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(body)
    return path


def _slug(spec: ProgramSpec) -> str:
    base = spec.name or "fuzz"
    return "".join(c if c.isalnum() or c in "-_" else "-" for c in base)
