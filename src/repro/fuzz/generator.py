"""Seeded random generation of valid affine loop-nest programs.

The generator aims at the corners where the normalization pipeline's repair
paths (BasisMatrix completion, LegalBasis negation, LegalInvt padding) have
to work hardest: interchange/skew/reversal-inducing subscripts, triangular,
shifted and *banded* bounds (``max``/``min``-armed diagonal bands around an
outer index — the shapes whose residue-class specialized forms the tier-0
engine must stay bit-identical on), strided loops, singular and
rank-deficient access matrices, and every standard distribution (wrapped,
blocked, block-cyclic).

Every generated program is *valid by construction*:

* bounds reference only outer indices and parameters (checked by
  ``ir.validate``);
* all subscripts are non-negative and within their array extents — the
  generator enumerates the concrete iteration space once, then shifts each
  array dimension's subscripts by a common offset and sizes the extents to
  fit;
* loop-body values stay exactly representable in float64: arrays are
  initialized with small integers and multiplication only ever involves
  *read-only* operands, so accumulated values grow at most polynomially in
  the (small) iteration count and interpreter results can be compared
  bit for bit.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.ir.affine import AffineExpr
from repro.ir.builder import make_nest
from repro.fuzz.spec import MAX_ITERATIONS, DistSpec, ProgramSpec, SpecError

INDEX_NAMES = ("i", "j", "k", "l")
#: Largest extent the generator will declare for one array dimension.
MAX_EXTENT = 48
#: How many internal re-rolls one seed gets before giving up (deterministic).
MAX_ATTEMPTS = 40

# ----------------------------------------------------------------------
# RHS expression templates (kept as a tiny tree so that subscript offsets
# can be patched in after the extent pass, then rendered to strings).
# ----------------------------------------------------------------------
# node := ("load", array_name, [AffineExpr, ...])
#       | ("index", AffineExpr)
#       | ("const", int)
#       | ("bin", op, node, node)


def _render(node) -> str:
    kind = node[0]
    if kind == "load":
        _, array, subs = node
        inner = ", ".join(str(sub) for sub in subs)
        return f"{array}[{inner}]"
    if kind == "index":
        return f"({node[1]})"
    if kind == "const":
        return str(node[1])
    _, op, left, right = node
    return f"({_render(left)} {op} {_render(right)})"


def _walk_loads(node, fn) -> object:
    """Rebuild ``node`` with ``fn`` applied to every load's subscripts."""
    kind = node[0]
    if kind == "load":
        _, array, subs = node
        return ("load", array, fn(array, subs))
    if kind == "bin":
        _, op, left, right = node
        return ("bin", op, _walk_loads(left, fn), _walk_loads(right, fn))
    return node


def _collect_loads(node, out: List[Tuple[str, List[AffineExpr]]]) -> None:
    kind = node[0]
    if kind == "load":
        out.append((node[1], node[2]))
    elif kind == "bin":
        _collect_loads(node[2], out)
        _collect_loads(node[3], out)


class _Draft:
    """A program under construction, before the extent/offset pass."""

    def __init__(self):
        self.loops: List[Tuple[str, str, str, int]] = []
        self.arrays: Dict[str, int] = {}  # name -> rank
        self.readonly: List[str] = []
        self.written: List[str] = []
        # statements as (lhs_array, [lhs subs], rhs tree, accumulate?)
        self.statements: List[Tuple[str, List[AffineExpr], object, bool]] = []
        self.params: Dict[str, int] = {}


def _subscript(rng: random.Random, indices: Sequence[str]) -> AffineExpr:
    """One random affine subscript expression over the loop indices.

    Draws from the transformation-inducing shapes the paper catalogues:
    plain indices (identity), pairs with ±1/±2 coefficients (interchange /
    skewing), negated indices plus a constant (reversal / negative memory
    stride), scaled indices and constants (rank deficiency).
    """
    roll = rng.random()
    if roll < 0.45:  # plain index
        return AffineExpr.var(rng.choice(list(indices)))
    if roll < 0.65:  # skew: a*x + b*y (+ c)
        first, second = rng.sample(list(indices), 2) if len(indices) >= 2 else (
            indices[0], indices[0])
        a = rng.choice([1, 1, 1, 2, -1])
        b = rng.choice([1, 1, -1, -1, 2])
        expr = AffineExpr.var(first) * a + AffineExpr.var(second) * b
        if rng.random() < 0.4:
            expr = expr + rng.randint(-2, 2)
        return expr
    if roll < 0.8:  # reversal: -x + const (offset pass fixes the range)
        return AffineExpr.var(rng.choice(list(indices))) * -1
    if roll < 0.9:  # scaled index, possibly shifted
        scale = rng.choice([2, 2, 3])
        return AffineExpr.var(rng.choice(list(indices))) * scale + rng.randint(0, 2)
    if roll < 0.97:  # shifted index
        return AffineExpr.var(rng.choice(list(indices))) + rng.randint(1, 3)
    return AffineExpr.constant(rng.randint(0, 2))  # constant subscript


def _ref_subscripts(
    rng: random.Random, indices: Sequence[str], rank: int
) -> List[AffineExpr]:
    subs = [_subscript(rng, indices) for _ in range(rank)]
    if rank >= 2 and rng.random() < 0.15:
        # Deliberately singular access rows: repeat a subscript.
        subs[rng.randrange(rank)] = subs[rng.randrange(rank)]
    return subs


def _readonly_atom(rng: random.Random, draft: _Draft, indices: Sequence[str]):
    roll = rng.random()
    if draft.readonly and roll < 0.6:
        array = rng.choice(draft.readonly)
        return ("load", array, _ref_subscripts(rng, indices, draft.arrays[array]))
    if roll < 0.85:
        return ("index", _subscript(rng, indices))
    return ("const", rng.randint(1, 3))


def _rhs_term(rng: random.Random, draft: _Draft, indices: Sequence[str]):
    """A value term whose multiplicative operands are all read-only.

    Written arrays may only be combined *additively* (below), which bounds
    every intermediate value polynomially and keeps float64 arithmetic
    exact — the property the oracle's bit-exact comparison rests on.
    """
    roll = rng.random()
    left = _readonly_atom(rng, draft, indices)
    if roll < 0.45:
        return ("bin", "*", left, _readonly_atom(rng, draft, indices))
    if roll < 0.6:
        op = rng.choice(["+", "-"])
        return ("bin", op, left, _readonly_atom(rng, draft, indices))
    return left


def _try_generate(rng: random.Random, name: str) -> Optional[ProgramSpec]:
    draft = _Draft()
    depth = rng.choice([2, 2, 2, 2, 3, 3, 3, 4])
    indices = INDEX_NAMES[:depth]
    n_value = rng.randint(3, 6)
    draft.params["N"] = n_value
    if rng.random() < 0.3:
        # A second size parameter: rectangular (non-square) spaces.
        draft.params["M"] = rng.randint(3, 6)

    # ------------------------------------------------------------------
    # loops: rectangular, shifted, triangular, banded, occasionally strided
    # ------------------------------------------------------------------
    # Banded drafts get a band-width parameter and emit SYR2K-style
    # multi-armed bounds on inner levels: the residue-class specialized
    # symbolic evaluators must stay bit-identical (and certified) on
    # exactly these shapes, so the fuzzer leans into them.
    banded = depth >= 2 and rng.random() < 0.35
    if banded:
        draft.params["b"] = rng.randint(2, 3)
    size = "N"
    for level, index in enumerate(indices):
        if "M" in draft.params:
            size = rng.choice(["N", "N", "M"])
        outer = list(indices[:level])
        lower = "0"
        upper = f"{size}-1"
        roll = rng.random()
        if banded and outer and roll < 0.6:
            # A width-b diagonal band around an outer index.
            anchor = rng.choice(outer)
            lower = f"max({anchor}-b+1, 0)"
            upper = f"min({anchor}+b-1, {size}-1)"
            draft.loops.append((index, lower, upper, 1))
            continue
        if roll < 0.25 and outer:  # triangular lower bound
            lower = rng.choice(outer)
            if rng.random() < 0.4:
                lower = f"{lower}+1"
        elif roll < 0.35:  # shifted lower bound
            lower = "1"
        roll = rng.random()
        if roll < 0.2 and outer:  # triangular upper bound
            upper = f"{size}-1-{rng.choice(outer)}"
        elif roll < 0.3:
            upper = f"{size}-2" if draft.params[size] >= 4 else f"{size}-1"
        # Source nests must be unit-step: the transformation framework
        # (like the paper's) assumes normalized loops.  Strided loops only
        # appear in *generated* code (lattice scans, tiling).
        draft.loops.append((index, lower, upper, 1))

    # ------------------------------------------------------------------
    # arrays: 1-3, rank 1-2, some written and some read-only
    # ------------------------------------------------------------------
    n_arrays = rng.randint(1, 3)
    names = ["A", "B", "C"][:n_arrays]
    n_written = rng.randint(1, n_arrays)
    for position, array in enumerate(names):
        choices = [1, 2, 2] if depth >= 2 else [1]
        if depth >= 3:
            choices.append(3)
        rank = rng.choice(choices)
        draft.arrays[array] = rank
        (draft.written if position < n_written else draft.readonly).append(array)

    # ------------------------------------------------------------------
    # statements: accumulate into or overwrite the written arrays
    # ------------------------------------------------------------------
    n_statements = rng.randint(1, 3)
    for _ in range(n_statements):
        target = rng.choice(draft.written)
        lhs_subs = _ref_subscripts(rng, indices, draft.arrays[target])
        rhs = _rhs_term(rng, draft, indices)
        accumulate = rng.random() < 0.65
        if not accumulate and rng.random() < 0.4 and len(draft.written) > 1:
            # Additive read of another written array (dependence chains).
            other = rng.choice([w for w in draft.written if w != target])
            other_load = (
                "load", other, _ref_subscripts(rng, indices, draft.arrays[other])
            )
            rhs = ("bin", "+", rhs, other_load)
        draft.statements.append((target, lhs_subs, rhs, accumulate))

    return _finalize(draft, name)


def _finalize(draft: _Draft, name: str) -> Optional[ProgramSpec]:
    """The extent/offset pass: make every subscript non-negative in range.

    Enumerates the concrete iteration space once, measures each array
    dimension's subscript range over *all* references to it, then shifts the
    whole dimension by a common offset and sizes the extent to fit.
    """
    # All (array, dim) -> list of AffineExpr across LHS and RHS loads.
    refs: List[Tuple[str, List[AffineExpr]]] = []
    for target, lhs_subs, rhs, _ in draft.statements:
        refs.append((target, lhs_subs))
        _collect_loads(rhs, refs)
    try:
        nest = make_nest([tuple(loop) for loop in draft.loops], [])
    except ReproError:
        return None

    envs = []
    count = 0
    for env in nest.iterate(draft.params):
        count += 1
        if count > MAX_ITERATIONS:
            return None
        envs.append(dict(env))
    if not envs:
        return None

    spans: Dict[Tuple[str, int], Tuple[Fraction, Fraction]] = {}
    for array, subs in refs:
        for dim, sub in enumerate(subs):
            lo = hi = None
            for env in envs:
                value = sub.evaluate(env)
                if value.denominator != 1:
                    return None
                lo = value if lo is None else min(lo, value)
                hi = value if hi is None else max(hi, value)
            key = (array, dim)
            if key in spans:
                old_lo, old_hi = spans[key]
                spans[key] = (min(old_lo, lo), max(old_hi, hi))
            else:
                spans[key] = (lo, hi)

    offsets: Dict[Tuple[str, int], int] = {}
    extents: Dict[str, List[int]] = {
        array: [1] * rank for array, rank in draft.arrays.items()
    }
    for (array, dim), (lo, hi) in spans.items():
        offset = int(-lo) if lo < 0 else 0
        extent = int(hi) + offset + 1
        if extent > MAX_EXTENT:
            return None
        offsets[(array, dim)] = offset
        extents[array][dim] = extent

    def shift(array: str, subs: List[AffineExpr]) -> List[AffineExpr]:
        return [
            sub + offsets.get((array, dim), 0) for dim, sub in enumerate(subs)
        ]

    statements: List[str] = []
    for target, lhs_subs, rhs, accumulate in draft.statements:
        lhs_subs = shift(target, lhs_subs)
        rhs = _walk_loads(rhs, shift)
        lhs_text = f"{target}[{', '.join(str(s) for s in lhs_subs)}]"
        rhs_text = _render(rhs)
        if accumulate:
            rhs_text = f"{lhs_text} + {rhs_text}"
        statements.append(f"{lhs_text} = {rhs_text}")

    return ProgramSpec(
        name=name,
        loops=tuple(draft.loops),
        statements=tuple(statements),
        arrays=tuple(
            (array, tuple(extents[array])) for array in draft.arrays
        ),
        distributions=(),  # filled in by generate_spec
        params=tuple(sorted(draft.params.items())),
    )


def _pick_distributions(
    rng: random.Random, spec: ProgramSpec
) -> Tuple[Tuple[str, DistSpec], ...]:
    # Banded nests (max/min-armed bounds) lean toward wrapped and
    # block-cyclic: wrapped is what puts Mod/FloorDiv atoms into the
    # tier-0 forms (the paper's SYR2K shape), block-cyclic exercises
    # the engines' decline paths on the same bounds.
    banded = any(
        "max(" in str(loop[1]) or "min(" in str(loop[2])
        for loop in spec.loops
    )
    chosen: List[Tuple[str, DistSpec]] = []
    for array, extents in spec.arrays:
        roll = rng.random()
        replicated = 0.1 if banded else 0.2
        if roll < replicated:
            continue  # replicated
        dim = rng.randrange(len(extents))
        if banded:
            if roll < 0.65:
                chosen.append((array, DistSpec("wrapped", dim)))
            elif roll < 0.8:
                chosen.append(
                    (array, DistSpec("blockcyclic", dim, rng.choice([2, 3])))
                )
            else:
                chosen.append((array, DistSpec("blocked", dim)))
            continue
        if roll < 0.55:
            chosen.append((array, DistSpec("wrapped", dim)))
        elif roll < 0.8:
            chosen.append((array, DistSpec("blocked", dim)))
        else:
            chosen.append((array, DistSpec("blockcyclic", dim, rng.choice([2, 3]))))
    return tuple(chosen)


def generate_spec(seed: int, *, name: Optional[str] = None) -> ProgramSpec:
    """The valid program spec for one fuzz seed (pure function of ``seed``).

    Internally re-rolls up to :data:`MAX_ATTEMPTS` times when a draft comes
    out empty or oversized; the retry counter is part of the derived RNG
    seed, so the result is fully deterministic.
    """
    label = name or f"fuzz-{seed}"
    for attempt in range(MAX_ATTEMPTS):
        rng = random.Random(f"repro-fuzz:{seed}:{attempt}")
        spec = _try_generate(rng, label)
        if spec is None:
            continue
        spec = spec.with_(
            distributions=_pick_distributions(rng, spec), seed=seed
        )
        try:
            spec.build()
        except SpecError:
            continue
        return spec
    raise SpecError(
        f"seed {seed} produced no valid program in {MAX_ATTEMPTS} attempts"
    )
