"""The ``repro fuzz`` subcommand: drive a differential fuzzing campaign.

Runs ``--count`` seeded cases (or keeps going for ``--time-budget``
seconds), fanning out over the runtime executor's worker pool with
``--jobs``.  Failing cases are shrunk to minimal repros and written under
``<corpus-dir>/pending/`` as a JSON corpus entry plus a standalone pytest
file, ready to be promoted into the tier-1 regression corpus.

The stdout of a fixed ``--seed``/``--count`` run is a machine-readable JSON
summary that is byte-identical at any ``--jobs`` value — CI diffs it.
Timing and progress go to stderr.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.runtime.executor import resolve_jobs, run_tasks
from repro.runtime.metrics import Metrics
from repro.fuzz.oracle import FuzzRecord, check_spec, fuzz_task
from repro.fuzz.shrink import shrink_spec, write_corpus_entry, write_pytest_repro
from repro.fuzz.spec import ProgramSpec, SpecError

DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")
#: Cases dispatched per pool round in time-budget mode.
BATCH_PER_JOB = 8


def run_campaign(
    *,
    seed: int = 0,
    count: int = 100,
    time_budget: Optional[float] = None,
    jobs: int = 1,
    metrics: Optional[Metrics] = None,
    tune: bool = False,
) -> List[FuzzRecord]:
    """Run fuzz cases and return their records in index order.

    With ``time_budget`` set, batches of cases are dispatched until the
    budget (seconds) is exhausted — ``count`` then only caps the total.
    With ``tune`` set, every case also runs the tuner search-space oracle
    (each emitted transformation must survive the legality pass).
    """
    metrics = metrics if metrics is not None else Metrics()
    records: List[FuzzRecord] = []
    if time_budget is None:
        tasks = [
            (index, seed, True) if tune else (index, seed)
            for index in range(count)
        ]
        with metrics.stage("fuzz"):
            records = list(run_tasks(fuzz_task, tasks, jobs=jobs, metrics=metrics))
        metrics.count("fuzz_cases", len(records))
        return records

    deadline = time.monotonic() + time_budget
    batch_size = max(1, resolve_jobs(jobs)) * BATCH_PER_JOB
    next_index = 0
    with metrics.stage("fuzz"):
        while time.monotonic() < deadline:
            upper = next_index + batch_size
            if count:
                upper = min(upper, count)
            if upper <= next_index:
                break
            tasks = [
                (index, seed, True) if tune else (index, seed)
                for index in range(next_index, upper)
            ]
            records.extend(run_tasks(fuzz_task, tasks, jobs=jobs, metrics=metrics))
            next_index = upper
    metrics.count("fuzz_cases", len(records))
    return records


def shrink_failure(
    record: FuzzRecord, *, tune: bool = False
) -> Optional[ProgramSpec]:
    """Minimize one failing record's program; ``None`` if nothing to shrink."""
    if record.spec is None:
        return None
    try:
        spec = ProgramSpec.from_dict(record.spec)
    except SpecError:
        return None

    def still_failing(candidate: ProgramSpec) -> bool:
        return not check_spec(candidate, tune=tune).ok

    if not still_failing(spec):
        return spec  # flaky or environment-dependent; keep the original
    shrunk = shrink_spec(spec, still_failing)
    return shrunk.with_(name=f"shrunk-{record.seed}")


def summarize(
    records: Sequence[FuzzRecord],
    *,
    seed: int,
    failures: Sequence[Dict],
) -> Dict:
    """The machine-readable campaign summary.

    Deterministic for a fixed seed and case count: ``--jobs`` affects
    scheduling only, never results, so CI can diff the summaries of a
    serial and a parallel run byte for byte.
    """
    by_status: Dict[str, int] = {}
    by_static: Dict[str, int] = {}
    by_certified: Dict[str, int] = {}
    checks = 0
    for record in records:
        by_status[record.status] = by_status.get(record.status, 0) + 1
        checks += record.checks
        static = record.static or "(none)"
        if static.startswith("flagged:"):
            static = "flagged"  # bucket by kind, not by exact code set
        elif static.startswith("analyzer-crash"):
            static = "analyzer-crash"
        by_static[static] = by_static.get(static, 0) + 1
        certified = record.certified or "(none)"
        by_certified[certified] = by_certified.get(certified, 0) + 1
    return {
        "tool": "repro-fuzz",
        "seed": seed,
        "cases": len(records),
        "checks": checks,
        "status": dict(sorted(by_status.items())),
        "static": dict(sorted(by_static.items())),
        "certified": dict(sorted(by_certified.items())),
        "static_consistent": by_status.get("inconsistent", 0) == 0,
        "tuner_legal": by_status.get("tuner-illegal", 0) == 0,
        "forms_certified": by_status.get("form-uncertified", 0) == 0,
        "ok": by_status.get("ok", 0) == len(records),
        "failures": list(failures),
    }


def cmd_fuzz(args) -> int:
    """Entry point wired into the main ``repro`` argument parser."""
    metrics = Metrics()
    started = time.monotonic()
    records = run_campaign(
        seed=args.seed,
        count=args.count,
        time_budget=args.time_budget,
        jobs=args.jobs,
        metrics=metrics,
        tune=args.tune_oracle,
    )
    elapsed = time.monotonic() - started

    failures: List[Dict] = []
    pending_dir = os.path.join(args.corpus_dir, "pending")
    for record in records:
        if record.ok:
            continue
        entry: Dict = {
            "index": record.index,
            "seed": record.seed,
            "status": record.status,
            "stage": record.stage,
            "detail": record.detail,
        }
        if not args.no_shrink and record.spec is not None:
            shrunk = shrink_failure(record, tune=args.tune_oracle)
            if shrunk is not None:
                verdict = check_spec(shrunk, tune=args.tune_oracle)
                entry["shrunk"] = shrunk.to_dict()
                entry["corpus_entry"] = write_corpus_entry(
                    shrunk, pending_dir,
                    status=verdict.status, stage=verdict.stage,
                    detail=verdict.detail,
                    note=f"found by repro fuzz (case seed {record.seed})",
                )
                entry["pytest_repro"] = write_pytest_repro(
                    shrunk, pending_dir, detail=verdict.detail
                )
        failures.append(entry)

    summary = summarize(records, seed=args.seed, failures=failures)
    print(json.dumps(summary, indent=2, sort_keys=True))
    status_line = ", ".join(
        f"{name}={count}" for name, count in summary["status"].items()
    ) or "no cases"
    print(
        f"fuzz: {summary['cases']} cases ({status_line}), "
        f"{summary['checks']} oracle checks in {elapsed:.1f}s",
        file=sys.stderr,
    )
    if failures:
        print(
            f"fuzz: {len(failures)} failing case(s); shrunk repros under "
            f"{pending_dir}",
            file=sys.stderr,
        )
    if args.profile:
        print(metrics.report(), file=sys.stderr)
    return 0 if summary["ok"] else 1


def add_fuzz_parser(subparsers, parents=()) -> None:
    """Register the ``fuzz`` subcommand on the main CLI's subparsers."""
    fuzz_cmd = subparsers.add_parser(
        "fuzz",
        parents=list(parents),
        help="differential fuzzing: random programs vs the interpreter oracle",
        description=(
            "Generate random affine loop nests, run the full "
            "normalize+SPMD pipeline on each, and check the results "
            "against the reference interpreter and the simulator's "
            "conservation invariants.  Failures are shrunk to minimal "
            "repros under CORPUS_DIR/pending/."
        ),
    )
    fuzz_cmd.add_argument(
        "--seed", type=int, default=0,
        help="base seed of the campaign (case i uses a seed derived "
        "from (seed, i))",
    )
    fuzz_cmd.add_argument(
        "--count", type=int, default=100,
        help="number of cases to run (with --time-budget: a cap, 0 = no cap)",
    )
    fuzz_cmd.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="keep fuzzing until this many seconds have elapsed",
    )
    fuzz_cmd.add_argument(
        "--corpus-dir", default=DEFAULT_CORPUS_DIR,
        help="regression corpus directory (failures go to its pending/ "
        "subdirectory)",
    )
    fuzz_cmd.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging minimization of failing cases",
    )
    fuzz_cmd.add_argument(
        "--tune-oracle", action="store_true",
        help="also verify the autotuner's search space on every case: "
        "each emitted transformation must pass the analysis legality "
        "pass (violations get status 'tuner-illegal')",
    )
    fuzz_cmd.set_defaults(func=cmd_fuzz)
