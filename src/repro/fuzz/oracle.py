"""The differential-testing oracle.

For one program spec, runs the full pipeline (``core.access_normalize`` →
``codegen.generate_spmd``) and checks, against the reference interpreter
(the library's documented semantic ground truth):

1. **Transformed equivalence** — interpreting the normalized program over
   identically seeded arrays produces bit-identical array contents;
2. **Node-program equivalence** — the SPMD node program's nest (sequential
   union semantics, prologue block reads included) is also bit-identical;
3. **Parallel execution** — when the distributed outer loop carries no
   dependence, executing the node program processor by processor in the
   NUMA simulator's ``execute`` mode reproduces the sequential result at
   every processor count;
4. **Accounting conservation** — across processor counts and schedules the
   simulator's counters are non-negative, ``local + remote`` equals the
   per-iteration access count times the iteration count (every access is
   charged exactly once), iteration/statement totals match the sequential
   interpreter, and a single processor sees no remote traffic at all;
5. **Tier equivalence** — the symbolic, closed-form, and compiled
   accounting engines,
   wherever they accept the nest, reproduce the interpreter walk's
   per-processor :class:`AccessCounts` bit for bit.  A disagreement is
   reported with its own status, ``"tier-mismatch"``, because it is an
   engine bug rather than a semantics bug;
6. **Form certification** — each schedule's symbolic forms (when the nest
   has a tier 0) get a :class:`~repro.analysis.forms.FormCertificate`
   proving them identical to the closed-form engine on an interpolation
   grid.  The verdict is recorded (``certified``: ``yes`` / ``no`` /
   ``unverified`` / ``n/a``); a failed certificate is its own status,
   ``"form-uncertified"``, while an over-budget grid stays an honest
   ``unverified``, not a failure.

Arrays are seeded with small integers (``init="smallint"``), and the
generator only multiplies read-only values, so float64 arithmetic is exact
and ``ok`` really means *equal*, not *close*.

The oracle also cross-checks the :mod:`repro.analysis` static analyzer:
every case records the analyzer's verdict over the same artifacts
(``static``), and a dynamic mismatch on a case the analyzer called clean
is reported with status ``"inconsistent"`` instead of ``"mismatch"`` —
the invariant CI enforces is *analyzer clean ⇒ oracle match*.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codegen.spmd import NodeProgram, generate_spmd
from repro.core.normalize import access_normalize
from repro.ir.interp import allocate_arrays, execute
from repro.ir.program import Program
from repro.ir.stmt import Assign
from repro.numa.simulator import simulate
from repro.fuzz.generator import generate_spec
from repro.fuzz.spec import ProgramSpec, SpecError

#: Processor counts every program is checked at.
DEFAULT_PROCS = (1, 2, 3, 4)
#: Outer-loop schedules exercised for the accounting checks.
DEFAULT_SCHEDULES = ("wrapped", "blocked")
#: Array-content RNG seed (independent of the program-shape seed).
ARRAY_SEED = 20240406


@dataclass
class CheckResult:
    """The oracle's verdict on one program."""

    ok: bool
    status: str  # "ok" | "mismatch" | "inconsistent" | "crash" | "invalid"
    stage: str = ""
    detail: str = ""
    checks: int = 0  # individual assertions that ran
    program_name: str = ""
    notes: Tuple[str, ...] = ()
    static: str = ""  # "clean" | "flagged:CODE,..." | "analyzer-crash: ..."
    certified: str = ""  # "yes" | "no" | "unverified" | "n/a"


@dataclass
class FuzzRecord:
    """One fuzz case's outcome, as returned by :func:`fuzz_task`.

    Plain picklable data: the parallel fuzz driver ships these back from
    worker processes and merges them in index order.
    """

    index: int
    seed: int
    status: str
    stage: str = ""
    detail: str = ""
    checks: int = 0
    spec: Optional[Dict] = None  # spec dict, kept only for failures
    static: str = ""  # static-analyzer verdict for the same artifacts
    certified: str = ""  # symbolic-form certificate verdict

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class _Mismatch(Exception):
    """Internal control flow: an oracle comparison failed."""

    def __init__(self, stage: str, detail: str):
        super().__init__(detail)
        self.stage = stage
        self.detail = detail


class _TierMismatch(_Mismatch):
    """Two accounting engines disagreed on a count (status ``tier-mismatch``)."""


class _FormUncertified(_Mismatch):
    """A symbolic form failed its certificate (status ``form-uncertified``).

    Distinct from :class:`_TierMismatch`: the tier check compares engines
    at the handful of swept cells, while the certificate compares the
    form against the closed-form engine on the full interpolation grid —
    a *derivation* bug can pass the former and fail only here.
    """


class _TunerIllegal(_Mismatch):
    """The autotuner emitted an illegal transformation (status
    ``tuner-illegal``): its pruner admitted a candidate that the analysis
    legality pass rejects over the materialized artifacts."""


def _fresh_arrays(program: Program):
    return allocate_arrays(program, init="smallint", seed=ARRAY_SEED)


def _forced_simulate(node: NodeProgram, processors: int, engine: str):
    """Simulate with a forced tier, or None when the tier rejects the nest.

    A rejection (e.g. guarded body for the closed-form engine) is
    legitimate — tier coverage is a performance property, not a
    correctness one — so it is skipped rather than reported.
    """
    from repro.errors import SimulationError

    try:
        return simulate(node, processors=processors, engine=engine)
    except SimulationError:
        return None


def _compare_arrays(stage: str, expected, actual) -> None:
    if expected.keys() != actual.keys():
        raise _Mismatch(stage, "array sets differ")
    for name in sorted(expected):
        if not np.array_equal(expected[name], actual[name]):
            delta = np.argwhere(expected[name] != actual[name])
            first = tuple(int(v) for v in delta[0]) if len(delta) else ()
            raise _Mismatch(
                stage,
                f"array {name!r} differs at {len(delta)} element(s), "
                f"first at index {first}",
            )


def _per_iteration_accesses(node: NodeProgram) -> int:
    """How many array accesses one innermost-body execution performs."""
    total = 0
    for statement in node.nest.body:
        if isinstance(statement, Assign):
            total += 1 + len(statement.rhs.references())
        else:  # guarded bodies do not occur on the generate_spmd path
            total += len(statement.array_refs())
    return total


def _static_verdict(program: Program, result, node) -> str:
    """The static analyzer's verdict over already-produced artifacts."""
    from repro.analysis.manager import analyze_artifacts

    try:
        report = analyze_artifacts(program, result=result, node=node)
    except Exception as error:  # noqa: BLE001 - analyzer bugs are findings too
        return f"analyzer-crash: {type(error).__name__}: {error}"
    if report.has_errors:
        return "flagged:" + ",".join(report.error_codes)
    return "clean"


def check_program(
    program: Program,
    *,
    procs: Tuple[int, ...] = DEFAULT_PROCS,
    schedules: Tuple[str, ...] = DEFAULT_SCHEDULES,
    tune: bool = False,
) -> CheckResult:
    """Run every oracle check on one (already validated) program.

    A dynamic mismatch on a program the static analyzer calls clean comes
    back with status ``"inconsistent"`` — one of the two is wrong, and the
    disagreement itself is the finding.
    """
    checks = 0
    notes: List[str] = []
    result = None
    first_node = None
    certified = "n/a"
    try:
        # -- sequential ground truth --------------------------------------
        baseline = _fresh_arrays(program)
        execute(program, baseline)

        # -- pipeline -----------------------------------------------------
        result = access_normalize(program)
        notes.extend(result.notes)

        # -- 1: transformed-program equivalence ---------------------------
        transformed_arrays = _fresh_arrays(program)
        execute(result.transformed, transformed_arrays)
        _compare_arrays("normalize", baseline, transformed_arrays)
        checks += 1

        sync_events = result.outer_carried_count
        nodes = {
            schedule: generate_spmd(
                result.transformed, schedule=schedule, sync_events=sync_events
            )
            for schedule in schedules
        }

        # -- 2: node-program (sequential union) equivalence ---------------
        first_node = nodes[schedules[0]]
        node_arrays = _fresh_arrays(program)
        execute(first_node.program, node_arrays)
        _compare_arrays("spmd", baseline, node_arrays)
        checks += 1

        # -- 3 & 4: simulator checks --------------------------------------
        accesses = _per_iteration_accesses(first_node)
        for schedule, node in nodes.items():
            reference_totals = None
            for processors in procs:
                outcome = simulate(node, processors=processors)
                totals = outcome.totals
                stage = f"simulate[{schedule},P={processors}]"
                for name in (
                    "local", "remote", "block_transfers", "block_bytes",
                    "guards", "statements", "iterations", "syncs",
                ):
                    if getattr(totals, name) < 0:
                        raise _Mismatch(stage, f"negative {name} count")
                if totals.local + totals.remote != totals.iterations * accesses:
                    raise _Mismatch(
                        stage,
                        f"access accounting not conserved: local={totals.local} "
                        f"remote={totals.remote} expected "
                        f"{totals.iterations * accesses}",
                    )
                if processors == 1:
                    if totals.remote or totals.block_transfers or totals.block_bytes:
                        raise _Mismatch(
                            stage, "single-processor run has remote traffic"
                        )
                    reference_totals = totals
                elif reference_totals is not None:
                    for name in ("iterations", "statements"):
                        if getattr(totals, name) != getattr(reference_totals, name):
                            raise _Mismatch(
                                stage,
                                f"{name} not conserved across P: "
                                f"{getattr(totals, name)} vs "
                                f"{getattr(reference_totals, name)}",
                            )
                checks += 1

                # -- 5: accounting-tier equivalence -----------------------
                # The default simulation above used engine="auto"; pin down
                # the walk and diff every tier that accepts the nest
                # against it, per processor, on every counter.
                walk = simulate(node, processors=processors, engine="walk")
                for tier_name, tier_outcome in (("auto", outcome),) + tuple(
                    (forced, _forced_simulate(node, processors, forced))
                    for forced in ("symbolic", "closed-form", "compiled")
                ):
                    if tier_outcome is None:
                        continue  # forced tier rejected the nest: fine
                    for wp, tp in zip(walk.per_proc, tier_outcome.per_proc):
                        if wp.counts != tp.counts:
                            raise _TierMismatch(
                                f"tier[{tier_name},{schedule},P={processors}]",
                                f"engine {tier_outcome.engine!r} disagrees "
                                f"with walk on proc {wp.proc}: "
                                f"{tp.counts} vs {wp.counts}",
                            )
                    checks += 1

                # Parallel execute-mode differential run: only valid when the
                # distributed outer loop carries no dependence (the simulator
                # runs processors one after another).
                if (
                    node.sync_per_outer_iteration == 0
                    and processors > 1
                    and processors <= 3
                ):
                    exec_arrays = _fresh_arrays(program)
                    exec_outcome = simulate(
                        node, processors=processors, mode="execute",
                        arrays=exec_arrays,
                    )
                    _compare_arrays(
                        f"execute[{schedule},P={processors}]",
                        baseline, exec_arrays,
                    )
                    exec_totals = exec_outcome.totals
                    if (
                        exec_totals.local + exec_totals.remote
                        != totals.local + totals.remote
                        or exec_totals.iterations != totals.iterations
                    ):
                        raise _Mismatch(
                            f"execute[{schedule},P={processors}]",
                            "execute-mode accounting disagrees with account mode",
                        )
                    checks += 2

        # -- 6: symbolic-form certification ---------------------------
        # Tier equivalence (check 5) compared engines at the swept
        # cells; the certificate proves form ≡ closed-form engine on the
        # whole interpolation grid.  Memoized per node fingerprint, so
        # re-checking a shrunken case is free.
        from repro.analysis.forms import certify_node

        for schedule, node in nodes.items():
            certificate = certify_node(node)
            if certificate is None:
                continue  # no symbolic tier for this nest: nothing to certify
            checks += 1
            if certificate.verified:
                if certified == "n/a":
                    certified = "yes"
            elif certificate.failure in ("mismatch", "non-integral"):
                certified = "no"
                raise _FormUncertified(
                    f"certify[{schedule}]", certificate.reason
                )
            else:  # budget / structure: honestly unverified, not a failure
                certified = "unverified"

        # -- 7: tuner search-space legality ---------------------------
        # Every transformation the autotuner's enumerator emits (after
        # its own quick prune) must survive the analysis legality pass
        # over the materialized artifacts; an admitted-but-illegal
        # candidate is a tuner bug, not a semantics bug.
        if tune:
            from repro.tune.search import verify_search_legality

            tuner_checked, violation = verify_search_legality(program)
            checks += tuner_checked
            if violation:
                raise _TunerIllegal("tune", violation)
    except _Mismatch as mismatch:
        static = _static_verdict(program, result, first_node)
        if isinstance(mismatch, _TunerIllegal):
            status = "tuner-illegal"
        elif isinstance(mismatch, _FormUncertified):
            status = "form-uncertified"
        elif isinstance(mismatch, _TierMismatch):
            status = "tier-mismatch"
        else:
            status = "inconsistent" if static == "clean" else "mismatch"
        return CheckResult(
            ok=False,
            status=status,
            stage=mismatch.stage,
            detail=mismatch.detail, checks=checks,
            program_name=program.name, notes=tuple(notes), static=static,
            certified=certified,
        )
    except Exception as error:  # noqa: BLE001 - a fuzzer records every crash
        return CheckResult(
            ok=False, status="crash", stage=type(error).__name__,
            detail=_summarize_exception(error), checks=checks,
            program_name=program.name, notes=tuple(notes),
            static=_static_verdict(program, result, first_node),
            certified=certified,
        )
    return CheckResult(
        ok=True, status="ok", checks=checks, program_name=program.name,
        notes=tuple(notes), static=_static_verdict(program, result, first_node),
        certified=certified,
    )


def check_spec(
    spec: ProgramSpec,
    *,
    procs: Tuple[int, ...] = DEFAULT_PROCS,
    schedules: Tuple[str, ...] = DEFAULT_SCHEDULES,
    tune: bool = False,
) -> CheckResult:
    """Build a spec and run :func:`check_program` on it."""
    try:
        program = spec.build()
    except SpecError as error:
        return CheckResult(
            ok=False, status="invalid", stage="build", detail=str(error),
            program_name=spec.name,
        )
    return check_program(program, procs=procs, schedules=schedules, tune=tune)


def _summarize_exception(error: BaseException) -> str:
    frames = traceback.extract_tb(error.__traceback__)
    location = ""
    for frame in reversed(frames):
        if "/repro/" in frame.filename.replace("\\", "/"):
            location = f" at {frame.filename.rsplit('/', 1)[-1]}:{frame.lineno}"
            break
    return f"{type(error).__name__}: {error}{location}"


#: The argument tuple of :func:`fuzz_task`: ``(index, base_seed)`` or
#: ``(index, base_seed, tune_oracle)``.
FuzzTask = Tuple[int, ...]


def fuzz_task(task: FuzzTask) -> FuzzRecord:
    """Top-level, picklable entry point for one fuzz case.

    Derives the case seed from ``(base_seed, index)``, generates the
    program, runs the oracle, and returns a plain record — exceptions never
    escape, so a crashing case cannot take down a worker pool.
    """
    index, base_seed = task[0], task[1]
    tune = bool(task[2]) if len(task) > 2 else False
    case_seed = base_seed * 1_000_003 + index
    try:
        spec = generate_spec(case_seed)
    except Exception as error:  # noqa: BLE001 - generator bugs are findings too
        return FuzzRecord(
            index=index, seed=case_seed, status="generator-error",
            stage=type(error).__name__, detail=_summarize_exception(error),
        )
    outcome = check_spec(spec, tune=tune)
    record = FuzzRecord(
        index=index, seed=case_seed, status=outcome.status,
        stage=outcome.stage, detail=outcome.detail, checks=outcome.checks,
        static=outcome.static, certified=outcome.certified,
    )
    if not outcome.ok:
        record.spec = spec.to_dict()
    return record
