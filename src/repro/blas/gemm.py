"""GEMM — general matrix multiplication (Section 8.1).

``C[i,j] += A[i,k] * B[k,j]`` over ``N x N`` arrays, all wrapped-column
distributed.  The paper evaluates 400x400 arrays on up to 28 processors.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.distributions import wrapped_column
from repro.ir import Program, make_program


def gemm_program(n: int = 400) -> Program:
    """The GEMM source program with the paper's data distribution."""
    return make_program(
        loops=[("i", 0, "N-1"), ("j", 0, "N-1"), ("k", 0, "N-1")],
        body=["C[i, j] = C[i, j] + A[i, k] * B[k, j]"],
        arrays=[("C", "N", "N"), ("A", "N", "N"), ("B", "N", "N")],
        distributions={
            "A": wrapped_column(),
            "B": wrapped_column(),
            "C": wrapped_column(),
        },
        params={"N": n},
        name="gemm",
    )


def gemm_reference(arrays: Dict[str, np.ndarray]) -> np.ndarray:
    """What C must equal after running GEMM on the *initial* arrays."""
    return arrays["C"] + arrays["A"] @ arrays["B"]
