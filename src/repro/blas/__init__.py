"""The BLAS workloads of the paper's evaluation (plus extensions)."""

from repro.blas.gemm import gemm_program, gemm_reference
from repro.blas.gemv import gemv_program, gemv_reference
from repro.blas.syr2k import (
    PAPER_PRIORITY,
    band_to_dense,
    syr2k_program,
    syr2k_reference,
)
from repro.blas.stencil import jacobi_program, jacobi_reference
from repro.blas.syrk import syrk_program, syrk_reference

__all__ = [
    "PAPER_PRIORITY",
    "band_to_dense",
    "gemm_program",
    "gemm_reference",
    "gemv_program",
    "gemv_reference",
    "jacobi_program",
    "jacobi_reference",
    "syr2k_program",
    "syr2k_reference",
    "syrk_program",
    "syrk_reference",
]
