"""SYRK — symmetric rank-k update (BLAS extension workload).

``C[i,j] += A[k,i] * A[k,j]`` over the upper triangle ``j >= i``.  Not in
the paper's evaluation, but it exercises the same machinery on a triangular
iteration space: access normalization makes the ``C``/second-``A``
distribution subscript the outer loop and block-transfers the first ``A``
operand's columns.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.distributions import wrapped_column
from repro.ir import Program, make_program


def syrk_program(n: int = 400) -> Program:
    """The SYRK source program with wrapped-column distributions."""
    return make_program(
        loops=[("i", 0, "N-1"), ("j", "i", "N-1"), ("k", 0, "N-1")],
        body=["C[i, j] = C[i, j] + A[k, i] * A[k, j]"],
        arrays=[("C", "N", "N"), ("A", "N", "N")],
        distributions={"A": wrapped_column(), "C": wrapped_column()},
        params={"N": n},
        name="syrk",
    )


def syrk_reference(arrays: Dict[str, np.ndarray]) -> np.ndarray:
    """What the upper triangle of C must equal after running SYRK."""
    dense = arrays["C"] + arrays["A"].T @ arrays["A"]
    expected = arrays["C"].copy()
    upper = np.triu_indices_from(expected)
    expected[upper] = dense[upper]
    return expected
