"""Jacobi 5-point stencil — a non-BLAS extension workload.

A classic FORTRAN-D motivating kernel: the right data-distribution/loop
structure pairing is everything.  With wrapped *rows* the natural ``i``
outer loop is already normal (access normalization returns the identity);
with wrapped *columns* the pass derives a loop interchange so the
distributed loop runs over columns instead.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.distributions import Distribution, wrapped_row
from repro.ir import Program, make_program


def jacobi_program(
    n: int = 256, distribution: Distribution = None
) -> Program:
    """One Jacobi sweep ``B = avg of A's four neighbours`` on an N x N grid."""
    dist = distribution if distribution is not None else wrapped_row()
    return make_program(
        loops=[("i", 1, "N-2"), ("j", 1, "N-2")],
        body=[
            "B[i, j] = (A[i-1, j] + A[i+1, j] + A[i, j-1] + A[i, j+1]) / 4"
        ],
        arrays=[("B", "N", "N"), ("A", "N", "N")],
        distributions={"A": dist, "B": dist},
        params={"N": n},
        name="jacobi",
    )


def jacobi_reference(arrays: Dict[str, np.ndarray]) -> np.ndarray:
    """What B must equal after one sweep on the *initial* arrays."""
    a = arrays["A"]
    expected = arrays["B"].copy()
    expected[1:-1, 1:-1] = (
        a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]
    ) / 4.0
    return expected
