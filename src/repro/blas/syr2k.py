"""Banded SYR2K — symmetric rank-2k update (Section 8.2).

Computes ``C = alpha*A^T*B + alpha*B^T*A + C`` for banded ``A``, ``B`` of
band width ``b``; ``C`` is then symmetric and banded with band width
``2b - 1`` and only its upper triangle is stored.  Band storage (0-based
variant of the paper's layout): element ``A(k, i)`` lives in
``Ab[k, i-k+b-1]`` (valid for ``|i-k| <= b-1``), and ``C(i, j)`` lives in
``Cb[i, j-i]`` for ``i <= j <= i+2b-2``.

With this layout the distribution-dimension subscript of the output is
``j - i``, which access normalization makes the (local) outermost loop;
the ``Ab``/``Bb`` band subscripts become invariant in the innermost loop,
enabling one block transfer per middle-loop iteration — the structure of
the paper's transformed code.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.distributions import wrapped_column
from repro.ir import Program, make_program

#: The published access-matrix row order of Section 8.2 (the paper's
#: tie-breaking between equally-ranked subscripts is otherwise unspecified).
PAPER_PRIORITY = ("j-i", "j-k", "k", "i-k", "i")


def syr2k_program(n: int = 400, b: int = 40, alpha: int = 1) -> Program:
    """The banded SYR2K source program with wrapped-column distributions."""
    return make_program(
        loops=[
            ("i", 0, "N-1"),
            ("j", "i", "min(i+2b-2, N-1)"),
            ("k", "max(i-b+1, j-b+1, 0)", "min(i+b-1, j+b-1, N-1)"),
        ],
        body=[
            "Cb[i, j-i] = Cb[i, j-i]"
            " + alpha*Ab[k, i-k+b-1]*Bb[k, j-k+b-1]"
            " + alpha*Ab[k, j-k+b-1]*Bb[k, i-k+b-1]"
        ],
        arrays=[
            ("Cb", "N", "2*b-1"),
            ("Ab", "N", "2*b-1"),
            ("Bb", "N", "2*b-1"),
        ],
        distributions={
            "Ab": wrapped_column(),
            "Bb": wrapped_column(),
            "Cb": wrapped_column(),
        },
        params={"N": n, "b": b, "alpha": alpha},
        name="syr2k",
    )


def band_to_dense(banded: np.ndarray, b: int) -> np.ndarray:
    """Expand band storage ``Xb[k, i-k+b-1]`` to a dense ``N x N`` matrix."""
    n = banded.shape[0]
    dense = np.zeros((n, n))
    for k in range(n):
        for i in range(max(0, k - b + 1), min(n, k + b)):
            dense[k, i] = banded[k, i - k + b - 1]
    return dense


def syr2k_reference(
    arrays: Dict[str, np.ndarray], n: int, b: int, alpha: float = 1.0
) -> np.ndarray:
    """What ``Cb`` must equal after running SYR2K on the *initial* arrays.

    Builds dense matrices from the band storage, computes
    ``alpha*A^T*B + alpha*B^T*A + C`` densely, and re-extracts the stored
    upper band of ``C``.
    """
    dense_a = band_to_dense(arrays["Ab"], b)
    dense_b = band_to_dense(arrays["Bb"], b)
    update = alpha * dense_a.T @ dense_b + alpha * dense_b.T @ dense_a
    expected = arrays["Cb"].copy()
    for i in range(n):
        for j in range(i, min(i + 2 * b - 1, n)):
            expected[i, j - i] += update[i, j]
    return expected
