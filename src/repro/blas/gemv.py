"""GEMV — matrix-vector multiplication (BLAS level-2 extension workload).

``Y[i] += A[i,j] * X[j]`` exercises one-dimensional distributions: with
``Y`` and ``X`` wrapped over their only dimension and ``A`` wrapped by
row, the normalized code keeps ``Y`` and ``A`` local and block-transfers
``X`` once per processor sweep.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.distributions import Wrapped, wrapped_row
from repro.ir import Program, make_program


def gemv_program(n: int = 400) -> Program:
    """The GEMV source program: row-wrapped matrix, wrapped vectors."""
    return make_program(
        loops=[("i", 0, "N-1"), ("j", 0, "N-1")],
        body=["Y[i] = Y[i] + A[i, j] * X[j]"],
        arrays=[("Y", "N"), ("A", "N", "N"), ("X", "N")],
        distributions={
            "Y": Wrapped(0),
            "A": wrapped_row(),
            "X": Wrapped(0),
        },
        params={"N": n},
        name="gemv",
    )


def gemv_reference(arrays: Dict[str, np.ndarray]) -> np.ndarray:
    """What Y must equal after running GEMV on the *initial* arrays."""
    return arrays["Y"] + arrays["A"] @ arrays["X"]
