"""Hermite normal form over the integers.

The column-style Hermite normal form is the workhorse of non-unimodular loop
transformation: for an invertible integer transformation ``T``, the image
lattice ``T . Z^n`` equals ``H . Z^n`` where ``H = T @ U`` is lower triangular
with positive diagonal and ``U`` is unimodular.  The diagonal of ``H`` gives
the stride of each transformed loop and the sub-diagonal entries give the
alignment (offset) of inner loops relative to outer ones.

Both the column form (``H = A @ U``) and the row form (``H = U @ A``) are
provided; each returns the unimodular cofactor so callers can verify the
factorization exactly.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.linalg.fraction_matrix import Matrix


def _as_int_grid(matrix: Matrix) -> List[List[int]]:
    return matrix.to_int_rows()


def _swap_cols(grid: List[List[int]], a: int, b: int) -> None:
    for row in grid:
        row[a], row[b] = row[b], row[a]


def _negate_col(grid: List[List[int]], j: int) -> None:
    for row in grid:
        row[j] = -row[j]


def _add_col_multiple(grid: List[List[int]], target: int, source: int, factor: int) -> None:
    if factor == 0:
        return
    for row in grid:
        row[target] += factor * row[source]


def column_hnf(matrix: Matrix) -> Tuple[Matrix, Matrix]:
    """Column-style Hermite normal form.

    Returns ``(H, U)`` with ``H = matrix @ U``, ``U`` unimodular, and ``H`` in
    column echelon form: each pivot is positive, lies strictly below the
    pivot of the previous column, everything to the right of a pivot in its
    row is zero, and entries to the left of a pivot in its row are reduced to
    ``0 <= h < pivot``.

    For a square invertible input, ``H`` is lower triangular with positive
    diagonal.
    """
    grid = _as_int_grid(matrix)
    nrows = len(grid)
    ncols = len(grid[0]) if grid else 0
    cofactor = Matrix.identity(ncols).to_int_rows()

    pivot_col = 0
    pivot_rows: List[int] = []
    for row in range(nrows):
        if pivot_col >= ncols:
            break
        if all(grid[row][j] == 0 for j in range(pivot_col, ncols)):
            continue
        # Gcd elimination across columns pivot_col..ncols-1 in this row.
        while True:
            nonzero = [j for j in range(pivot_col, ncols) if grid[row][j] != 0]
            if len(nonzero) == 1 and nonzero[0] == pivot_col:
                break
            smallest = min(nonzero, key=lambda j: abs(grid[row][j]))
            if smallest != pivot_col:
                _swap_cols(grid, smallest, pivot_col)
                _swap_cols(cofactor, smallest, pivot_col)
            pivot_value = grid[row][pivot_col]
            for j in range(pivot_col + 1, ncols):
                if grid[row][j] != 0:
                    quotient = grid[row][j] // pivot_value
                    _add_col_multiple(grid, j, pivot_col, -quotient)
                    _add_col_multiple(cofactor, j, pivot_col, -quotient)
        if grid[row][pivot_col] < 0:
            _negate_col(grid, pivot_col)
            _negate_col(cofactor, pivot_col)
        pivot_value = grid[row][pivot_col]
        for j in range(pivot_col):
            quotient = grid[row][j] // pivot_value
            if quotient:
                _add_col_multiple(grid, j, pivot_col, -quotient)
                _add_col_multiple(cofactor, j, pivot_col, -quotient)
        pivot_rows.append(row)
        pivot_col += 1

    return Matrix(grid), Matrix(cofactor)


def row_hnf(matrix: Matrix) -> Tuple[Matrix, Matrix]:
    """Row-style Hermite normal form.

    Returns ``(H, U)`` with ``H = U @ matrix``, ``U`` unimodular, and ``H`` in
    row echelon form with positive pivots; entries above each pivot are
    reduced to ``0 <= h < pivot``.
    """
    column_form, cofactor = column_hnf(matrix.transpose())
    return column_form.transpose(), cofactor.transpose()


def hnf_diagonal(matrix: Matrix) -> List[int]:
    """Diagonal of the column HNF of a square invertible integer matrix.

    Entry ``k`` is the stride of transformed loop ``k`` when scanning the
    image lattice of ``matrix`` in lexicographic order.
    """
    hermite, _ = column_hnf(matrix)
    return [int(hermite[k, k]) for k in range(min(matrix.nrows, matrix.ncols))]
