"""Small integer-vector utilities shared across the lattice machinery."""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import List, Sequence, Union

Scalar = Union[int, Fraction]


def vector_gcd(values: Sequence[int]) -> int:
    """Non-negative gcd of a sequence of integers (0 for all-zero input)."""
    result = 0
    for value in values:
        result = gcd(result, abs(int(value)))
    return result


def lcm(a: int, b: int) -> int:
    """Least common multiple of two non-negative integers."""
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // gcd(a, b)


def vector_lcm(values: Sequence[int]) -> int:
    """Least common multiple of a sequence of positive integers."""
    result = 1
    for value in values:
        result = lcm(result, abs(int(value)))
    return result


def clear_denominators(vector: Sequence[Fraction]) -> List[int]:
    """Scale a rational vector by the smallest positive integer making it integral.

    The result is additionally divided by the gcd of its entries, so the
    returned vector is *primitive* (entries have gcd 1), preserving direction.
    """
    fracs = [Fraction(entry) for entry in vector]
    denominator = vector_lcm([entry.denominator for entry in fracs]) or 1
    scaled = [int(entry * denominator) for entry in fracs]
    divisor = vector_gcd(scaled)
    if divisor > 1:
        scaled = [entry // divisor for entry in scaled]
    return scaled


def dot(a: Sequence[Scalar], b: Sequence[Scalar]) -> Scalar:
    """Inner product of two equal-length vectors."""
    if len(a) != len(b):
        raise ValueError("dot requires equal-length vectors")
    return sum(x * y for x, y in zip(a, b))


def is_integer_vector(vector: Sequence[Fraction]) -> bool:
    """True when every entry of a rational vector is an integer."""
    return all(Fraction(entry).denominator == 1 for entry in vector)


def as_int_vector(vector: Sequence[Scalar]) -> List[int]:
    """Convert a rational vector with unit denominators to ints."""
    result = []
    for entry in vector:
        frac = Fraction(entry)
        if frac.denominator != 1:
            raise ValueError(f"entry {frac} is not an integer")
        result.append(int(frac))
    return result
