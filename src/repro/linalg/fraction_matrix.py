"""Exact dense matrices over the rationals.

The whole compiler works with small matrices (dimensions bounded by the loop
nest depth, typically 2-6), so an exact ``fractions.Fraction`` implementation
is both fast enough and immune to the rounding problems that would corrupt
lattice computations.

The class is deliberately small and explicit: rows are tuples of
:class:`fractions.Fraction`, and every operation returns a new matrix.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Sequence, Tuple, Union

from repro.errors import NotInvertibleError, ShapeError

Scalar = Union[int, Fraction]
RowLike = Sequence[Scalar]


def _frac(value: Scalar) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise TypeError(f"matrix entries must be int or Fraction, got {type(value).__name__}")


class Matrix:
    """An immutable dense matrix with exact rational entries.

    Parameters
    ----------
    rows:
        An iterable of rows; each row is a sequence of ``int`` or
        ``Fraction`` entries.  All rows must have equal length.
    """

    __slots__ = ("_rows", "nrows", "ncols")

    def __init__(self, rows: Iterable[RowLike]):
        materialized: List[Tuple[Fraction, ...]] = []
        width = None
        for row in rows:
            converted = tuple(_frac(entry) for entry in row)
            if width is None:
                width = len(converted)
            elif len(converted) != width:
                raise ShapeError("all rows of a matrix must have the same length")
            materialized.append(converted)
        if width is None:
            width = 0
        self._rows: Tuple[Tuple[Fraction, ...], ...] = tuple(materialized)
        self.nrows = len(self._rows)
        self.ncols = width

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity(n: int) -> "Matrix":
        """The n-by-n identity matrix."""
        return Matrix([[1 if i == j else 0 for j in range(n)] for i in range(n)])

    @staticmethod
    def zeros(nrows: int, ncols: int) -> "Matrix":
        """A matrix of zeros with the given shape."""
        return Matrix([[0] * ncols for _ in range(nrows)])

    @staticmethod
    def from_rows(rows: Iterable[RowLike]) -> "Matrix":
        """Alias of the constructor, for symmetry with :meth:`from_cols`."""
        return Matrix(rows)

    @staticmethod
    def from_cols(cols: Iterable[RowLike]) -> "Matrix":
        """Build a matrix whose *columns* are the given sequences."""
        cols = [list(col) for col in cols]
        if not cols:
            return Matrix([])
        height = len(cols[0])
        for col in cols:
            if len(col) != height:
                raise ShapeError("all columns must have the same length")
        return Matrix([[cols[j][i] for j in range(len(cols))] for i in range(height)])

    @staticmethod
    def column(entries: RowLike) -> "Matrix":
        """A single-column matrix (column vector)."""
        return Matrix([[entry] for entry in entries])

    @staticmethod
    def row(entries: RowLike) -> "Matrix":
        """A single-row matrix (row vector)."""
        return Matrix([list(entries)])

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """``(nrows, ncols)``."""
        return (self.nrows, self.ncols)

    @property
    def is_square(self) -> bool:
        """True when the matrix has as many rows as columns."""
        return self.nrows == self.ncols

    def rows(self) -> List[List[Fraction]]:
        """The entries as a fresh list of row lists."""
        return [list(row) for row in self._rows]

    def cols(self) -> List[List[Fraction]]:
        """The entries as a fresh list of column lists."""
        return [[self._rows[i][j] for i in range(self.nrows)] for j in range(self.ncols)]

    def row_at(self, i: int) -> Tuple[Fraction, ...]:
        """Row ``i`` as a tuple."""
        return self._rows[i]

    def col_at(self, j: int) -> Tuple[Fraction, ...]:
        """Column ``j`` as a tuple."""
        return tuple(self._rows[i][j] for i in range(self.nrows))

    def __getitem__(self, key: Tuple[int, int]) -> Fraction:
        i, j = key
        return self._rows[i][j]

    def is_integer(self) -> bool:
        """True when every entry has denominator 1."""
        return all(entry.denominator == 1 for row in self._rows for entry in row)

    def to_int_rows(self) -> List[List[int]]:
        """The entries as Python ints; raises if any entry is fractional."""
        if not self.is_integer():
            raise ValueError("matrix has non-integer entries")
        return [[int(entry) for entry in row] for row in self._rows]

    def is_zero(self) -> bool:
        """True when every entry is zero."""
        return all(entry == 0 for row in self._rows for entry in row)

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def transpose(self) -> "Matrix":
        """The transpose."""
        return Matrix([[self._rows[i][j] for i in range(self.nrows)] for j in range(self.ncols)])

    def hstack(self, other: "Matrix") -> "Matrix":
        """Concatenate columns: ``[self | other]``."""
        if self.nrows != other.nrows:
            raise ShapeError("hstack requires equal row counts")
        return Matrix([list(a) + list(b) for a, b in zip(self._rows, other._rows)])

    def vstack(self, other: "Matrix") -> "Matrix":
        """Concatenate rows: ``[self / other]``."""
        if self.nrows and other.nrows and self.ncols != other.ncols:
            raise ShapeError("vstack requires equal column counts")
        return Matrix(list(self._rows) + list(other._rows))

    def select_rows(self, indices: Sequence[int]) -> "Matrix":
        """A new matrix keeping only the rows at ``indices`` (in that order)."""
        return Matrix([self._rows[i] for i in indices])

    def select_cols(self, indices: Sequence[int]) -> "Matrix":
        """A new matrix keeping only the columns at ``indices`` (in that order)."""
        return Matrix([[row[j] for j in indices] for row in self._rows])

    def drop_col(self, j: int) -> "Matrix":
        """A new matrix without column ``j``."""
        return self.select_cols([c for c in range(self.ncols) if c != j])

    def submatrix(self, row_slice: slice, col_slice: slice) -> "Matrix":
        """A contiguous submatrix."""
        return Matrix([row[col_slice] for row in self._rows[row_slice]])

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Matrix") -> "Matrix":
        if self.shape != other.shape:
            raise ShapeError(f"cannot add {self.shape} and {other.shape}")
        return Matrix(
            [[a + b for a, b in zip(r1, r2)] for r1, r2 in zip(self._rows, other._rows)]
        )

    def __sub__(self, other: "Matrix") -> "Matrix":
        if self.shape != other.shape:
            raise ShapeError(f"cannot subtract {other.shape} from {self.shape}")
        return Matrix(
            [[a - b for a, b in zip(r1, r2)] for r1, r2 in zip(self._rows, other._rows)]
        )

    def __neg__(self) -> "Matrix":
        return Matrix([[-entry for entry in row] for row in self._rows])

    def scale(self, factor: Scalar) -> "Matrix":
        """Multiply every entry by ``factor``."""
        factor = _frac(factor)
        return Matrix([[factor * entry for entry in row] for row in self._rows])

    def __matmul__(self, other: "Matrix") -> "Matrix":
        if self.ncols != other.nrows:
            raise ShapeError(f"cannot multiply {self.shape} by {other.shape}")
        other_cols = other.cols()
        return Matrix(
            [
                [sum(a * b for a, b in zip(row, col)) for col in other_cols]
                for row in self._rows
            ]
        )

    def apply(self, vector: RowLike) -> List[Fraction]:
        """Matrix-vector product ``self @ vector`` as a flat list."""
        if len(vector) != self.ncols:
            raise ShapeError(f"vector of length {len(vector)} does not match {self.shape}")
        vec = [_frac(entry) for entry in vector]
        return [sum(a * b for a, b in zip(row, vec)) for row in self._rows]

    # ------------------------------------------------------------------
    # elimination-based queries
    # ------------------------------------------------------------------
    def rref(self) -> Tuple["Matrix", List[int]]:
        """Reduced row echelon form and the list of pivot columns."""
        rows = self.rows()
        pivots: List[int] = []
        pivot_row = 0
        for col in range(self.ncols):
            if pivot_row >= self.nrows:
                break
            chosen = None
            for r in range(pivot_row, self.nrows):
                if rows[r][col] != 0:
                    chosen = r
                    break
            if chosen is None:
                continue
            rows[pivot_row], rows[chosen] = rows[chosen], rows[pivot_row]
            scale = rows[pivot_row][col]
            rows[pivot_row] = [entry / scale for entry in rows[pivot_row]]
            for r in range(self.nrows):
                if r != pivot_row and rows[r][col] != 0:
                    factor = rows[r][col]
                    rows[r] = [a - factor * b for a, b in zip(rows[r], rows[pivot_row])]
            pivots.append(col)
            pivot_row += 1
        return Matrix(rows), pivots

    def rank(self) -> int:
        """The rank of the matrix."""
        return len(self.rref()[1])

    def independent_column_indices(self) -> List[int]:
        """Indices of a maximal set of linearly independent columns.

        The columns are chosen greedily from left to right, so the result is
        the lexicographically first column basis.
        """
        return self.rref()[1]

    def independent_row_indices(self) -> List[int]:
        """Indices of a maximal set of linearly independent rows.

        Rows are scanned from top to bottom and a row is kept exactly when it
        is independent of the rows kept before it — the greedy order the
        paper's Algorithm *BasisMatrix* requires, so that less important
        (later) subscript rows are the ones discarded.
        """
        return self.transpose().independent_column_indices()

    def det(self) -> Fraction:
        """The determinant (square matrices only)."""
        if not self.is_square:
            raise ShapeError("determinant requires a square matrix")
        rows = self.rows()
        n = self.nrows
        result = Fraction(1)
        for col in range(n):
            pivot = None
            for r in range(col, n):
                if rows[r][col] != 0:
                    pivot = r
                    break
            if pivot is None:
                return Fraction(0)
            if pivot != col:
                rows[col], rows[pivot] = rows[pivot], rows[col]
                result = -result
            result *= rows[col][col]
            inv = Fraction(1) / rows[col][col]
            for r in range(col + 1, n):
                if rows[r][col] != 0:
                    factor = rows[r][col] * inv
                    rows[r] = [a - factor * b for a, b in zip(rows[r], rows[col])]
        return result

    def is_invertible(self) -> bool:
        """True when the matrix is square with non-zero determinant."""
        return self.is_square and self.det() != 0

    def inverse(self) -> "Matrix":
        """The exact inverse; raises :class:`NotInvertibleError` if singular."""
        if not self.is_square:
            raise NotInvertibleError("only square matrices can be inverted")
        n = self.nrows
        augmented, pivots = self.hstack(Matrix.identity(n)).rref()
        if pivots[:n] != list(range(n)):
            raise NotInvertibleError("matrix is singular")
        return augmented.submatrix(slice(0, n), slice(n, 2 * n))

    def solve(self, rhs: "Matrix") -> "Matrix":
        """Solve ``self @ X = rhs`` for square invertible ``self``."""
        return self.inverse() @ rhs

    def null_space(self) -> List[List[Fraction]]:
        """A basis of the (right) null space, as a list of vectors."""
        reduced, pivots = self.rref()
        free_cols = [j for j in range(self.ncols) if j not in pivots]
        basis: List[List[Fraction]] = []
        for free in free_cols:
            vector = [Fraction(0)] * self.ncols
            vector[free] = Fraction(1)
            for row_index, pivot_col in enumerate(pivots):
                vector[pivot_col] = -reduced[row_index, free]
            basis.append(vector)
        return basis

    def is_unimodular(self) -> bool:
        """True for square integer matrices with determinant ±1."""
        return self.is_square and self.is_integer() and abs(self.det()) == 1

    def is_permutation(self) -> bool:
        """True when the matrix is a permutation matrix."""
        if not self.is_square:
            return False
        for row in self._rows:
            if sorted(row) != [Fraction(0)] * (self.ncols - 1) + [Fraction(1)]:
                return False
        for col in self.cols():
            if sorted(col) != [Fraction(0)] * (self.nrows - 1) + [Fraction(1)]:
                return False
        return True

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matrix):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def __repr__(self) -> str:
        if not self.nrows:
            return "Matrix([])"
        body = ", ".join(
            "[" + ", ".join(_format_entry(entry) for entry in row) + "]" for row in self._rows
        )
        return f"Matrix([{body}])"

    def pretty(self) -> str:
        """A human-readable aligned rendering, for logs and docs."""
        cells = [[_format_entry(entry) for entry in row] for row in self._rows]
        if not cells:
            return "[]"
        widths = [max(len(cells[i][j]) for i in range(self.nrows)) for j in range(self.ncols)]
        lines = []
        for row in cells:
            padded = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            lines.append(f"[ {padded} ]")
        return "\n".join(lines)


def _format_entry(entry: Fraction) -> str:
    if entry.denominator == 1:
        return str(entry.numerator)
    return f"{entry.numerator}/{entry.denominator}"
