"""Exact symbolic quasi-polynomials over (params, P, p).

The closed-form engine (:mod:`repro.numa.counting`) answers each
``(N, P, proc)`` accounting cell with exact integer arithmetic — but it
re-derives the answer for every concrete cell.  This module is the
substrate of tier 0, the *symbolic* engine: expressions over the program
parameters, the processor count and the processor id that are derived
once per program and then merely *evaluated* per cell.

A :class:`SymExpr` is a normalized multivariate polynomial with exact
:class:`~fractions.Fraction` coefficients whose variables are either
plain symbols (``"N"``, ``"P"``, ``"p"``) or *atoms* — the non-polynomial
building blocks of integer counting:

* :class:`Mod` — ``arg mod modulus`` (``modulus`` a positive integer or a
  symbolic expression, in practice the processor count ``P``);
* :class:`FloorDiv` — ``floor(arg / modulus)``;
* :class:`Pos` — ``max(0, arg)``, from which ``min``/``max`` and the
  comparison indicators are built (so no symbolic comparisons are ever
  needed: every piecewise case is an algebraic identity);
* :class:`BoundedSum` — ``sum(body for var in [0, bound))`` evaluated at
  evaluation time, the residue-class construct (``bound`` is ``P`` or a
  small concrete modulus, never a problem size).

Everything is exact: the constructors apply only rewrites that hold for
*all* integer assignments (``floor((m*A + r)/m) = A + floor(r/m)``,
``(m*A + r) mod m = r mod m``, …), so a derived form is bit-identical to
the enumeration it replaced on every point of its domain.

:func:`sym_sum` is the workhorse: the exact symbolic sum of an expression
over ``var in [0, trips)`` with ``trips`` itself symbolic.  Polynomial
parts collapse via Faulhaber power sums; ``Mod``/``FloorDiv`` atoms are
removed by residue-splitting the range (``var = r + M*t``); ``Pos`` atoms
by splitting the range at their (symbolically clamped) sign change; inner
``BoundedSum`` atoms by exchanging the order of summation.  Expressions
outside the summable fragment raise :class:`SymbolicUnsupported`, which
the simulator treats as "fall down the engine ladder", never as an error.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd as _gcd
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

__all__ = [
    "SymExpr",
    "SymbolicUnsupported",
    "sym",
    "const",
    "mod",
    "floordiv",
    "pos",
    "smin",
    "smax",
    "ge0",
    "eq0",
    "bounded_sum",
    "compile_account",
    "eval_cost",
    "fresh_name",
    "planned_cost",
    "sym_sum",
    "sum_budget",
]


class SymbolicUnsupported(Exception):
    """The expression falls outside the symbolically summable fragment."""


# ---------------------------------------------------------------------------
# atoms
# ---------------------------------------------------------------------------

class _Atom:
    """Base class of non-polynomial bases.  Immutable and hashable."""

    __slots__ = ("_hash",)

    def _key(self) -> Tuple:
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        value = getattr(self, "_hash", None)
        if value is None:
            value = hash((type(self).__name__,) + self._key())
            object.__setattr__(self, "_hash", value)
        return value

    def evaluate(self, env: Mapping[str, int], memo: Dict) -> Fraction:
        raise NotImplementedError

    def depends_on(self, name: str) -> bool:
        raise NotImplementedError

    def free_symbols(self) -> frozenset:
        raise NotImplementedError


def _modulus_key(modulus) -> Tuple:
    if isinstance(modulus, int):
        return ("int", modulus)
    return ("expr", modulus._terms)


def _modulus_value(modulus, env, memo):
    if isinstance(modulus, int):
        return modulus
    return modulus._evaluate(env, memo)


def _modulus_depends(modulus, name: str) -> bool:
    return not isinstance(modulus, int) and modulus.depends_on(name)


def _modulus_symbols(modulus) -> frozenset:
    if isinstance(modulus, int):
        return frozenset()
    return modulus.free_symbols()


class Mod(_Atom):
    """``arg mod modulus`` with ``modulus`` a positive int or SymExpr."""

    __slots__ = ("arg", "modulus")

    # Annotation-only declarations (slots hold the storage): they let
    # strictly-typed consumers (repro.analysis.forms) see the fields.
    arg: "SymExpr"
    modulus: Union[int, "SymExpr"]

    def __init__(self, arg: "SymExpr", modulus) -> None:
        object.__setattr__(self, "arg", arg)
        object.__setattr__(self, "modulus", modulus)

    def _key(self) -> Tuple:
        return (self.arg._terms, _modulus_key(self.modulus))

    def evaluate(self, env, memo):
        m = _modulus_value(self.modulus, env, memo)
        if m <= 0:
            raise SymbolicUnsupported(f"non-positive modulus {m} in {self!r}")
        return self.arg._evaluate(env, memo) % m

    def depends_on(self, name: str) -> bool:
        return self.arg.depends_on(name) or _modulus_depends(self.modulus, name)

    def free_symbols(self) -> frozenset:
        return self.arg.free_symbols() | _modulus_symbols(self.modulus)

    def __repr__(self) -> str:
        return f"Mod({self.arg!r}, {self.modulus!r})"


class FloorDiv(_Atom):
    """``floor(arg / modulus)`` with ``modulus`` a positive int or SymExpr."""

    __slots__ = ("arg", "modulus")

    arg: "SymExpr"
    modulus: Union[int, "SymExpr"]

    def __init__(self, arg: "SymExpr", modulus) -> None:
        object.__setattr__(self, "arg", arg)
        object.__setattr__(self, "modulus", modulus)

    def _key(self) -> Tuple:
        return (self.arg._terms, _modulus_key(self.modulus))

    def evaluate(self, env, memo):
        m = _modulus_value(self.modulus, env, memo)
        if m <= 0:
            raise SymbolicUnsupported(f"non-positive modulus {m} in {self!r}")
        value = self.arg._evaluate(env, memo)
        if isinstance(value, int) and isinstance(m, int):
            return value // m
        return (value.numerator * m.denominator) // (
            value.denominator * m.numerator
        )

    def depends_on(self, name: str) -> bool:
        return self.arg.depends_on(name) or _modulus_depends(self.modulus, name)

    def free_symbols(self) -> frozenset:
        return self.arg.free_symbols() | _modulus_symbols(self.modulus)

    def __repr__(self) -> str:
        return f"FloorDiv({self.arg!r}, {self.modulus!r})"


class Pos(_Atom):
    """``max(0, arg)``."""

    __slots__ = ("arg",)

    arg: "SymExpr"

    def __init__(self, arg: "SymExpr") -> None:
        object.__setattr__(self, "arg", arg)

    def _key(self) -> Tuple:
        return (self.arg._terms,)

    def evaluate(self, env, memo):
        value = self.arg._evaluate(env, memo)
        return value if value > 0 else 0

    def depends_on(self, name: str) -> bool:
        return self.arg.depends_on(name)

    def free_symbols(self) -> frozenset:
        return self.arg.free_symbols()

    def __repr__(self) -> str:
        return f"Pos({self.arg!r})"


class Ge0(_Atom):
    """Indicator ``1 if arg >= 0 else 0`` (``arg`` integer-valued)."""

    __slots__ = ("arg",)

    arg: "SymExpr"

    def __init__(self, arg: "SymExpr") -> None:
        object.__setattr__(self, "arg", arg)

    def _key(self) -> Tuple:
        return (self.arg._terms,)

    def evaluate(self, env, memo):
        value = self.arg._evaluate(env, memo)
        return 1 if value >= 0 else 0

    def depends_on(self, name: str) -> bool:
        return self.arg.depends_on(name)

    def free_symbols(self) -> frozenset:
        return self.arg.free_symbols()

    def __repr__(self) -> str:
        return f"Ge0({self.arg!r})"


class BoundedSum(_Atom):
    """``sum(body for var in [0, max(0, bound)))`` — evaluated at eval time.

    ``bound`` is the processor count or a small concrete modulus, so
    evaluation stays O(P) — never a problem-size loop.
    """

    __slots__ = ("var", "bound", "body", "_freeatoms")

    var: str
    bound: "SymExpr"
    body: "SymExpr"

    def __init__(self, var: str, bound: "SymExpr", body: "SymExpr") -> None:
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "bound", bound)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "_freeatoms", None)

    def _key(self) -> Tuple:
        return (self.var, self.bound._terms, self.body._terms)

    def _free_atoms(self) -> Tuple["_Atom", ...]:
        """Atoms inside the body not depending on the bound variable —
        evaluated once per enclosing evaluation, shared by every
        iteration of the sum."""
        atoms = self._freeatoms
        if atoms is None:
            collected: List[_Atom] = []

            def _scan(expr: "SymExpr", bound_vars: frozenset) -> None:
                for atom in expr.atoms():
                    if not any(atom.depends_on(v) for v in bound_vars):
                        collected.append(atom)
                    elif isinstance(atom, BoundedSum):
                        _scan(atom.bound, bound_vars)
                        _scan(atom.body, bound_vars | {atom.var})
                    else:
                        _scan(atom.arg, bound_vars)

            _scan(self.body, frozenset((self.var,)))
            atoms = tuple(collected)
            object.__setattr__(self, "_freeatoms", atoms)
        return atoms

    def evaluate(self, env, memo):
        bound = self.bound._evaluate(env, memo)
        if bound.denominator != 1:
            raise SymbolicUnsupported(f"non-integral sum bound {bound}")
        shared: Dict = {}
        for atom in self._free_atoms():
            key = id(atom)
            if key not in shared:
                shared[key] = atom.evaluate(env, shared)
        total = 0
        inner_env = dict(env)
        for value in range(max(0, int(bound))):
            inner_env[self.var] = value
            # The bound variable changes per iteration: fresh memo,
            # seeded with the iteration-invariant atom values.
            total += self.body._evaluate(inner_env, dict(shared))
        return total

    def depends_on(self, name: str) -> bool:
        if name == self.var:
            return False
        return self.bound.depends_on(name) or self.body.depends_on(name)

    def free_symbols(self) -> frozenset:
        return self.bound.free_symbols() | (
            self.body.free_symbols() - frozenset([self.var])
        )

    def __repr__(self) -> str:
        return f"BoundedSum({self.var!r}, {self.bound!r}, {self.body!r})"


_Base = Union[str, _Atom]


#: Structural-equality interning registry: every distinct atom gets a
#: small integer at first sight, giving monomial sorting an O(1) key.
#: (Keying the sort on ``repr`` instead is quadratic-to-exponential on
#: deeply nested atoms: each comparison re-renders whole subtrees.)
#: First-come order is arbitrary but stable within a process, which is
#: all canonicalization needs — equality compares content, not order.
_ATOM_ORDER: Dict[_Atom, int] = {}


def _atom_order(atom: _Atom) -> int:
    index = _ATOM_ORDER.get(atom)
    if index is None:
        index = len(_ATOM_ORDER)
        _ATOM_ORDER[atom] = index
    return index


def _base_sort_key(base: _Base) -> Tuple:
    if isinstance(base, str):
        return (0, base, 0)
    return (1, type(base).__name__, _atom_order(base))


# ---------------------------------------------------------------------------
# the polynomial
# ---------------------------------------------------------------------------

_Monomial = Tuple[Tuple[_Base, int], ...]


class SymExpr:
    """A normalized polynomial over symbols and atoms (Fraction coeffs)."""

    __slots__ = ("_terms", "_hashv", "_symbols", "_plan", "_compiledf")

    _terms: Tuple[Tuple[_Monomial, Fraction], ...]

    def __init__(self, terms: Dict[_Monomial, Fraction]) -> None:
        clean = tuple(
            sorted(
                ((mono, coeff) for mono, coeff in terms.items() if coeff),
                key=lambda item: tuple(
                    (_base_sort_key(base), exp) for base, exp in item[0]
                ),
            )
        )
        object.__setattr__(self, "_terms", clean)
        object.__setattr__(self, "_hashv", None)
        object.__setattr__(self, "_symbols", None)
        object.__setattr__(self, "_plan", None)
        object.__setattr__(self, "_compiledf", None)

    # -- construction helpers ------------------------------------------
    @staticmethod
    def _const(value) -> "SymExpr":
        return SymExpr({(): Fraction(value)})

    @staticmethod
    def _symbol(name: str) -> "SymExpr":
        return SymExpr({((name, 1),): Fraction(1)})

    @staticmethod
    def _atom(atom: _Atom) -> "SymExpr":
        return SymExpr({((atom, 1),): Fraction(1)})

    @staticmethod
    def _coerce(value) -> "SymExpr":
        if isinstance(value, SymExpr):
            return value
        if isinstance(value, (int, Fraction)):
            return SymExpr._const(value)
        raise TypeError(f"cannot coerce {value!r} to SymExpr")

    # -- structural queries --------------------------------------------
    def is_const(self) -> bool:
        return all(mono == () for mono, _ in self._terms)

    def const_value(self) -> Fraction:
        for mono, coeff in self._terms:
            if mono == ():
                return coeff
        return Fraction(0)

    def depends_on(self, name: str) -> bool:
        return name in self.free_symbols()

    def free_symbols(self) -> frozenset:
        cached = self._symbols
        if cached is None:
            names = set()
            for mono, _coeff in self._terms:
                for base, _exp in mono:
                    if isinstance(base, str):
                        names.add(base)
                    else:
                        names |= base.free_symbols()
            cached = frozenset(names)
            object.__setattr__(self, "_symbols", cached)
        return cached

    def atoms(self) -> Iterator[_Atom]:
        """Every atom base appearing at the top polynomial level."""
        for mono, _coeff in self._terms:
            for base, _exp in mono:
                if isinstance(base, _Atom):
                    yield base

    def integer_coeffs(self) -> bool:
        return all(coeff.denominator == 1 for _mono, coeff in self._terms)

    def term_count(self) -> int:
        count = len(self._terms)
        for atom in self.atoms():
            if isinstance(atom, BoundedSum):
                count += atom.body.term_count()
            elif isinstance(atom, (Mod, FloorDiv, Pos, Ge0)):
                count += atom.arg.term_count()
        return count

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other) -> "SymExpr":
        other = SymExpr._coerce(other)
        terms = dict(self._terms)
        for mono, coeff in other._terms:
            terms[mono] = terms.get(mono, Fraction(0)) + coeff
        return SymExpr(terms)

    __radd__ = __add__

    def __neg__(self) -> "SymExpr":
        return SymExpr({mono: -coeff for mono, coeff in self._terms})

    def __sub__(self, other) -> "SymExpr":
        return self + (-SymExpr._coerce(other))

    def __rsub__(self, other) -> "SymExpr":
        return SymExpr._coerce(other) + (-self)

    def __mul__(self, other) -> "SymExpr":
        other = SymExpr._coerce(other)
        terms: Dict[_Monomial, Fraction] = {}
        for mono_a, coeff_a in self._terms:
            for mono_b, coeff_b in other._terms:
                powers: Dict[_Base, int] = {}
                for base, exp in mono_a:
                    powers[base] = powers.get(base, 0) + exp
                for base, exp in mono_b:
                    powers[base] = powers.get(base, 0) + exp
                mono = tuple(
                    sorted(powers.items(), key=lambda kv: _base_sort_key(kv[0]))
                )
                terms[mono] = terms.get(mono, Fraction(0)) + coeff_a * coeff_b
        return SymExpr(terms)

    __rmul__ = __mul__

    def __eq__(self, other) -> bool:
        return isinstance(other, SymExpr) and self._terms == other._terms

    def __hash__(self) -> int:
        value = self._hashv
        if value is None:
            value = hash(self._terms)
            object.__setattr__(self, "_hashv", value)
        return value

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for mono, coeff in self._terms:
            factors = [str(coeff)] if (coeff != 1 or not mono) else []
            for base, exp in mono:
                text = base if isinstance(base, str) else repr(base)
                factors.append(text if exp == 1 else f"{text}^{exp}")
            parts.append("*".join(factors))
        return " + ".join(parts)

    # -- evaluation -----------------------------------------------------
    def _eval_plan(self):
        """``(den, ((int_coeff, mono), ...))`` — integer-arithmetic plan.

        Folding every coefficient onto one common denominator turns the
        hot per-term work into plain int multiplication; the single
        division happens once per (memoized) subexpression.
        """
        plan = self._plan
        if plan is None:
            from math import gcd

            den = 1
            for _mono, coeff in self._terms:
                den = den * coeff.denominator // gcd(den, coeff.denominator)
            terms = tuple(
                (int(coeff * den), mono) for mono, coeff in self._terms
            )
            plan = (den, terms)
            object.__setattr__(self, "_plan", plan)
        return plan

    def _evaluate(self, env: Mapping[str, int], memo: Dict):
        key = id(self)
        cached = memo.get(key)
        if cached is not None:
            return cached
        den, terms = self._eval_plan()
        total = 0
        for coeff, mono in terms:
            value = coeff
            for base, exp in mono:
                if not value:
                    break
                if isinstance(base, str):
                    try:
                        factor = env[base]
                    except KeyError:
                        raise SymbolicUnsupported(
                            f"unbound symbol {base!r} at evaluation"
                        )
                else:
                    akey = id(base)
                    factor = memo.get(akey)
                    if factor is None:
                        factor = base.evaluate(env, memo)
                        memo[akey] = factor
                value *= factor ** exp
            total += value
        result = total if den == 1 else Fraction(total, den)
        memo[key] = result
        return result

    def evaluate(self, env: Mapping[str, int], memo: Optional[Dict] = None) -> int:
        """Exact integer value under ``env``.

        Raises :class:`SymbolicUnsupported` when the value is not an
        integer — derived counting forms are always integral on their
        domain, so a fractional value signals an out-of-domain call.
        """
        value = self._evaluate(env, {} if memo is None else memo)
        if value.denominator != 1:
            raise SymbolicUnsupported(
                f"non-integral value {value} for {self!r}"
            )
        return int(value)

    # -- compiled evaluation --------------------------------------------
    def compiled(self):
        """A Python function ``env -> int`` generated from this form.

        Compiling once turns per-cell evaluation into straight-line
        bytecode (atoms become cached locals, residue sums become real
        loops with hoisted invariants) — the same derive-once /
        evaluate-many discipline as the tier-2 kernel compiler, one
        level down.  Falls back to the interpreter when a bound-variable
        name is ambiguous (shadowing would mis-share cached atoms).
        """
        fn = self._compiledf
        if fn is None:
            if _bound_vars_ambiguous(self):
                fn = self.evaluate
            else:
                fn = _compile_form(self)
            object.__setattr__(self, "_compiledf", fn)
        return fn

    def evaluate_fast(self, env: Mapping[str, int]) -> int:
        """:meth:`evaluate` through the compiled path."""
        try:
            return self.compiled()(env)
        except KeyError as error:
            raise SymbolicUnsupported(
                f"unbound symbol {error.args[0]!r} at evaluation"
            )

    # -- substitution ---------------------------------------------------
    def subs(self, name: str, replacement: "SymExpr") -> "SymExpr":
        """Substitute ``name := replacement`` (rebuilding atoms exactly)."""
        if not self.depends_on(name):
            return self
        replacement = SymExpr._coerce(replacement)
        total = SymExpr({})
        for mono, coeff in self._terms:
            term = SymExpr._const(coeff)
            for base, exp in mono:
                if isinstance(base, str):
                    factor = replacement if base == name else SymExpr._symbol(base)
                else:
                    factor = SymExpr._atom_subs(base, name, replacement)
                for _ in range(exp):
                    term = term * factor
            total = total + term
        return total

    @staticmethod
    def _atom_subs(atom: _Atom, name: str, replacement: "SymExpr") -> "SymExpr":
        if not atom.depends_on(name):
            return SymExpr._atom(atom)
        if isinstance(atom, Mod):
            modulus = atom.modulus
            if _modulus_depends(modulus, name):
                modulus = modulus.subs(name, replacement)
            return mod(atom.arg.subs(name, replacement), modulus)
        if isinstance(atom, FloorDiv):
            modulus = atom.modulus
            if _modulus_depends(modulus, name):
                modulus = modulus.subs(name, replacement)
            return floordiv(atom.arg.subs(name, replacement), modulus)
        if isinstance(atom, Pos):
            return pos(atom.arg.subs(name, replacement))
        if isinstance(atom, Ge0):
            return ge0(atom.arg.subs(name, replacement))
        if isinstance(atom, BoundedSum):
            if name == atom.var:
                return SymExpr._atom(atom)
            if atom.var in replacement.free_symbols():
                # Avoid capture: rename the bound variable first.
                fresh = fresh_name()
                renamed = BoundedSum(
                    fresh, atom.bound, atom.body.subs(atom.var, sym(fresh))
                )
                return SymExpr._atom_subs(renamed, name, replacement)
            return bounded_sum(
                atom.var,
                atom.bound.subs(name, replacement),
                atom.body.subs(name, replacement),
            )
        raise SymbolicUnsupported(f"cannot substitute into {atom!r}")

    def replace_atom(self, target: _Atom, replacement: "SymExpr") -> "SymExpr":
        """Replace every occurrence of ``target`` (even nested) by an expr."""
        total = SymExpr({})
        for mono, coeff in self._terms:
            term = SymExpr._const(coeff)
            for base, exp in mono:
                if isinstance(base, str):
                    factor = SymExpr._symbol(base)
                elif base == target:
                    factor = replacement
                else:
                    factor = SymExpr._atom_replace(base, target, replacement)
                for _ in range(exp):
                    term = term * factor
            total = total + term
        return total

    @staticmethod
    def _atom_replace(atom: _Atom, target: _Atom, replacement: "SymExpr") -> "SymExpr":
        if isinstance(atom, Mod):
            arg = atom.arg.replace_atom(target, replacement)
            if arg == atom.arg:
                return SymExpr._atom(atom)
            return mod(arg, atom.modulus)
        if isinstance(atom, FloorDiv):
            arg = atom.arg.replace_atom(target, replacement)
            if arg == atom.arg:
                return SymExpr._atom(atom)
            return floordiv(arg, atom.modulus)
        if isinstance(atom, Pos):
            arg = atom.arg.replace_atom(target, replacement)
            if arg == atom.arg:
                return SymExpr._atom(atom)
            return pos(arg)
        if isinstance(atom, Ge0):
            arg = atom.arg.replace_atom(target, replacement)
            if arg == atom.arg:
                return SymExpr._atom(atom)
            return ge0(arg)
        if isinstance(atom, BoundedSum):
            body = atom.body.replace_atom(target, replacement)
            bound = atom.bound.replace_atom(target, replacement)
            if body == atom.body and bound == atom.bound:
                return SymExpr._atom(atom)
            return bounded_sum(atom.var, bound, body)
        raise SymbolicUnsupported(f"cannot rewrite {atom!r}")


# ---------------------------------------------------------------------------
# public constructors (with exact-identity rewrites)
# ---------------------------------------------------------------------------

def sym(name: str) -> SymExpr:
    """The symbol ``name``."""
    return SymExpr._symbol(name)


def const(value) -> SymExpr:
    """The constant ``value`` (int or Fraction)."""
    return SymExpr._const(value)


_FRESH = [0]


def fresh_name() -> str:
    """A globally fresh bound-variable name (for sums)."""
    _FRESH[0] += 1
    return f"__q{_FRESH[0]}"


def _modulus_norm(modulus):
    """Normalize a modulus: a positive int or a SymExpr."""
    if isinstance(modulus, int):
        if modulus <= 0:
            raise SymbolicUnsupported(f"non-positive modulus {modulus}")
        return modulus
    modulus = SymExpr._coerce(modulus)
    if modulus.is_const():
        value = modulus.const_value()
        if value.denominator != 1 or value <= 0:
            raise SymbolicUnsupported(f"bad modulus {value}")
        return value.numerator
    return modulus


def _split_divisible(expr: SymExpr, modulus) -> Tuple[SymExpr, SymExpr]:
    """Split ``expr = modulus*quotient + remainder`` exactly.

    Only monomials that are *syntactically* integer multiples of the
    modulus move into the quotient: for a concrete modulus an integer
    coefficient divisible by it, for a single-symbol modulus a monomial
    containing that symbol with integer coefficient.  This keeps the
    identities ``floor((m*A + r)/m) = A + floor(r/m)`` and
    ``(m*A + r) mod m = r mod m`` valid for every integer assignment
    (``A`` is integer-valued by the integer-coefficient restriction and
    the integrality of all bases).
    """
    if isinstance(modulus, int):
        mod_coeff = modulus
        mod_powers: Dict[_Base, int] = {}
    elif len(modulus._terms) == 1:
        mono, mcoeff = modulus._terms[0]
        if mcoeff.denominator != 1 or mcoeff <= 0:
            return SymExpr({}), expr
        mod_coeff = mcoeff.numerator
        mod_powers = dict(mono)
    else:
        return SymExpr({}), expr
    quotient: Dict[_Monomial, Fraction] = {}
    remainder: Dict[_Monomial, Fraction] = {}
    for mono2, coeff in expr._terms:
        powers = dict(mono2)
        if (
            coeff.denominator == 1
            and coeff.numerator % mod_coeff == 0
            and all(powers.get(base, 0) >= exp for base, exp in mod_powers.items())
        ):
            for base, exp in mod_powers.items():
                powers[base] -= exp
            reduced = tuple(
                sorted(
                    ((b, e) for b, e in powers.items() if e),
                    key=lambda kv: _base_sort_key(kv[0]),
                )
            )
            quotient[reduced] = (
                quotient.get(reduced, Fraction(0)) + coeff / mod_coeff
            )
        else:
            remainder[mono2] = coeff
    return SymExpr(quotient), SymExpr(remainder)


def _require_integer_coeffs(expr: SymExpr, what: str) -> None:
    if not expr.integer_coeffs():
        raise SymbolicUnsupported(f"fractional coefficients in {what}: {expr!r}")


def mod(expr, modulus) -> SymExpr:
    """``expr mod modulus`` as a SymExpr (exact for all integer points)."""
    expr = SymExpr._coerce(expr)
    modulus = _modulus_norm(modulus)
    _require_integer_coeffs(expr, "mod argument")
    if isinstance(modulus, int) and modulus == 1:
        return SymExpr({})
    _quotient, remainder = _split_divisible(expr, modulus)
    if isinstance(modulus, int):
        reduced: Dict[_Monomial, Fraction] = {}
        for mono, coeff in remainder._terms:
            folded = Fraction(coeff.numerator % modulus)
            if folded:
                reduced[mono] = folded
        remainder = SymExpr(reduced)
    if not remainder._terms:
        return SymExpr({})
    if remainder.is_const() and isinstance(modulus, int):
        return SymExpr._const(remainder.const_value().numerator % modulus)
    if len(remainder._terms) == 1:
        mono, coeff = remainder._terms[0]
        if coeff == 1 and len(mono) == 1 and mono[0][1] == 1:
            base = mono[0][0]
            if isinstance(base, Mod) and _modulus_key(base.modulus) == _modulus_key(modulus):
                return remainder  # mod(mod(x, m), m) = mod(x, m)
    return SymExpr._atom(Mod(remainder, modulus))


def floordiv(expr, modulus) -> SymExpr:
    """``floor(expr / modulus)`` as a SymExpr."""
    expr = SymExpr._coerce(expr)
    if isinstance(modulus, int) and modulus < 0:
        # floor(a/b) = floor((-a)/(-b))
        return floordiv(-expr, -modulus)
    modulus = _modulus_norm(modulus)
    _require_integer_coeffs(expr, "floordiv argument")
    if isinstance(modulus, int) and modulus == 1:
        return expr
    quotient, remainder = _split_divisible(expr, modulus)
    if not remainder._terms:
        return quotient
    if remainder.is_const() and isinstance(modulus, int):
        return quotient + SymExpr._const(
            remainder.const_value().numerator // modulus
        )
    return quotient + SymExpr._atom(FloorDiv(remainder, modulus))


def _nonnegative(expr: SymExpr) -> bool:
    """Syntactically provable ``expr >= 0`` (conservative)."""
    for mono, coeff in expr._terms:
        if coeff < 0:
            return False
        for base, _exp in mono:
            if isinstance(base, str):
                return False
            if not isinstance(base, (Mod, Pos, Ge0)):
                return False
    return True


def pos(expr) -> SymExpr:
    """``max(0, expr)`` as a SymExpr."""
    expr = SymExpr._coerce(expr)
    if expr.is_const():
        value = expr.const_value()
        return SymExpr._const(value if value > 0 else 0)
    if _nonnegative(expr):
        return expr
    return SymExpr._atom(Pos(expr))


def smin(a, b) -> SymExpr:
    """``min(a, b)`` via ``a - max(0, a - b)``."""
    a = SymExpr._coerce(a)
    b = SymExpr._coerce(b)
    return a - pos(a - b)


def smax(a, b) -> SymExpr:
    """``max(a, b)`` via ``a + max(0, b - a)``."""
    a = SymExpr._coerce(a)
    b = SymExpr._coerce(b)
    return a + pos(b - a)


def ge0(expr) -> SymExpr:
    """Indicator ``1 if expr >= 0 else 0`` for integer-valued ``expr``."""
    expr = SymExpr._coerce(expr)
    if expr.is_const():
        return SymExpr._const(1 if expr.const_value() >= 0 else 0)
    if _nonnegative(expr):
        return SymExpr._const(1)
    return SymExpr._atom(Ge0(expr))


def eq0(expr) -> SymExpr:
    """Indicator ``1 if expr == 0 else 0`` for integer-valued ``expr``."""
    expr = SymExpr._coerce(expr)
    if _nonnegative(expr):
        # 0 <= expr: expr == 0 iff -expr >= 0.
        return ge0(-expr)
    return ge0(expr) * ge0(-expr)


def bounded_sum(var: str, bound, body) -> SymExpr:
    """``sum(body for var in [0, max(0, bound)))`` as a SymExpr."""
    bound = SymExpr._coerce(bound)
    body = SymExpr._coerce(body)
    if not body._terms:
        return SymExpr({})
    if not body.depends_on(var):
        if bound.is_const():
            value = bound.const_value()
            if value.denominator != 1:
                raise SymbolicUnsupported(f"non-integral sum bound {value}")
            return body * max(0, value.numerator)
        return body * pos(bound)
    if bound.is_const():
        value = bound.const_value()
        if value.denominator != 1:
            raise SymbolicUnsupported(f"non-integral sum bound {value}")
        count = max(0, value.numerator)
        if count <= 16:
            total = SymExpr({})
            for point in range(count):
                total = total + body.subs(var, SymExpr._const(point))
            return total
    return SymExpr._atom(BoundedSum(var, bound, body))


# ---------------------------------------------------------------------------
# Faulhaber power sums
# ---------------------------------------------------------------------------

_POWER_SUM_CACHE: Dict[int, Tuple[Fraction, ...]] = {}


def _power_sum_coeffs(k: int) -> Tuple[Fraction, ...]:
    """Coefficients ``c[j]`` with ``sum(q**k for q in [0,T)) = sum c[j]*T**j``.

    Derived through the binomial basis: ``q**k = sum_j S(k,j) * j! * C(q,j)``
    and ``sum_{q<T} C(q,j) = C(T, j+1)`` — all exact rational arithmetic.
    """
    cached = _POWER_SUM_CACHE.get(k)
    if cached is not None:
        return cached
    if k > 16:
        raise SymbolicUnsupported(f"power sum degree {k} too large")
    # Stirling numbers of the second kind S(k, j).
    stirling = [[Fraction(0)] * (k + 1) for _ in range(k + 1)]
    stirling[0][0] = Fraction(1)
    for n in range(1, k + 1):
        for j in range(1, n + 1):
            stirling[n][j] = j * stirling[n - 1][j] + stirling[n - 1][j - 1]
    coeffs = [Fraction(0)] * (k + 2)
    for j in range(k + 1):
        if stirling[k][j] == 0:
            continue
        factorial = Fraction(1)
        for i in range(1, j + 1):
            factorial *= i
        weight = stirling[k][j] * factorial
        # C(T, j+1) = T(T-1)...(T-j) / (j+1)! as a polynomial in T.
        poly = [Fraction(1)]
        for i in range(j + 1):
            nxt = [Fraction(0)] * (len(poly) + 1)
            for d, c in enumerate(poly):
                nxt[d + 1] += c
                nxt[d] -= c * i
            poly = nxt
        denominator = factorial * (j + 1)
        for d, c in enumerate(poly):
            coeffs[d] += weight * c / denominator
    result = tuple(coeffs)
    _POWER_SUM_CACHE[k] = result
    return result


def _power_sum(k: int, trips: SymExpr) -> SymExpr:
    """``sum(q**k for q in [0, trips))`` as a polynomial in ``trips``."""
    if k == 0:
        return trips
    total = SymExpr({})
    power = SymExpr._const(1)
    for coeff in _power_sum_coeffs(k):
        if coeff:
            total = total + power * SymExpr._const(coeff)
        power = power * trips
    return total


# ---------------------------------------------------------------------------
# symbolic summation
# ---------------------------------------------------------------------------

def _atom_obstructions(expr: SymExpr, var: str):
    """Var-dependent atoms at the top level, innermost-resolvable first.

    Yields ``(atom, inner)`` pairs where ``inner`` is True when the atom's
    argument depends on ``var`` only polynomially (no var-dependent atom
    inside) — those are the ones a split can eliminate directly.
    """
    seen = set()

    def _walk(e: SymExpr):
        for atom in e.atoms():
            if atom in seen or not atom.depends_on(var):
                continue
            seen.add(atom)
            if isinstance(atom, BoundedSum):
                yield (atom, False)
                continue
            nested = list(_walk(atom.arg))
            for item in nested:
                yield item
            yield (atom, not nested)

    return list(_walk(expr))


def _as_poly_in(expr: SymExpr, var: str) -> Optional[Dict[int, SymExpr]]:
    """``expr`` as ``{degree: coefficient}`` in ``var`` — None when an atom
    at the top level depends on ``var``."""
    result: Dict[int, SymExpr] = {}
    for mono, coeff in expr._terms:
        degree = 0
        rest: Dict[_Base, int] = {}
        for base, exp in mono:
            if isinstance(base, str) and base == var:
                degree = exp
                continue
            if isinstance(base, _Atom) and base.depends_on(var):
                return None
            rest[base] = exp
        reduced = tuple(
            sorted(rest.items(), key=lambda kv: _base_sort_key(kv[0]))
        )
        result[degree] = result.get(degree, SymExpr({})) + SymExpr({reduced: coeff})
    return result


def _affine_in(expr: SymExpr, var: str) -> Optional[Tuple[SymExpr, SymExpr]]:
    """``expr = slope*var + intercept`` (slope var-free), or None."""
    poly = _as_poly_in(expr, var)
    if poly is None:
        return None
    if any(degree > 1 for degree in poly):
        return None
    return poly.get(1, SymExpr({})), poly.get(0, SymExpr({}))


def _signed_slope(slope: SymExpr, positive: frozenset):
    """``(sign, |slope|)`` when the slope's sign is statically known.

    A slope qualifies when it is a single monomial with an integer
    coefficient whose bases are all symbols declared positive (>= 1) by
    the caller — e.g. the processor count in a wrapped schedule stride.
    Returns None otherwise.
    """
    if slope.is_const():
        value = slope.const_value()
        if value.denominator != 1 or value == 0:
            return None
        return (1 if value > 0 else -1), abs(value.numerator)
    if len(slope._terms) != 1:
        return None
    mono, coeff = slope._terms[0]
    if coeff.denominator != 1:
        return None
    for base, _exp in mono:
        if not (isinstance(base, str) and base in positive):
            return None
    sign = 1 if coeff > 0 else -1
    return sign, slope * sign


def eval_cost(expr: SymExpr, extent_hint) -> int:
    """Rough flat-operation count for one evaluation of ``expr``.

    ``extent_hint(bound) -> int`` estimates a bounded sum's trip count
    (callers know which symbols they can bind); everything else counts
    one unit per polynomial term, recursing into atom arguments.  The
    estimate steers two decisions — whether a closed form beats the
    loop it replaced, and whether the symbolic tier beats the next tier
    for a concrete cell — so it only needs to rank, not to be exact.
    """
    cost = len(expr._terms)
    for atom in expr.atoms():
        if isinstance(atom, BoundedSum):
            cost += max(0, extent_hint(atom.bound)) * (
                1 + eval_cost(atom.body, extent_hint)
            )
        else:
            cost += eval_cost(atom.arg, extent_hint)
    return cost


def _deep_atoms(expr: SymExpr, out: List[_Atom]) -> List[_Atom]:
    """Every atom in ``expr``, including atoms nested inside atom args."""
    for atom in expr.atoms():
        out.append(atom)
        if isinstance(atom, BoundedSum):
            _deep_atoms(atom.bound, out)
            _deep_atoms(atom.body, out)
        else:
            _deep_atoms(atom.arg, out)
    return out


def _domain_simplify(expr: SymExpr, var: str) -> SymExpr:
    """Resolve atoms the summation domain ``var >= 0`` already decides.

    Inside ``sym_sum`` the variable only takes values in
    ``[0, max(0, trips))``, so ``pos(k*var)`` is ``k*var`` (k > 0),
    ``pos(-k*var)`` is ``0``, and ``ge0(k*var)`` is ``1`` — even nested
    inside other atoms' arguments.  Resolving them before range
    splitting matters: each unresolved positive-part arm doubles the
    split count, so two vacuous arms cost a factor of four in result
    size for no information.
    """
    changed = True
    while changed:
        changed = False
        for atom in _deep_atoms(expr, []):
            if not isinstance(atom, (Pos, Ge0)):
                continue
            terms = atom.arg._terms
            if len(terms) != 1 or terms[0][0] != ((var, 1),):
                continue
            coeff = terms[0][1]
            if coeff > 0:
                new = atom.arg if isinstance(atom, Pos) else SymExpr._const(1)
            elif isinstance(atom, Pos):
                new = SymExpr({})
            else:
                continue  # ge0(-k*var) is an equality test, not constant
            replaced = expr.replace_atom(atom, new)
            if replaced != expr:
                expr = replaced
                changed = True
                break
    return expr


_SUM_TERM_LIMIT = 4000

#: Remaining :func:`sym_sum` invocations allowed under :func:`sum_budget`
#: (``None`` = unlimited).  Nested bounds (``smax``/``smin`` chains) make
#: range splitting exponential in the number of arms; a budget turns a
#: multi-minute grind into a fast, catchable failure.
_SUM_BUDGET: List[Optional[int]] = [None]


class sum_budget:
    """Context manager capping the total ``sym_sum`` work inside.

    Each call charges ``1 + term_count`` of the expression being summed,
    so the budget tracks actual polynomial size, not call count.
    """

    def __init__(self, limit: int):
        self.limit = limit
        self.previous: Optional[int] = None

    def __enter__(self) -> "sum_budget":
        self.previous = _SUM_BUDGET[0]
        _SUM_BUDGET[0] = self.limit
        return self

    def __exit__(self, *exc) -> None:
        _SUM_BUDGET[0] = self.previous


def sym_sum(
    expr: SymExpr, var: str, trips: SymExpr,
    positive: frozenset = frozenset(),
) -> SymExpr:
    """Exact ``sum(expr for var in [0, max(0, trips)))``, symbolically.

    ``trips`` must not depend on ``var``; symbols in ``positive`` are
    assumed >= 1 (the processor count), which lets range splits handle
    strides proportional to them.  Raises :class:`SymbolicUnsupported`
    outside the summable fragment.
    """
    if not expr.depends_on(var):
        return expr * pos(trips)
    simplified = _domain_simplify(expr, var)
    if simplified != expr:
        expr = simplified
        if not expr.depends_on(var):
            return expr * pos(trips)
    if expr.term_count() > _SUM_TERM_LIMIT:
        raise SymbolicUnsupported("symbolic form grew too large")
    budget = _SUM_BUDGET[0]
    if budget is not None:
        cost = 1 + expr.term_count()
        if budget < cost:
            raise SymbolicUnsupported("symbolic summation budget exhausted")
        _SUM_BUDGET[0] = budget - cost

    obstructions = _atom_obstructions(expr, var)

    # 1. Exchange summation with var-dependent inner sums.
    for atom, _inner in obstructions:
        if isinstance(atom, BoundedSum):
            return _swap_bounded_sum(expr, var, trips, atom, positive)

    # 2. Residue-split Mod/FloorDiv atoms whose arg is polynomial in var.
    # Prefer a symbolic modulus (the processor count): one split then
    # collapses every mod-P atom at once.
    residue_modulus = None
    for atom, inner in obstructions:
        if inner and isinstance(atom, (Mod, FloorDiv)):
            if _modulus_depends(atom.modulus, var):
                raise SymbolicUnsupported(
                    f"summation variable inside modulus of {atom!r}"
                )
            if residue_modulus is None or not isinstance(atom.modulus, int):
                residue_modulus = atom.modulus
            if not isinstance(residue_modulus, int):
                break
    if residue_modulus is not None:
        return _residue_split(expr, var, trips, residue_modulus, positive)

    # 3. Range-split Pos/Ge0 atoms with an affine, known-sign-slope
    # argument.  Indicators first: their split replaces the atom with a
    # 0/1 constant, shrinking the expression.
    blocked_split = None
    for wanted in (Ge0, Pos):
        for atom, inner in obstructions:
            if inner and isinstance(atom, wanted):
                affine = _affine_in(atom.arg, var)
                if affine is None:
                    # Often an outer smax/smin arm whose argument holds a
                    # nested Pos atom: splitting the affine atoms first
                    # resolves it from the inside out.
                    blocked_split = atom
                    continue
                return _pos_split(expr, var, trips, atom, affine, positive)
    if blocked_split is not None:
        raise SymbolicUnsupported(
            f"cannot split non-affine positive part {blocked_split!r}"
        )

    if obstructions:
        raise SymbolicUnsupported(
            f"cannot sum over {var!r}: {obstructions[0][0]!r}"
        )

    # 4. Pure polynomial in var: Faulhaber.
    poly = _as_poly_in(expr, var)
    if poly is None:  # pragma: no cover - guarded by the obstruction scan
        raise SymbolicUnsupported(f"cannot sum {expr!r} over {var!r}")
    total = SymExpr({})
    clamped = pos(trips)
    for degree, coefficient in poly.items():
        total = total + coefficient * _power_sum(degree, clamped)
    return total


def _swap_bounded_sum(
    expr: SymExpr, var: str, trips: SymExpr, atom: BoundedSum,
    positive: frozenset,
) -> SymExpr:
    """``sum_var (c * B * rest) = c * BoundedSum(r, b, sum_var(body*rest))``.

    Terms not containing ``atom`` are summed separately; for terms that
    do, every var-dependent cofactor moves inside the exchanged sum.
    """
    if atom.bound.depends_on(var):
        raise SymbolicUnsupported(
            f"summation variable in inner sum bound {atom!r}"
        )
    with_atom: Dict[_Monomial, Fraction] = {}
    without: Dict[_Monomial, Fraction] = {}
    for mono, coeff in expr._terms:
        if any(base == atom for base, _exp in mono):
            with_atom[mono] = coeff
        else:
            without[mono] = coeff
    if not with_atom:
        # The atom only occurs nested inside another atom's argument;
        # no sound exchange rule applies there.
        raise SymbolicUnsupported(
            f"inner sum nested inside another atom: {atom!r}"
        )
    rest_sum = (
        sym_sum(SymExpr(without), var, trips, positive)
        if without else SymExpr({})
    )

    total = rest_sum
    fresh = fresh_name()
    body = atom.body.subs(atom.var, sym(fresh))
    for mono, coeff in with_atom.items():
        outside = SymExpr._const(coeff)
        inside = body
        for base, exp in mono:
            if base == atom:
                # B**e = B**(e-1) * B: keep the extra copies as the
                # original atom so the recursive sum exchanges each with
                # its own fresh bound variable (summing a renamed body
                # e times would square the inner sum instead).
                for _ in range(exp - 1):
                    inside = inside * SymExpr._atom(atom)
                continue
            factor = (
                SymExpr._symbol(base) if isinstance(base, str)
                else SymExpr._atom(base)
            )
            piece = factor
            for _ in range(exp - 1):
                piece = piece * factor
            if piece.depends_on(var):
                inside = inside * piece
            else:
                outside = outside * piece
        summed = sym_sum(inside, var, trips, positive)
        total = total + outside * bounded_sum(fresh, atom.bound, summed)
    return total


def _residue_split(
    expr: SymExpr, var: str, trips: SymExpr, modulus, positive: frozenset
) -> SymExpr:
    """``sum_{q<T} f(q) = sum_{r<M} sum_{t<T_r} f(r + M*t)``."""
    t_var = fresh_name()
    r_var = fresh_name()
    if isinstance(modulus, int):
        modulus_expr = SymExpr._const(modulus)
    else:
        modulus_expr = modulus
    substituted = expr.subs(var, sym(r_var) + modulus_expr * sym(t_var))
    inner_trips = pos(floordiv(trips - 1 - sym(r_var), modulus) + 1)
    inner = sym_sum(substituted, t_var, inner_trips, positive)
    return bounded_sum(r_var, modulus_expr, inner)


def _pos_split(
    expr: SymExpr,
    var: str,
    trips: SymExpr,
    atom: _Atom,
    affine: Tuple[SymExpr, SymExpr],
    positive: frozenset,
) -> SymExpr:
    """Split ``[0, trips)`` at the sign change of an affine Pos/Ge0 arg."""
    slope, intercept = affine
    signed = _signed_slope(slope, positive)
    if signed is None:
        raise SymbolicUnsupported(
            f"positive part with sign-unknown slope {slope!r} in {atom!r}"
        )
    sign, magnitude = signed
    _require_integer_coeffs(intercept, "positive-part intercept")
    clamped = pos(trips)
    if sign > 0:
        # arg >= 0 iff var >= ceil(-intercept/|slope|) =: z0.
        z0 = -floordiv(intercept, magnitude)
        zero_first = True
    else:
        # arg >= 0 iff var <= floor(intercept/|slope|); first zero position.
        z0 = floordiv(intercept, magnitude) + 1
        zero_first = False
    z = smin(pos(z0), clamped)  # clamp to [0, trips]
    # Below the breakpoint the argument is negative, above nonnegative:
    # a Pos atom becomes 0 / its argument, a Ge0 indicator becomes 0 / 1.
    if isinstance(atom, Ge0):
        active = SymExpr._const(1)
    else:
        active = atom.arg
    low_value, high_value = (
        (SymExpr({}), active) if zero_first else (active, SymExpr({}))
    )

    low_part = sym_sum(expr.replace_atom(atom, low_value), var, z, positive)
    # The upper piece is a difference of formal prefix sums: derive
    # sum_{var in [0, u)} once with a symbolic limit u, then evaluate at
    # both endpoints.  (Substituting var := z + t instead would thread
    # the breakpoint's atom tree through every deeper split and blow the
    # form up combinatorially.)
    u_var = fresh_name()
    formal = sym_sum(
        expr.replace_atom(atom, high_value), var, sym(u_var), positive
    )
    high_part = formal.subs(u_var, clamped) - formal.subs(u_var, z)
    return low_part + high_part


# ---------------------------------------------------------------------------
# form compilation
# ---------------------------------------------------------------------------

def _exact_div(num: int, den: int) -> int:
    quot, rem = divmod(num, den)
    if rem:
        raise SymbolicUnsupported(
            f"non-integral value {num}/{den} in compiled form"
        )
    return quot


def _checked_mod(value, m):
    if m <= 0:
        raise SymbolicUnsupported(f"non-positive modulus {m}")
    return value % m


def _checked_fdiv(value, m):
    if m <= 0:
        raise SymbolicUnsupported(f"non-positive modulus {m}")
    return value // m


def _walk_bound_vars(expr: SymExpr, out: List[str]) -> None:
    for atom in expr.atoms():
        if isinstance(atom, BoundedSum):
            out.append(atom.var)
            _walk_bound_vars(atom.bound, out)
            _walk_bound_vars(atom.body, out)
        else:
            _walk_bound_vars(atom.arg, out)
            if isinstance(atom, (Mod, FloorDiv)) and not isinstance(
                atom.modulus, int
            ):
                _walk_bound_vars(atom.modulus, out)


def _bound_vars_ambiguous(expr: SymExpr) -> bool:
    """True when a sum's bound variable could shadow another meaning.

    :func:`sym_sum` binds one fresh ``__qN`` name per summation level,
    so *sibling* sums legitimately share a name — that is what lets the
    emitter fuse them into one loop.  Only nested reuse (an inner sum
    rebinding an enclosing sum's name) or a bound name that is also free
    in the expression can mis-share cached atoms."""
    free = expr.free_symbols()

    def _scan(e: SymExpr, enclosing: frozenset) -> bool:
        for atom in e.atoms():
            if isinstance(atom, BoundedSum):
                if atom.var in enclosing or atom.var in free:
                    return True
                if _scan(atom.bound, enclosing):
                    return True
                if _scan(atom.body, enclosing | {atom.var}):
                    return True
            else:
                if _scan(atom.arg, enclosing):
                    return True
                if isinstance(atom, (Mod, FloorDiv)) and not isinstance(
                    atom.modulus, int
                ):
                    if _scan(atom.modulus, enclosing):
                        return True
        return False

    return _scan(expr, frozenset())


def _mono_depends(mono: _Monomial, var: str) -> bool:
    """Whether a monomial's value changes with the bound variable ``var``."""
    for base, _exp in mono:
        if isinstance(base, str):
            if base == var:
                return True
        elif base.depends_on(var):
            return True
    return False


def _shallow_atoms(expr: SymExpr, out: List[_Atom]) -> List[_Atom]:
    """Atoms of ``expr`` including those nested in atom arguments, but
    *not* descending into bounded-sum interiors (those belong to the
    nested loop's own scope)."""
    for atom in expr.atoms():
        out.append(atom)
        if not isinstance(atom, BoundedSum):
            _shallow_atoms(atom.arg, out)
    return out


def _flat_ops(expr: SymExpr) -> int:
    """Straight-line op estimate for one evaluation, loop interiors
    excluded — the per-iteration cost share of a fused loop body."""
    ops = len(expr._terms)
    for atom in set(expr.atoms()):
        if not isinstance(atom, BoundedSum):
            ops += 1 + _flat_ops(atom.arg)
    return ops


def _int_power_sum(k: int, n: int) -> int:
    """``sum(j**k for j in range(n))`` exactly (``n >= 0``)."""
    if k == 0:
        return n
    total = Fraction(0)
    power = 1
    for coeff in _power_sum_coeffs(k):
        if coeff:
            total += coeff * power
        power *= n
    return int(total)


# ---------------------------------------------------------------------------
# residue-class run plans
# ---------------------------------------------------------------------------

#: Below this trip count the plain fused loop wins over a plan run
#: (dispatch + free-slot evaluation dominate); calibrated together with
#: the cost constants by scripts/bench_sympoly.py.
_PLAN_MIN_TRIPS = 12
_PLAN_MAX_DEGREE = 16
#: Cost-model constants for one specialized run (flat-op units matching
#: eval_cost): fixed setup, and per-residue-class overhead on top of the
#: leaf polynomial work.  Recorded in BENCH_simulator.json "sympoly".
_PLAN_SETUP_OPS = 24
_PLAN_CLASS_OPS = 14

_POS, _GE0, _MOD, _FDIV = 0, 1, 2, 3


class _PlanBuild(Exception):
    """Internal: the loop bodies do not qualify for a run plan."""


class _PlanBail(Exception):
    """Internal: a plan run exceeded its work budget."""


class _LoopPlan:
    """Residue-class / segment specialization of one fused loop level.

    Each qualifying atom's argument is affine in the loop variable, so
    over an arithmetic progression of iterations the atom either
    *resolves* to an affine function of the local index —
    ``Mod``/``FloorDiv`` once the progression step is divisible by the
    modulus, ``Pos``/``Ge0`` once the argument's sign is constant — or
    tells us how to split: residue classes of period
    ``modulus // gcd(modulus, step)`` for congruence atoms, the sign
    change point for clamp atoms.  Once every atom has resolved, the
    member bodies are plain integer polynomials in the local index and
    the segment closes in O(1) by Faulhaber power sums.

    This is the evaluation-time counterpart of :func:`_residue_split` /
    :func:`_pos_split`: it runs against *concrete* moduli, so the class
    count is the real ``lcm`` for this cell (1 when the level's stride
    already divides every modulus — the wrapped outer level) instead of
    a symbolic worst case, and no closed form has to survive in the
    expression tree.

    ``run`` returns ``None`` — the caller falls back to the emitted
    fused loop — when a runtime modulus is non-positive or the work
    budget (a small multiple of the plain loop's cost) is exceeded, so
    a plan can never lose by more than a constant factor.
    """

    __slots__ = (
        "specs",
        "members",
        "dens",
        "free_fn",
        "moduli",
        "leaf_ops",
        "_unit",
    )

    def __init__(self, var: str, bodies: List[SymExpr]) -> None:
        free_exprs: List[SymExpr] = []
        free_index: Dict[SymExpr, int] = {}
        specs: List[Tuple] = []
        spec_index: Dict[_Atom, int] = {}
        moduli: List = []

        def free_slot(expr: SymExpr) -> int:
            slot = free_index.get(expr)
            if slot is None:
                for atom in _deep_atoms(expr, []):
                    if isinstance(atom, BoundedSum):
                        # Re-evaluating a residual sum per run would hide
                        # real work in the "free" prologue; let the fused
                        # loop (which hoists it once) handle this body.
                        raise _PlanBuild
                slot = len(free_exprs)
                free_index[expr] = slot
                free_exprs.append(expr)
            return slot

        def affine_terms(arg: SymExpr):
            den, terms = arg._eval_plan()
            if den != 1:
                raise _PlanBuild
            out = []
            invariant: Dict[_Monomial, Fraction] = {}
            for coeff, mono in terms:
                dep = None
                for pair in mono:
                    base = pair[0]
                    if (
                        base == var
                        if isinstance(base, str)
                        else base.depends_on(var)
                    ):
                        if dep is not None:
                            raise _PlanBuild
                        dep = pair
                if dep is None:
                    invariant[mono] = Fraction(coeff)
                    continue
                base, exp = dep
                if exp != 1:
                    raise _PlanBuild
                bidx = -1 if isinstance(base, str) else visit(base)
                rest = tuple(pair for pair in mono if pair is not dep)
                if rest:
                    cofactor = SymExpr({rest: Fraction(coeff)})
                    out.append((None, free_slot(cofactor), bidx))
                else:
                    out.append((coeff, None, bidx))
            fslot = free_slot(SymExpr(invariant)) if invariant else None
            return tuple(out), fslot

        def visit(atom: _Atom) -> int:
            idx = spec_index.get(atom)
            if idx is not None:
                return idx
            if isinstance(atom, (Mod, FloorDiv)):
                if _modulus_depends(atom.modulus, var):
                    raise _PlanBuild
                kind = _MOD if isinstance(atom, Mod) else _FDIV
                if isinstance(atom.modulus, int):
                    mconst, mslot = atom.modulus, None
                else:
                    mconst, mslot = None, free_slot(atom.modulus)
            elif isinstance(atom, Pos):
                kind, mconst, mslot = _POS, None, None
            elif isinstance(atom, Ge0):
                kind, mconst, mslot = _GE0, None, None
            else:
                raise _PlanBuild
            terms, fslot = affine_terms(atom.arg)
            idx = len(specs)
            spec_index[atom] = idx
            specs.append((kind, terms, fslot, mconst, mslot))
            if kind in (_MOD, _FDIV):
                moduli.append(atom.modulus)
            return idx

        mplans = []
        dens = []
        leaf_ops = 2
        for body in bodies:
            den, terms = body._eval_plan()
            mterms = []
            for coeff, mono in terms:
                factors = []
                degree = 0
                for base, exp in mono:
                    if isinstance(base, str):
                        if base == var:
                            factors.append((0, -1, exp))
                            degree += exp
                        else:
                            slot = free_slot(SymExpr._symbol(base))
                            factors.append((2, slot, exp))
                    elif base.depends_on(var):
                        if isinstance(base, BoundedSum):
                            raise _PlanBuild
                        factors.append((1, visit(base), exp))
                        degree += exp
                    else:
                        slot = free_slot(SymExpr._atom(base))
                        factors.append((2, slot, exp))
                if degree > _PLAN_MAX_DEGREE:
                    raise _PlanBuild
                mterms.append((coeff, tuple(factors)))
                leaf_ops += 2 + len(factors)
            mplans.append(tuple(mterms))
            dens.append(den)
        self.specs = tuple(specs)
        self.members = tuple(mplans)
        self.dens = tuple(dens)
        self.moduli = tuple(moduli)
        self.leaf_ops = leaf_ops
        self._unit = leaf_ops + len(specs) + 2
        self.free_fn = _compile_multi(free_exprs)

    def run(self, env: Mapping[str, int], limit: int):
        """Per-member totals over ``range(max(0, limit))`` — or None."""
        if limit <= 0:
            return tuple(0 for _ in self.members)
        fvals = self.free_fn(env) if self.free_fn is not None else ()
        mods = []
        for kind, _terms, _fslot, mconst, mslot in self.specs:
            if kind >= _MOD:
                m = mconst if mconst is not None else fvals[mslot]
                if m <= 0:
                    # The fused loop's checked atoms report this exactly.
                    return None
                mods.append(m)
            else:
                mods.append(0)
        out = [0] * len(self.members)
        state = [2 * (limit + 8) * self._unit]
        psums: Dict[Tuple[int, int], int] = {}
        try:
            self._segment(
                0, 1, limit, [None] * len(self.specs),
                fvals, mods, out, state, psums,
            )
        except _PlanBail:
            return None
        return tuple(
            value if den == 1 else _exact_div(value, den)
            for value, den in zip(out, self.dens)
        )

    def _segment(self, start, step, count, res, fvals, mods, out, state, psums):
        """Accumulate ``sum(body(start + step*j) for j in range(count))``.

        ``res[i]`` holds spec ``i`` resolved to ``(slope, intercept)``
        in the local index ``j``, or None while unresolved.
        """
        while True:
            if count <= 0:
                return
            state[0] -= self._unit
            if state[0] < 0:
                raise _PlanBail
            pending = False
            progressed = False
            clamp_split = None
            period = 1
            for i, (kind, terms, fslot, _mc, _ms) in enumerate(self.specs):
                if res[i] is not None:
                    continue
                slope = 0
                inter = fvals[fslot] if fslot is not None else 0
                blocked = False
                for coeff, cslot, bidx in terms:
                    if bidx < 0:
                        bs, bc = step, start
                    else:
                        resolved = res[bidx]
                        if resolved is None:
                            blocked = True
                            break
                        bs, bc = resolved
                    weight = coeff if cslot is None else fvals[cslot]
                    slope += weight * bs
                    inter += weight * bc
                if blocked:
                    pending = True
                    continue
                if kind <= _GE0:
                    if slope == 0:
                        if kind == _POS:
                            res[i] = (0, inter if inter > 0 else 0)
                        else:
                            res[i] = (0, 1 if inter >= 0 else 0)
                        progressed = True
                    else:
                        pending = True
                        if clamp_split is None:
                            clamp_split = (i, kind, slope, inter)
                else:
                    m = mods[i]
                    if slope % m == 0:
                        if kind == _MOD:
                            res[i] = (0, inter % m)
                        else:
                            res[i] = (slope // m, inter // m)
                        progressed = True
                    else:
                        pending = True
                        stride = m // _gcd(m, slope)
                        period = period * stride // _gcd(period, stride)
            if not pending:
                break
            if progressed:
                continue
            if period > 1:
                # Residue split: local index j = cls + width*j'.
                width = period if period < count else count
                for cls in range(width):
                    sub = (count - cls + width - 1) // width
                    child = [
                        None if r is None else (r[0] * width, r[1] + r[0] * cls)
                        for r in res
                    ]
                    self._segment(
                        start + step * cls, step * width, sub,
                        child, fvals, mods, out, state, psums,
                    )
                return
            if clamp_split is not None:
                # Sign split: the argument slope*j + inter crosses zero
                # once; below/above the cut the clamp is affine.
                i, kind, slope, inter = clamp_split
                if slope > 0:
                    cut = -(inter // slope)
                    low_nonneg = False
                else:
                    cut = inter // -slope + 1
                    low_nonneg = True
                if cut < 0:
                    cut = 0
                elif cut > count:
                    cut = count
                for off, sub, nonneg in (
                    (0, cut, low_nonneg),
                    (cut, count - cut, not low_nonneg),
                ):
                    if sub <= 0:
                        continue
                    child = [
                        None if r is None else (r[0], r[1] + r[0] * off)
                        for r in res
                    ]
                    if kind == _GE0:
                        child[i] = (0, 1 if nonneg else 0)
                    elif nonneg:
                        child[i] = (slope, inter + slope * off)
                    else:
                        child[i] = (0, 0)
                    self._segment(
                        start + step * off, step, sub,
                        child, fvals, mods, out, state, psums,
                    )
                return
            raise _PlanBail  # unresolvable dependency chain
        # Leaf: every spec affine in j — close by Faulhaber power sums.
        state[0] -= self.leaf_ops
        if state[0] < 0:
            raise _PlanBail
        for mi, mterms in enumerate(self.members):
            total = 0
            for coeff, factors in mterms:
                poly = [coeff]
                for tag, ref, exp in factors:
                    if tag == 2:
                        value = fvals[ref]
                        if value == 0:
                            poly = None
                            break
                        scale = value if exp == 1 else value ** exp
                        poly = [c * scale for c in poly]
                        continue
                    if tag == 0:
                        fs, fc = step, start
                    else:
                        fs, fc = res[ref]
                    if fs == 0:
                        if fc == 0:
                            poly = None
                            break
                        scale = fc if exp == 1 else fc ** exp
                        poly = [c * scale for c in poly]
                        continue
                    for _ in range(exp):
                        nxt = [0] * (len(poly) + 1)
                        for d, c in enumerate(poly):
                            if c:
                                nxt[d] += c * fc
                                nxt[d + 1] += c * fs
                        poly = nxt
                if poly is None:
                    continue
                for d, c in enumerate(poly):
                    if c:
                        key = (d, count)
                        ps = psums.get(key)
                        if ps is None:
                            ps = _int_power_sum(d, count)
                            psums[key] = ps
                        total += c * ps
            out[mi] += total


def _build_plan(var: str, bodies: List[SymExpr]) -> Optional[_LoopPlan]:
    try:
        return _LoopPlan(var, bodies)
    except _PlanBuild:
        return None


# ---------------------------------------------------------------------------
# compiled evaluation
# ---------------------------------------------------------------------------

class _Scope:
    """Atom -> local-variable cache, chained through enclosing scopes."""

    __slots__ = ("parent", "cache")

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.cache: Dict[_Atom, str] = {}

    def lookup(self, atom: _Atom) -> Optional[str]:
        scope = self
        while scope is not None:
            name = scope.cache.get(atom)
            if name is not None:
                return name
            scope = scope.parent
        return None


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.loads: List[str] = []
        self.count = 0
        self.symmap: Dict[str, str] = {}
        self.plans: List[_LoopPlan] = []
        self.uses_env = False
        self.induction: Dict[_Atom, str] = {}
        self.groups_meta: List[Dict] = []
        self._meta_stack: List[List[Dict]] = [self.groups_meta]

    def temp(self) -> str:
        self.count += 1
        return f"_t{self.count}"

    def load_symbol(self, name: str) -> str:
        local = self.symmap.get(name)
        if local is None:
            local = self.temp()
            self.symmap[name] = local
            self.loads.append(f"    {local} = env[{name!r}]")
        return local

    def expr_code(self, expr: SymExpr, scope: _Scope, indent: int) -> str:
        den, terms = expr._eval_plan()
        if not terms:
            return "0"
        body = self.terms_code(terms, scope, indent)
        if den != 1:
            body = f"_exact_div({body}, {den})"
        return f"({body})"

    def terms_code(self, terms, scope: _Scope, indent: int) -> str:
        """Render a subset of an eval plan's integer-scaled terms."""
        parts = []
        for coeff, mono in terms:
            factors = []
            for base, exp in mono:
                code = self.base_code(base, scope, indent)
                factors.append(code if exp == 1 else f"{code}**{exp}")
            if coeff != 1 or not factors:
                factors.insert(0, repr(coeff))
            parts.append("*".join(factors))
        return " + ".join(parts)

    def _modulus_code(self, modulus, scope: _Scope, indent: int) -> str:
        if isinstance(modulus, int):
            return repr(modulus)
        return self.expr_code(modulus, scope, indent)

    def base_code(self, base: _Base, scope: _Scope, indent: int) -> str:
        if isinstance(base, str):
            return self.load_symbol(base)
        cached = scope.lookup(base)
        if cached is not None:
            return cached
        pad = "    " * indent
        if isinstance(base, (Mod, FloorDiv)):
            register = self.induction.get(base)
            arg = (
                register
                if register is not None
                else self.expr_code(base.arg, scope, indent)
            )
            op = "%" if isinstance(base, Mod) else "//"
            var = self.temp()
            if isinstance(base.modulus, int):
                # constructors guarantee int moduli are positive
                self.lines.append(f"{pad}{var} = {arg} {op} {base.modulus}")
            else:
                fn = "_checked_mod" if isinstance(base, Mod) else "_checked_fdiv"
                m = self._modulus_code(base.modulus, scope, indent)
                self.lines.append(f"{pad}{var} = {fn}({arg}, {m})")
        elif isinstance(base, Pos):
            register = self.induction.get(base)
            arg = (
                register
                if register is not None
                else self.expr_code(base.arg, scope, indent)
            )
            var = self.temp()
            self.lines.append(f"{pad}{var} = {arg}")
            self.lines.append(f"{pad}if {var} < 0:")
            self.lines.append(f"{pad}    {var} = 0")
        elif isinstance(base, Ge0):
            register = self.induction.get(base)
            arg = (
                register
                if register is not None
                else self.expr_code(base.arg, scope, indent)
            )
            var = self.temp()
            self.lines.append(f"{pad}{var} = 1 if {arg} >= 0 else 0")
        elif isinstance(base, BoundedSum):
            self.emit_group(base.var, base.bound, [base], scope, indent)
            return scope.cache[base]
        else:  # pragma: no cover - new atom kinds must be handled here
            raise SymbolicUnsupported(f"cannot compile atom {base!r}")
        scope.cache[base] = var
        return var

    # -- fused sum emission ---------------------------------------------

    def emit_outputs(
        self, exprs: List[SymExpr], scope: _Scope, indent: int
    ) -> List[str]:
        term_lists = [expr._eval_plan()[1] for expr in exprs]
        for (var, bound), members in self._collect_groups(term_lists, scope):
            self.emit_group(var, bound, members, scope, indent)
        return [self.expr_code(expr, scope, indent) for expr in exprs]

    def _collect_groups(self, term_lists, scope: _Scope):
        """Top-level bounded sums grouped by summation level.

        The derivation binds one fresh variable per level, so grouping
        by ``(var, bound)`` reunites the per-field contributions of one
        loop level; everything in a group runs under one emitted loop
        (or one residue-class plan)."""
        order: List[Tuple[str, SymExpr]] = []
        buckets: Dict[Tuple[str, SymExpr], List[BoundedSum]] = {}
        for terms in term_lists:
            for _coeff, mono in terms:
                for base, _exp in mono:
                    if not isinstance(base, BoundedSum):
                        continue
                    if scope.lookup(base) is not None:
                        continue
                    key = (base.var, base.bound)
                    bucket = buckets.get(key)
                    if bucket is None:
                        bucket = []
                        buckets[key] = bucket
                        order.append(key)
                    if base not in bucket:
                        bucket.append(base)
        return [(key, buckets[key]) for key in order]

    def _induction_registers(
        self, var: str, members: List[BoundedSum], scope: _Scope, indent: int
    ):
        """Pre-loop registers for atom arguments affine in ``var``.

        Inside the loop the atom reads its register and the register
        advances by the loop-invariant slope each iteration — strength
        reduction replacing per-iteration re-evaluation of
        Mod/FloorDiv/Pos/Ge0 argument polynomials."""
        pad = "    " * indent
        registers = []
        seen = set()
        for member in members:
            for atom in _shallow_atoms(member.body, []):
                if atom in seen:
                    continue
                seen.add(atom)
                if isinstance(atom, BoundedSum) or not atom.depends_on(var):
                    continue
                if atom in self.induction:
                    continue
                if isinstance(atom, (Mod, FloorDiv)) and _modulus_depends(
                    atom.modulus, var
                ):
                    continue
                affine = _affine_in(atom.arg, var)
                if affine is None:
                    continue
                slope, intercept = affine
                if (
                    slope._eval_plan()[0] != 1
                    or intercept._eval_plan()[0] != 1
                ):
                    continue
                register = self.temp()
                code = self.expr_code(intercept, scope, indent)
                self.lines.append(f"{pad}{register} = {code}")
                if slope.is_const():
                    delta = repr(int(slope.const_value()))
                else:
                    delta = self.temp()
                    code = self.expr_code(slope, scope, indent)
                    self.lines.append(f"{pad}{delta} = {code}")
                registers.append((atom, register, delta))
                self.induction[atom] = register
        return registers

    def emit_group(
        self,
        var: str,
        bound: SymExpr,
        members: List[BoundedSum],
        scope: _Scope,
        indent: int,
    ) -> None:
        """One fused loop level: every member sums over the same range.

        Emits, in order: the shared trip count, a residue-class plan
        dispatch when the bodies qualify (:class:`_LoopPlan`), and the
        plain fused loop as the always-correct fallback — with
        per-member invariant hoisting, induction registers, and
        recursive fusion of the members' nested sums inside the loop
        body.  Caches each member's total in ``scope``."""
        pad = "    " * indent
        bound_code = self.expr_code(bound, scope, indent)
        limit = self.temp()
        self.lines.append(f"{pad}{limit} = {bound_code}")
        self.lines.append(f"{pad}if {limit} < 0:")
        self.lines.append(f"{pad}    {limit} = 0")
        plan = _build_plan(var, [member.body for member in members])
        meta = {
            "bound": bound,
            "iter_ops": sum(_flat_ops(member.body) for member in members),
            "plan": plan is not None,
            "moduli": plan.moduli if plan is not None else (),
            "nspecs": len(plan.specs) if plan is not None else 0,
            "leaf_ops": plan.leaf_ops if plan is not None else 0,
            "children": [],
        }
        self._meta_stack[-1].append(meta)
        if plan is not None:
            plan_id = len(self.plans)
            self.plans.append(plan)
            self.uses_env = True
            result = self.temp()
            self.lines.append(
                f"{pad}{result} = _plan{plan_id}.run(_env, {limit})"
                f" if {limit} >= {_PLAN_MIN_TRIPS} else None"
            )
            self.lines.append(f"{pad}if {result} is None:")
            fb_scope: _Scope = _Scope(scope)
            fb_indent = indent + 1
        else:
            result = None
            fb_scope = scope
            fb_indent = indent
        fpad = "    " * fb_indent
        for member in members:
            for atom in member._free_atoms():
                self.base_code(atom, fb_scope, fb_indent)
        inductions = self._induction_registers(var, members, fb_scope, fb_indent)
        accs: List[str] = []
        hoists: List[Optional[str]] = []
        dens: List[int] = []
        movings: List[list] = []
        for member in members:
            den, terms = member.body._eval_plan()
            moving = [t for t in terms if _mono_depends(t[1], var)]
            invariant = [t for t in terms if not _mono_depends(t[1], var)]
            # Terms free of the bound variable contribute the same value
            # every iteration: evaluate them once, multiply by the trip
            # count, and divide the common denominator out of the
            # *total* — one division per sum instead of one per
            # iteration.
            hoisted = None
            if invariant:
                hoisted = self.temp()
                code = self.terms_code(invariant, fb_scope, fb_indent)
                self.lines.append(f"{fpad}{hoisted} = {code}")
            acc = self.temp()
            self.lines.append(f"{fpad}{acc} = 0")
            accs.append(acc)
            hoists.append(hoisted)
            dens.append(den)
            movings.append(moving)
        if any(movings):
            loop = self.temp()
            self.lines.append(f"{fpad}for {loop} in range({limit}):")
            body_indent = fb_indent + 1
            bpad = "    " * body_indent
            saved = self.symmap.get(var)
            self.symmap[var] = loop
            if any(
                isinstance(atom, BoundedSum)
                for member in members
                for atom in _deep_atoms(member.body, [])
            ):
                # Nested plans resolve enclosing loop variables through
                # the environment snapshot.
                self.uses_env = True
                self.lines.append(f"{bpad}_env[{var!r}] = {loop}")
            inner = _Scope(fb_scope)
            self._meta_stack.append(meta["children"])
            for (nvar, nbound), nested in self._collect_groups(movings, inner):
                self.emit_group(nvar, nbound, nested, inner, body_indent)
            self._meta_stack.pop()
            for acc, moving in zip(accs, movings):
                if moving:
                    code = self.terms_code(moving, inner, body_indent)
                    self.lines.append(f"{bpad}{acc} += {code}")
            for _atom, register, delta in inductions:
                self.lines.append(f"{bpad}{register} += {delta}")
            if saved is None:
                del self.symmap[var]
            else:
                self.symmap[var] = saved
        for atom, _register, _delta in inductions:
            del self.induction[atom]
        finals: List[str] = []
        for acc, hoisted, den in zip(accs, hoists, dens):
            total = acc if hoisted is None else f"{acc} + {hoisted}*{limit}"
            if den != 1:
                final = self.temp()
                self.lines.append(f"{fpad}{final} = _exact_div({total}, {den})")
            elif hoisted is not None:
                final = self.temp()
                self.lines.append(f"{fpad}{final} = {total}")
            else:
                final = acc
            finals.append(final)
        if plan is not None:
            tail = "," if len(finals) == 1 else ""
            self.lines.append(f"{fpad}{result} = ({', '.join(finals)}{tail})")
            for index, member in enumerate(members):
                out = self.temp()
                self.lines.append(f"{pad}{out} = {result}[{index}]")
                scope.cache[member] = out
        else:
            for member, final in zip(members, finals):
                scope.cache[member] = final


def _compile_exprs(exprs: List[SymExpr], single: bool = False):
    emitter = _Emitter()
    scope = _Scope()
    outputs = emitter.emit_outputs(exprs, scope, 1)
    lines = ["def _form(env):"]
    lines.extend(emitter.loads)
    if emitter.uses_env:
        lines.append("    _env = dict(env)")
    lines.extend(emitter.lines)
    if single:
        lines.append(f"    return {outputs[0]}")
    else:
        tail = "," if len(outputs) == 1 else ""
        lines.append(f"    return ({', '.join(outputs)}{tail})")
    source = "\n".join(lines) + "\n"
    namespace = {
        "_exact_div": _exact_div,
        "_checked_mod": _checked_mod,
        "_checked_fdiv": _checked_fdiv,
    }
    for index, plan in enumerate(emitter.plans):
        namespace[f"_plan{index}"] = plan
    exec(compile(source, "<sympoly-form>", "exec"), namespace)
    form = namespace["_form"]
    # The generated text rides along for the kernel sanitizer
    # (repro.analysis.kernels) and for debugging; the cost tree feeds
    # planned_cost so promotion gates see what the runtime will choose.
    form.source = source
    form.plans = tuple(emitter.plans)
    form.cost_tree = {
        "root_ops": sum(_flat_ops(expr) for expr in exprs),
        "groups": emitter.groups_meta,
    }
    return form


def _compile_multi(exprs: List[SymExpr]):
    """Compiled ``env -> tuple`` for plan free slots (no bounded sums)."""
    if not exprs:
        return None
    return _compile_exprs(list(exprs))


def _compile_form(expr: SymExpr):
    return _compile_exprs([expr], single=True)


def compile_account(forms: "Mapping[str, SymExpr]"):
    """One fused evaluator ``env -> tuple`` for several forms.

    All forms compile into a single function, so bounded sums sharing a
    summation level — the per-field contributions of one derived
    program always do — run in one fused loop (or one residue-class
    plan) instead of one loop per field, and shared atoms evaluate
    once.  Returns None when a bound-variable name is ambiguous across
    the forms; the caller falls back to per-form evaluation.
    """
    exprs = list(forms.values())
    bound: set = set()
    free: set = set()
    for expr in exprs:
        if _bound_vars_ambiguous(expr):
            return None
        names: List[str] = []
        _walk_bound_vars(expr, names)
        bound.update(names)
        free.update(expr.free_symbols())
    if bound & free:
        return None
    fn = _compile_exprs(exprs)
    fn.fields = tuple(forms.keys())
    return fn


def planned_cost(tree, extent_hint) -> int:
    """Estimated flat ops for one call of a compiled evaluator.

    Mirrors the choice the emitted code makes at runtime: a fused group
    costs the cheaper of its plain loop and — when a plan compiled and
    the trip count clears the dispatch threshold — its residue-class
    run, whose class count is the lcm of the *concrete* moduli under
    ``extent_hint``, capped at the trip count.  This is what lets the
    promotion gates see that a banded form with a wrapped outer level
    evaluates in O(classes), not O(trips)."""

    def group_cost(meta) -> int:
        trips = extent_hint(meta["bound"])
        if trips < 0:
            trips = 0
        per_iter = 1 + meta["iter_ops"]
        for child in meta["children"]:
            per_iter += group_cost(child)
        cost = trips * per_iter
        if meta["plan"] and trips >= _PLAN_MIN_TRIPS:
            classes = 1
            for modulus in meta["moduli"]:
                value = (
                    modulus
                    if isinstance(modulus, int)
                    else max(1, extent_hint(modulus))
                )
                classes = classes * value // _gcd(classes, value)
                if classes >= trips:
                    break
            if classes > trips:
                classes = trips
            run = _PLAN_SETUP_OPS + classes * (
                _PLAN_CLASS_OPS + meta["nspecs"] + meta["leaf_ops"]
            )
            if run < cost:
                cost = run
        return cost

    total = tree["root_ops"]
    for meta in tree["groups"]:
        total += group_cost(meta)
    return total
