"""Closed-form counting over integer arithmetic progressions.

The NUMA simulator's analytic accounting reduces every per-level question
about a loop to a question about the arithmetic progression
``v(q) = first + step*q`` for positions ``q in [0, trips)``:

* how many progression values satisfy a linear congruence
  ``a*v + r === target (mod m)`` — wrapped (cyclic) ownership tests;
* how many land in an interval ``low <= a*v + r <= high`` — blocked
  ownership tests;
* the exact sum of an affine function of the position over a sub-range —
  collapsing triangular trip counts into arithmetic series;
* how the progression splits into residue classes of its position modulo a
  period — collapsing an outer loop whose inner accounting is periodic in
  the outer value (the residue-class step of the closed-form engine,
  :mod:`repro.numa.counting`).

Everything is exact integer arithmetic (Python ints), mirroring the rest of
the :mod:`repro.linalg` substrate: the paper's speedup figures are ratios
of exact access counts, so the counting layer must never approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class Progression:
    """``first + step*q`` for ``q in [0, trips)`` with ``step >= 1``."""

    first: int
    step: int
    trips: int

    def __post_init__(self) -> None:
        # The documented invariant: a zero step used to surface later as a
        # bare ZeroDivisionError in from_bounds, and a negative step
        # silently computed a wrong trip count.
        if self.step < 1:
            raise ValueError(
                f"Progression requires step >= 1, got {self.step}"
            )

    @staticmethod
    def from_bounds(first: int, high: int, step: int) -> "Progression":
        """The values ``first, first+step, ...`` not exceeding ``high``."""
        if step < 1:
            raise ValueError(
                f"Progression requires step >= 1, got {step}"
            )
        if first > high:
            return Progression(first, step, 0)
        return Progression(first, step, (high - first) // step + 1)

    def value(self, q: int) -> int:
        """The progression value at position ``q``."""
        return self.first + self.step * q

    def values(self) -> Iterator[int]:
        value = self.first
        for _ in range(self.trips):
            yield value
            value += self.step


def count_congruent(
    a: int, r: int, first: int, step: int, trips: int, modulus: int, target: int
) -> int:
    """#{q in [0, trips) : a*(first + step*q) + r === target (mod modulus)}."""
    if modulus == 1:
        return trips
    lhs = (a * step) % modulus
    rhs = (target - r - a * first) % modulus
    g = gcd(lhs, modulus)
    if g == 0:  # lhs == 0 and modulus == 0 cannot happen (modulus >= 2)
        return trips if rhs == 0 else 0
    if lhs == 0:
        return trips if rhs == 0 else 0
    if rhs % g != 0:
        return 0
    period = modulus // g
    inverse = pow((lhs // g) % period, -1, period)
    q0 = ((rhs // g) * inverse) % period
    if q0 >= trips:
        return 0
    return (trips - 1 - q0) // period + 1


def count_in_interval(
    a: int, r: int, first: int, step: int, trips: int, low: int, high: int
) -> int:
    """#{q in [0, trips) : low <= a*(first + step*q) + r <= high}."""
    if low > high:
        return 0
    if a == 0:
        return trips if low <= r <= high else 0
    # Solve low <= a*first + a*step*q + r <= high for q.
    slope = a * step
    base = a * first + r
    if slope > 0:
        q_low = -(-(low - base) // slope)
        q_high = (high - base) // slope
    else:
        q_low = -(-(high - base) // slope)
        q_high = (low - base) // slope
    q_low = max(q_low, 0)
    q_high = min(q_high, trips - 1)
    return max(0, q_high - q_low + 1)


def residue_classes(
    progression: Progression, period: int
) -> List[Tuple[int, int]]:
    """Split a progression into residue classes of its position.

    Returns ``(representative value, class size)`` for every inhabited
    class ``q === c (mod period)``.  Any function of the progression value
    that is invariant under ``v -> v + step*period`` is constant on each
    class, so its sum over the whole progression is
    ``sum(f(representative) * size)`` — one evaluation per class instead of
    one per trip.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    classes: List[Tuple[int, int]] = []
    for c in range(min(period, progression.trips)):
        size = (progression.trips - 1 - c) // period + 1
        classes.append((progression.value(c), size))
    return classes


def congruence_period(modulus: int, *slopes: int) -> int:
    """The position-period of congruence tests along a progression.

    A test ``a*v === t (mod modulus)`` evaluated along ``v(q)`` with the
    value advancing by ``slope = a*step`` per position repeats with period
    ``modulus // gcd(modulus, slope)``.  The combined period of several
    tests is the lcm of the individual periods — always a divisor of
    ``modulus``, so residue-class splitting costs at most ``modulus``
    evaluations.
    """
    period = 1
    for slope in slopes:
        g = gcd(modulus, slope)
        part = modulus // g if g else 1
        period = period * part // gcd(period, part)
    return max(period, 1)


def sum_affine_range(slope: int, intercept: int, start: int, end: int) -> int:
    """Exact ``sum(slope*q + intercept for q in [start, end])`` (inclusive).

    Returns 0 for an empty range (``end < start``).  ``(start+end)*count``
    is always even, so the arithmetic-series midpoint formula stays in
    integer arithmetic.
    """
    if end < start:
        return 0
    count = end - start + 1
    return slope * ((start + end) * count // 2) + intercept * count


def affine_segment_starts(
    differences: Sequence[Tuple[int, int]], trips: int
) -> List[int]:
    """Partition positions ``[0, trips)`` into sign-stable segments.

    ``differences`` are affine functions of the position given as
    ``(slope, intercept)`` pairs.  Returns sorted segment-start positions
    such that inside one segment no difference changes sign strictly
    (is negative at one position and positive at another), and in any
    segment with more than one position a difference with nonzero slope is
    nonzero at the segment start.  Both integers straddling each real root
    become starts, which is what guarantees the two properties; evaluating
    the active bound / emptiness test at a segment's start therefore
    decides it for the whole segment.
    """
    starts = {0}
    if trips > 0:
        for slope, intercept in differences:
            if slope == 0:
                continue
            root_floor = (-intercept) // slope
            for candidate in (root_floor, root_floor + 1):
                if 0 < candidate < trips:
                    starts.add(candidate)
    return sorted(starts)
