"""Fourier-Motzkin elimination over rational constraint systems.

Loop bound generation for a transformed nest needs, for every loop level
``k``, lower and upper bounds on variable ``u_k`` expressed in the outer
variables ``u_0 .. u_{k-1}`` (and symbolic parameters).  Fourier-Motzkin
elimination, applied innermost-variable first, produces exactly that
triangular system of bounds.

Constraints are affine inequalities ``coeffs . y + const >= 0`` where ``y``
stacks the eliminable variables first and any number of symbolic parameters
after them.  Parameters are never eliminated.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import LinalgError
from repro.linalg.intmat import vector_gcd, vector_lcm

Number = Union[int, Fraction]


class InfeasibleSystemError(LinalgError):
    """The constraint system has no rational solution."""


@dataclass(frozen=True)
class Constraint:
    """The affine inequality ``coeffs . y + const >= 0``."""

    coeffs: Tuple[Fraction, ...]
    const: Fraction

    @staticmethod
    def make(coeffs: Sequence[Number], const: Number) -> "Constraint":
        return Constraint(tuple(Fraction(c) for c in coeffs), Fraction(const))

    def normalized(self) -> "Constraint":
        """Scale so coefficients are coprime integers (stable deduplication key)."""
        values = list(self.coeffs) + [self.const]
        denominator = vector_lcm([value.denominator for value in values]) or 1
        scaled = [int(value * denominator) for value in values]
        divisor = vector_gcd(scaled) or 1
        scaled = [value // divisor for value in scaled]
        return Constraint(tuple(Fraction(v) for v in scaled[:-1]), Fraction(scaled[-1]))

    def evaluate(self, point: Sequence[Number]) -> Fraction:
        """The value of ``coeffs . point + const``."""
        total = self.const
        for coefficient, value in zip(self.coeffs, point):
            if coefficient:
                total += coefficient * Fraction(value)
        return total

    def is_trivial(self) -> bool:
        """True for ``0 >= -c`` with ``c >= 0`` (always satisfied)."""
        return all(c == 0 for c in self.coeffs) and self.const >= 0

    def is_contradiction(self) -> bool:
        """True for ``0 >= c`` with ``c > 0`` (never satisfied)."""
        return all(c == 0 for c in self.coeffs) and self.const < 0


@dataclass(frozen=True)
class Bound:
    """A one-sided bound on variable ``var``.

    For a lower bound: ``var >= (coeffs . y + const)``; for an upper bound:
    ``var <= (coeffs . y + const)``.  ``coeffs`` never mentions ``var`` or
    any variable inner to it.
    """

    var: int
    coeffs: Tuple[Fraction, ...]
    const: Fraction
    is_lower: bool

    def evaluate(self, point: Sequence[Number]) -> Fraction:
        """The bound's value at ``point`` (outer variables + parameters)."""
        total = self.const
        for coefficient, value in zip(self.coeffs, point):
            if coefficient:
                total += coefficient * Fraction(value)
        return total


@dataclass(frozen=True)
class LevelBounds:
    """All lower and upper bounds for one loop level."""

    var: int
    lowers: Tuple[Bound, ...]
    uppers: Tuple[Bound, ...]

    def lower_value(self, point: Sequence[Number]) -> Fraction:
        """max of the lower bounds at ``point``."""
        if not self.lowers:
            raise InfeasibleSystemError(f"variable {self.var} has no lower bound")
        return max(bound.evaluate(point) for bound in self.lowers)

    def upper_value(self, point: Sequence[Number]) -> Fraction:
        """min of the upper bounds at ``point``."""
        if not self.uppers:
            raise InfeasibleSystemError(f"variable {self.var} has no upper bound")
        return min(bound.evaluate(point) for bound in self.uppers)


def _dedup(constraints: List[Constraint]) -> List[Constraint]:
    seen = set()
    result = []
    for constraint in constraints:
        normal = constraint.normalized()
        if normal.is_trivial():
            continue
        if normal.is_contradiction():
            raise InfeasibleSystemError("constraint system is infeasible")
        key = (normal.coeffs, normal.const)
        if key not in seen:
            seen.add(key)
            result.append(normal)
    return result


def eliminate(constraints: Sequence[Constraint], num_vars: int) -> List[LevelBounds]:
    """Triangularize a constraint system by Fourier-Motzkin elimination.

    Parameters
    ----------
    constraints:
        Affine inequalities over ``num_vars`` eliminable variables followed by
        any number of symbolic parameters (all constraint vectors must have
        the same length).
    num_vars:
        How many leading coordinates are loop variables to bound; the
        remaining coordinates are parameters that survive elimination.

    Returns
    -------
    One :class:`LevelBounds` per variable, outermost (index 0) first.  The
    bounds for variable ``k`` only reference variables ``0 .. k-1`` and the
    parameters.  Raises :class:`InfeasibleSystemError` when a constant
    contradiction is discovered (the rational relaxation is empty).
    """
    levels, _ = eliminate_with_projections(constraints, num_vars)
    return levels


def eliminate_with_projections(
    constraints: Sequence[Constraint], num_vars: int
) -> Tuple[List[LevelBounds], List[List[Constraint]]]:
    """Like :func:`eliminate`, also returning the projected systems.

    ``projections[k]`` is the constraint set over variables ``0 .. k-1``
    (and the parameters) obtained after eliminating variables ``k`` and
    inner — exactly the set of outer-prefix values for which the loop at
    level ``k`` is non-empty (Fourier-Motzkin projection is exact over the
    rationals).  Used by redundant-bound elimination.
    """
    active = _dedup(list(constraints))
    levels: List[LevelBounds] = [None] * num_vars  # type: ignore[list-item]
    projections: List[List[Constraint]] = [None] * num_vars  # type: ignore[list-item]

    for var in range(num_vars - 1, -1, -1):
        lowers: List[Bound] = []
        uppers: List[Bound] = []
        neutral: List[Constraint] = []
        positive: List[Constraint] = []
        negative: List[Constraint] = []
        for constraint in active:
            coefficient = constraint.coeffs[var]
            if coefficient > 0:
                positive.append(constraint)
            elif coefficient < 0:
                negative.append(constraint)
            else:
                neutral.append(constraint)

        for constraint in positive:
            # a*var + rest >= 0  with a > 0   =>   var >= -(rest)/a
            a = constraint.coeffs[var]
            coeffs = tuple(
                -c / a if j != var else Fraction(0) for j, c in enumerate(constraint.coeffs)
            )
            lowers.append(Bound(var, coeffs, -constraint.const / a, is_lower=True))
        for constraint in negative:
            # a*var + rest >= 0  with a < 0   =>   var <= (rest)/(-a)
            a = constraint.coeffs[var]
            coeffs = tuple(
                c / (-a) if j != var else Fraction(0) for j, c in enumerate(constraint.coeffs)
            )
            uppers.append(Bound(var, coeffs, constraint.const / (-a), is_lower=False))

        levels[var] = LevelBounds(var=var, lowers=tuple(lowers), uppers=tuple(uppers))

        # Combine each (positive, negative) pair to eliminate the variable.
        combined: List[Constraint] = list(neutral)
        for pos in positive:
            for neg in negative:
                a_pos = pos.coeffs[var]
                a_neg = -neg.coeffs[var]
                coeffs = tuple(
                    a_neg * cp + a_pos * cn for cp, cn in zip(pos.coeffs, neg.coeffs)
                )
                const = a_neg * pos.const + a_pos * neg.const
                combined.append(Constraint(coeffs, const))
        active = _dedup(combined)
        projections[var] = list(active)

    return levels, projections


def maximize(
    constraints: Sequence[Constraint],
    objective_coeffs: Sequence[Number],
    objective_const: Number = 0,
) -> Optional[Fraction]:
    """Exact maximum of an affine objective over a rational polyhedron.

    Returns ``None`` when the objective is unbounded above, and raises
    :class:`InfeasibleSystemError` when the polyhedron is empty.  Fourier-
    Motzkin projection is exact over the rationals, so this is a tiny exact
    LP — enough for the redundant-bound elimination used by loop
    simplification.
    """
    width = len(objective_coeffs)
    # Coordinates: [t, original...]; constrain t == objective.
    lifted: List[Constraint] = []
    for constraint in constraints:
        lifted.append(
            Constraint((Fraction(0),) + tuple(constraint.coeffs), constraint.const)
        )
    obj = [Fraction(c) for c in objective_coeffs]
    lifted.append(
        Constraint((Fraction(1),) + tuple(-c for c in obj), -Fraction(objective_const))
    )
    lifted.append(
        Constraint((Fraction(-1),) + tuple(obj), Fraction(objective_const))
    )
    levels = eliminate(lifted, num_vars=width + 1)
    t_level = levels[0]
    if not t_level.uppers:
        return None
    zeros = [0] * (width + 1)
    # Check feasibility: t must have some admissible value.
    upper = t_level.upper_value(zeros)
    if t_level.lowers and t_level.lower_value(zeros) > upper:
        raise InfeasibleSystemError("empty polyhedron")
    return upper


def implies_bound(
    constraints: Sequence[Constraint],
    dominated: Sequence[Number],
    dominating: Sequence[Number],
) -> bool:
    """Is ``dominating <= dominated`` everywhere on the polyhedron?

    Both arguments are affine functions given as ``(coeffs..., const)``
    rows over the constraint coordinates.  Used to drop redundant loop
    bounds: an upper bound is redundant when another upper bound is
    pointwise at most it (and dually for lower bounds).
    """
    coeffs = [
        Fraction(a) - Fraction(b)
        for a, b in zip(dominating[:-1], dominated[:-1])
    ]
    const = Fraction(dominating[-1]) - Fraction(dominated[-1])
    try:
        best = maximize(constraints, coeffs, const)
    except InfeasibleSystemError:
        return True  # empty region: anything holds
    return best is not None and best <= 0


def constraints_from_bounds(
    lower: Sequence[Sequence[Number]],
    upper: Sequence[Sequence[Number]],
) -> List[Constraint]:
    """Helper to build constraints from raw coefficient rows.

    Each entry of ``lower``/``upper`` is ``(coeffs..., const)``; a lower row
    means ``coeffs . y + const >= 0`` already, an upper row is negated.
    Provided mainly for tests.
    """
    result = [Constraint.make(row[:-1], row[-1]) for row in lower]
    for row in upper:
        result.append(Constraint.make([-c for c in row[:-1]], -Fraction(row[-1])))
    return result
