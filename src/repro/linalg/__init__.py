"""Exact integer/rational linear algebra substrate.

Everything the access-normalization pass needs from "integer lattice theory"
(Section 3 of the paper) lives here: exact rational matrices, Hermite and
Smith normal forms, Diophantine solving, lattices with lexicographic
scanning support, and Fourier-Motzkin elimination.
"""

from repro.linalg.diophantine import (
    DiophantineSolution,
    integer_null_basis,
    solve_diophantine,
    try_solve_diophantine,
)
from repro.linalg.fourier_motzkin import (
    Bound,
    Constraint,
    InfeasibleSystemError,
    LevelBounds,
    eliminate,
    eliminate_with_projections,
    implies_bound,
    maximize,
)
from repro.linalg.fraction_matrix import Matrix
from repro.linalg.hermite import column_hnf, hnf_diagonal, row_hnf
from repro.linalg.intmat import (
    as_int_vector,
    clear_denominators,
    dot,
    is_integer_vector,
    lcm,
    vector_gcd,
    vector_lcm,
)
from repro.linalg.lattice import (
    IntegerLattice,
    first_aligned_at_least,
    last_aligned_at_most,
)
from repro.linalg.progression import (
    Progression,
    affine_segment_starts,
    congruence_period,
    count_congruent,
    count_in_interval,
    residue_classes,
    sum_affine_range,
)
from repro.linalg.smith import smith_normal_form
from repro.linalg.sympoly import (
    SymExpr,
    SymbolicUnsupported,
    bounded_sum,
    const,
    eq0,
    floordiv,
    ge0,
    mod,
    pos,
    smax,
    smin,
    sym,
    sym_sum,
)

__all__ = [
    "Bound",
    "Constraint",
    "DiophantineSolution",
    "InfeasibleSystemError",
    "IntegerLattice",
    "LevelBounds",
    "Matrix",
    "Progression",
    "SymExpr",
    "SymbolicUnsupported",
    "affine_segment_starts",
    "as_int_vector",
    "bounded_sum",
    "const",
    "eq0",
    "floordiv",
    "ge0",
    "mod",
    "pos",
    "smax",
    "smin",
    "sym",
    "sym_sum",
    "clear_denominators",
    "column_hnf",
    "congruence_period",
    "count_congruent",
    "count_in_interval",
    "dot",
    "eliminate",
    "eliminate_with_projections",
    "first_aligned_at_least",
    "hnf_diagonal",
    "integer_null_basis",
    "is_integer_vector",
    "last_aligned_at_most",
    "implies_bound",
    "lcm",
    "maximize",
    "residue_classes",
    "row_hnf",
    "smith_normal_form",
    "solve_diophantine",
    "sum_affine_range",
    "try_solve_diophantine",
    "vector_gcd",
    "vector_lcm",
]
