"""Integer (Diophantine) linear system solving.

Solves ``A @ x = b`` for integer ``x`` using the Smith normal form, returning
one particular solution together with a lattice basis of the homogeneous
solutions.  This is the engine behind uniform dependence-distance extraction
and non-unit-step loop distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import NoIntegerSolutionError, ShapeError
from repro.linalg.fraction_matrix import Matrix
from repro.linalg.smith import smith_normal_form


@dataclass(frozen=True)
class DiophantineSolution:
    """The full integer solution set of ``A @ x = b``.

    The solutions are exactly ``particular + sum_k c_k * homogeneous[k]`` for
    integer coefficients ``c_k``.
    """

    particular: List[int]
    homogeneous: List[List[int]]

    @property
    def is_unique(self) -> bool:
        """True when the system has exactly one integer solution."""
        return not self.homogeneous

    def sample(self, coefficients: Sequence[int]) -> List[int]:
        """The solution obtained with the given homogeneous coefficients."""
        if len(coefficients) != len(self.homogeneous):
            raise ShapeError("one coefficient per homogeneous generator is required")
        result = list(self.particular)
        for coefficient, generator in zip(coefficients, self.homogeneous):
            for index, value in enumerate(generator):
                result[index] += coefficient * value
        return result


def solve_diophantine(matrix: Matrix, rhs: Sequence[int]) -> DiophantineSolution:
    """Solve ``matrix @ x = rhs`` over the integers.

    Raises :class:`NoIntegerSolutionError` when no integer solution exists.
    """
    if len(rhs) != matrix.nrows:
        raise ShapeError("right-hand side length must match the row count")
    smith, left, right = smith_normal_form(matrix)
    transformed = left.apply(list(rhs))

    n = matrix.ncols
    y = [0] * n
    rank = 0
    for k in range(min(matrix.nrows, n)):
        if smith[k, k] != 0:
            rank = k + 1
    for k in range(min(matrix.nrows, n)):
        diag = int(smith[k, k])
        value = transformed[k]
        if diag == 0:
            if value != 0:
                raise NoIntegerSolutionError("inconsistent system")
            continue
        if value % diag != 0:
            raise NoIntegerSolutionError(f"component {k} not divisible by {diag}")
        y[k] = int(value // diag)
    for k in range(n, matrix.nrows):
        if transformed[k] != 0:
            raise NoIntegerSolutionError("inconsistent system")

    particular = [int(entry) for entry in right.apply(y)]
    homogeneous = [
        [int(right[i, j]) for i in range(n)] for j in range(rank, n)
    ]
    return DiophantineSolution(particular=particular, homogeneous=homogeneous)


def integer_null_basis(matrix: Matrix) -> List[List[int]]:
    """A lattice basis of the integer null space of ``matrix``."""
    solution = solve_diophantine(matrix, [0] * matrix.nrows)
    return solution.homogeneous


def try_solve_diophantine(matrix: Matrix, rhs: Sequence[int]) -> Optional[DiophantineSolution]:
    """Like :func:`solve_diophantine` but returns ``None`` when unsolvable."""
    try:
        return solve_diophantine(matrix, rhs)
    except NoIntegerSolutionError:
        return None
