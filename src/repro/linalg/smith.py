"""Smith normal form over the integers.

Used by the Diophantine solver: ``U @ A @ V = S`` with ``U``, ``V``
unimodular and ``S`` diagonal with ``s_1 | s_2 | ... | s_r``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.linalg.fraction_matrix import Matrix


def _swap_rows(grid: List[List[int]], a: int, b: int) -> None:
    grid[a], grid[b] = grid[b], grid[a]


def _swap_cols(grid: List[List[int]], a: int, b: int) -> None:
    for row in grid:
        row[a], row[b] = row[b], row[a]


def _add_row_multiple(grid: List[List[int]], target: int, source: int, factor: int) -> None:
    if factor == 0:
        return
    grid[target] = [t + factor * s for t, s in zip(grid[target], grid[source])]


def _add_col_multiple(grid: List[List[int]], target: int, source: int, factor: int) -> None:
    if factor == 0:
        return
    for row in grid:
        row[target] += factor * row[source]


def _negate_row(grid: List[List[int]], i: int) -> None:
    grid[i] = [-value for value in grid[i]]


def _negate_col(grid: List[List[int]], j: int) -> None:
    for row in grid:
        row[j] = -row[j]


def _find_nonzero(grid: List[List[int]], start: int) -> Tuple[int, int]:
    """Position of the non-zero entry of smallest magnitude in the trailing block."""
    best = (-1, -1)
    best_value = None
    for i in range(start, len(grid)):
        for j in range(start, len(grid[0])):
            value = abs(grid[i][j])
            if value and (best_value is None or value < best_value):
                best = (i, j)
                best_value = value
    return best


def smith_normal_form(matrix: Matrix) -> Tuple[Matrix, Matrix, Matrix]:
    """Compute the Smith normal form.

    Returns ``(S, U, V)`` such that ``U @ matrix @ V = S``, where ``U`` and
    ``V`` are unimodular and ``S`` is diagonal with non-negative entries
    satisfying the divisibility chain ``S[0,0] | S[1,1] | ...``.
    """
    grid = matrix.to_int_rows()
    nrows = len(grid)
    ncols = len(grid[0]) if grid else 0
    left = Matrix.identity(nrows).to_int_rows()
    right = Matrix.identity(ncols).to_int_rows()

    for k in range(min(nrows, ncols)):
        pivot_i, pivot_j = _find_nonzero(grid, k)
        if pivot_i < 0:
            break
        _swap_rows(grid, k, pivot_i)
        _swap_rows(left, k, pivot_i)
        _swap_cols(grid, k, pivot_j)
        _swap_cols(right, k, pivot_j)

        while True:
            # Clear the rest of column k with row operations.
            dirty = False
            for i in range(k + 1, nrows):
                if grid[i][k] != 0:
                    quotient = grid[i][k] // grid[k][k]
                    _add_row_multiple(grid, i, k, -quotient)
                    _add_row_multiple(left, i, k, -quotient)
                    if grid[i][k] != 0:
                        _swap_rows(grid, k, i)
                        _swap_rows(left, k, i)
                        dirty = True
            # Clear the rest of row k with column operations.
            for j in range(k + 1, ncols):
                if grid[k][j] != 0:
                    quotient = grid[k][j] // grid[k][k]
                    _add_col_multiple(grid, j, k, -quotient)
                    _add_col_multiple(right, j, k, -quotient)
                    if grid[k][j] != 0:
                        _swap_cols(grid, k, j)
                        _swap_cols(right, k, j)
                        dirty = True
            if not dirty:
                break

        if grid[k][k] < 0:
            _negate_row(grid, k)
            _negate_row(left, k)

        # Enforce the divisibility chain: if some trailing entry is not
        # divisible by the pivot, fold its row into row k and redo.
        pivot = grid[k][k]
        offender = None
        for i in range(k + 1, nrows):
            for j in range(k + 1, ncols):
                if grid[i][j] % pivot != 0:
                    offender = i
                    break
            if offender is not None:
                break
        if offender is not None:
            _add_row_multiple(grid, k, offender, 1)
            _add_row_multiple(left, k, offender, 1)
            # Redo this diagonal position.
            return _resume(grid, left, right, k)

    return Matrix(grid), Matrix(left), Matrix(right)


def _resume(
    grid: List[List[int]], left: List[List[int]], right: List[List[int]], k: int
) -> Tuple[Matrix, Matrix, Matrix]:
    """Restart elimination from diagonal position ``k`` after a divisibility fix.

    The accumulated cofactors are threaded through by running the main
    routine on the current grid and composing the results.
    """
    inner_s, inner_u, inner_v = smith_normal_form(Matrix(grid))
    return inner_s, inner_u @ Matrix(left), Matrix(right) @ inner_v
