"""Loop-step normalization (a standard pre-pass).

The transformation theory of Section 3 assumes unit-step loops (the
iteration space must be all integer points of a polyhedron).  Source
programs with ``step s`` loops are first rewritten so every loop runs
``0 .. trip-1`` with step 1, substituting ``i = lb + s*i'`` everywhere —
after which the full access-normalization machinery applies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import IRError
from repro.ir.affine import AffineExpr
from repro.ir.loop import Loop, LoopNest
from repro.ir.program import Program


def normalize_steps(nest: LoopNest) -> Tuple[LoopNest, Dict[str, AffineExpr]]:
    """Rewrite every loop to lower bound 0 and step 1.

    Returns the rewritten nest and the substitution mapping each original
    index name to its value in terms of the new indices (identity entries
    are included for untouched loops, so the mapping always inverts the
    rewrite).

    Loops with ``max()`` lower bounds and a non-unit step cannot be
    normalized this way (the anchor is not a single affine expression);
    they raise :class:`IRError`.
    """
    bindings: Dict[str, AffineExpr] = {}
    new_loops: List[Loop] = []
    for loop in nest.loops:
        if loop.align is not None:
            raise IRError(
                f"loop {loop.index!r} uses congruence alignment; "
                "step normalization applies to source (anchored) loops only"
            )
        if loop.step == 1 and len(loop.lower) == 1 and loop.lower[0] == AffineExpr.constant(0):
            bindings[loop.index] = AffineExpr.var(loop.index)
            new_loops.append(
                Loop(
                    index=loop.index,
                    lower=tuple(e.substitute(bindings) for e in loop.lower),
                    upper=tuple(e.substitute(bindings) for e in loop.upper),
                )
            )
            continue
        if loop.step != 1 and len(loop.lower) != 1:
            raise IRError(
                f"loop {loop.index!r} has a max() lower bound and step "
                f"{loop.step}; its anchor is not affine"
            )
        if loop.step == 1:
            # Shift so the (single or max) lower bound structure persists:
            # only single-bound loops are shifted to zero; max() bounds are
            # kept as-is since unit steps need no renormalization.
            if len(loop.lower) == 1:
                anchor = loop.lower[0].substitute(bindings)
                new_index = AffineExpr.var(loop.index)
                bindings[loop.index] = new_index + anchor
                uppers = tuple(
                    e.substitute(bindings) - anchor for e in loop.upper
                )
                new_loops.append(
                    Loop(
                        index=loop.index,
                        lower=(AffineExpr.constant(0),),
                        upper=uppers,
                    )
                )
            else:
                bindings[loop.index] = AffineExpr.var(loop.index)
                new_loops.append(
                    Loop(
                        index=loop.index,
                        lower=tuple(e.substitute(bindings) for e in loop.lower),
                        upper=tuple(e.substitute(bindings) for e in loop.upper),
                    )
                )
            continue
        # step > 1: i = anchor + step * i', i' in 0 .. floor((ub-anchor)/step).
        anchor = loop.lower[0].substitute(bindings)
        new_index = AffineExpr.var(loop.index)
        bindings[loop.index] = new_index * loop.step + anchor
        uppers = tuple(
            (e.substitute(bindings) - anchor) / loop.step for e in loop.upper
        )
        new_loops.append(
            Loop(
                index=loop.index,
                lower=(AffineExpr.constant(0),),
                upper=uppers,
            )
        )

    body = tuple(stmt.substitute_indices(bindings) for stmt in nest.body)
    return LoopNest(tuple(new_loops), body), bindings


def normalize_program_steps(program: Program) -> Program:
    """Apply :func:`normalize_steps` to a whole program."""
    nest, _ = normalize_steps(program.nest)
    return program.with_nest(nest, name=f"{program.name}-stepnorm")
