"""Applying an invertible transformation matrix to a loop nest (Section 3).

Given a loop nest with iteration space ``S = {x : L x <= b}`` (unit steps)
and an invertible integer matrix ``T``, the transformed program scans
``u = T x`` over the image set ``T(S) = (T Z^n) ∩ P`` in lexicographic
order, where ``P`` is the rational polyhedron ``{u : L T^{-1} u <= b}``:

* the *bounds* of each new loop come from Fourier-Motzkin elimination of
  ``P`` (innermost variable first), giving per-level max/min of affine
  expressions in the outer new indices;
* the *strides and alignments* come from the column Hermite normal form of
  ``T``: loop ``k`` steps by ``H[k,k]`` through values congruent to an
  affine alignment expression in the outer indices — exactly the integer
  lattice argument the paper invokes for non-unimodular (e.g. loop scaling)
  transformations;
* the *body* is rewritten through ``x = T^{-1} u``.

For unimodular ``T`` all strides are 1 and the construction degenerates to
Banerjee's framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.errors import CodegenError, IRError, ParseError
from repro.ir.affine import AffineExpr
from repro.ir.loop import Loop, LoopNest
from repro.linalg.fourier_motzkin import (
    Bound,
    Constraint,
    LevelBounds,
    eliminate_with_projections,
    implies_bound,
)
from repro.linalg.fraction_matrix import Matrix
from repro.linalg.lattice import IntegerLattice

_PREFERRED_NAMES = ("u", "v", "w", "z", "s", "t", "q", "r")


@dataclass(frozen=True)
class Transformation:
    """A loop transformation: the matrix, its context and the result."""

    matrix: Matrix
    inverse: Matrix
    source_indices: Tuple[str, ...]
    new_indices: Tuple[str, ...]
    lattice: IntegerLattice
    nest: LoopNest

    @property
    def is_unimodular(self) -> bool:
        """True when the transformation lies in Banerjee's unimodular class."""
        return self.matrix.is_unimodular()

    @property
    def determinant(self) -> int:
        """|det T| — the index of the image lattice in ``Z^n``."""
        return abs(int(self.matrix.det()))

    def map_point(self, point: Sequence[int]) -> Tuple[int, ...]:
        """``u = T x`` for an original iteration ``x``."""
        return tuple(int(value) for value in self.matrix.apply(list(point)))

    def unmap_point(self, point: Sequence[int]) -> Tuple[int, ...]:
        """``x = T^{-1} u``; raises when ``u`` is off the image lattice."""
        values = self.inverse.apply(list(point))
        result = []
        for value in values:
            if value.denominator != 1:
                raise ValueError(f"{tuple(point)} is not on the image lattice")
            result.append(int(value))
        return tuple(result)


def choose_new_indices(depth: int, reserved: Sequence[str]) -> Tuple[str, ...]:
    """Pick fresh loop index names (the paper uses u, v, w, z)."""
    taken = set(reserved)
    names: List[str] = []
    for candidate in _PREFERRED_NAMES:
        if len(names) == depth:
            break
        if candidate not in taken:
            names.append(candidate)
            taken.add(candidate)
    counter = 0
    while len(names) < depth:
        candidate = f"u{counter}"
        if candidate not in taken:
            names.append(candidate)
            taken.add(candidate)
        counter += 1
    return tuple(names)


def nest_constraints(
    nest: LoopNest, params: Sequence[str]
) -> List[Constraint]:
    """The iteration-space inequalities ``coeffs . (x | params) + c >= 0``."""
    indices = list(nest.indices)
    n = len(indices)
    width = n + len(params)
    constraints: List[Constraint] = []

    def expr_vector(expr: AffineExpr) -> Tuple[List[Fraction], Fraction]:
        coeffs = [Fraction(0)] * width
        for position, name in enumerate(indices):
            coeffs[position] = expr.coeff(name)
        for position, name in enumerate(params):
            coeffs[n + position] = expr.coeff(name)
        return coeffs, expr.const

    for level, loop in enumerate(nest.loops):
        if loop.step != 1 or loop.align is not None:
            raise IRError(
                f"transformation requires unit-step loops; loop {loop.index!r} "
                f"has step {loop.step}"
            )
        for lower in loop.lower:
            coeffs, const = expr_vector(lower)
            row = [-c for c in coeffs]
            row[level] += 1
            constraints.append(Constraint(tuple(row), -const))
        for upper in loop.upper:
            coeffs, const = expr_vector(upper)
            row = list(coeffs)
            row[level] -= 1
            constraints.append(Constraint(tuple(row), const))
    return constraints


def _substitute_constraints(
    constraints: Sequence[Constraint], inverse: Matrix, n: int
) -> List[Constraint]:
    """Rewrite constraints from ``x`` to ``u`` coordinates via ``x = T^{-1} u``."""
    result = []
    for constraint in constraints:
        x_part = list(constraint.coeffs[:n])
        tail = list(constraint.coeffs[n:])
        u_part = [
            sum(x_part[i] * inverse[i, j] for i in range(n)) for j in range(n)
        ]
        result.append(Constraint(tuple(u_part + tail), constraint.const))
    return result


def _bound_to_expr(
    bound: Bound, new_names: Sequence[str], params: Sequence[str]
) -> AffineExpr:
    names = list(new_names) + list(params)
    coeffs = {name: bound.coeffs[i] for i, name in enumerate(names)}
    return AffineExpr(coeffs, bound.const)


def _alignment_exprs(
    lattice: IntegerLattice, new_names: Sequence[str]
) -> List[Optional[AffineExpr]]:
    """Per-level alignment expressions from the column HNF of ``T``.

    With ``H`` lower triangular, the lattice coordinates satisfy
    ``z_j = (u_j - sum_{l<j} H[j,l] z_l) / H[j,j]`` — affine in the outer
    new indices — and level ``k`` admits values congruent to
    ``sum_{j<k} H[k,j] z_j`` modulo ``H[k,k]``.
    """
    n = lattice.dimension
    hermite = lattice.hermite
    z_exprs: List[AffineExpr] = []
    alignments: List[Optional[AffineExpr]] = []
    for k in range(n):
        offset = AffineExpr.constant(0)
        for j in range(k):
            coeff = hermite[k, j]
            if coeff:
                offset = offset + z_exprs[j] * coeff
        stride = int(hermite[k, k])
        alignments.append(offset if stride != 1 else None)
        z_k = (AffineExpr.var(new_names[k]) - offset) / stride
        z_exprs.append(z_k)
    return alignments


def parse_assumption(
    text: str, new_names: Sequence[str], params: Sequence[str]
) -> Constraint:
    """Parse an assumption like ``"N >= 1"`` or ``"N >= 2*b"``.

    Assumptions constrain the symbolic parameters only; they sharpen the
    redundant-bound elimination (e.g. knowing ``N >= b`` lets the SYR2K
    bounds collapse to the paper's listing).
    """
    for op in (">=", "<="):
        if op in text:
            left_text, right_text = text.split(op, 1)
            left = AffineExpr.parse(left_text.strip())
            right = AffineExpr.parse(right_text.strip())
            expr = (left - right) if op == ">=" else (right - left)
            if any(name in new_names for name in expr.variables()):
                raise ParseError(
                    f"assumption {text!r} may reference parameters only"
                )
            width = len(new_names) + len(params)
            coeffs = [Fraction(0)] * width
            for position, name in enumerate(params):
                coeffs[len(new_names) + position] = expr.coeff(name)
            return Constraint(tuple(coeffs), expr.const)
    raise ParseError(f"assumption {text!r} needs '>=' or '<='")


def _prune_bounds(
    bounds: Tuple[Bound, ...],
    region: List[Constraint],
    *,
    is_lower: bool,
) -> Tuple[Bound, ...]:
    """Drop bounds dominated by another bound everywhere on ``region``."""
    kept: List[Bound] = []
    candidates = list(bounds)
    for index, bound in enumerate(candidates):
        others = kept + candidates[index + 1 :]
        row_self = list(bound.coeffs) + [bound.const]
        redundant = False
        for other in others:
            row_other = list(other.coeffs) + [other.const]
            if is_lower:
                # Drop l1 when some l2 >= l1 everywhere.
                redundant = implies_bound(region, row_other, row_self)
            else:
                # Drop u1 when some u2 <= u1 everywhere.
                redundant = implies_bound(region, row_self, row_other)
            if redundant:
                break
        if not redundant:
            kept.append(bound)
    return tuple(kept) if kept else tuple(bounds[:1])


def apply_transformation(
    nest: LoopNest,
    matrix: Matrix,
    new_indices: Optional[Sequence[str]] = None,
    *,
    simplify: bool = True,
    assumptions: Sequence[str] = (),
) -> Transformation:
    """Restructure ``nest`` by the invertible integer matrix ``matrix``.

    Returns a :class:`Transformation` whose ``nest`` computes the same
    function: it executes exactly the same set of statement instances, in
    the lexicographic order of the new iteration vector ``u = T x``.

    ``simplify`` removes provably redundant ``max``/``min`` bound terms
    (exact Fourier-Motzkin implication tests over the projected iteration
    polyhedron); ``assumptions`` are parameter facts like ``"N >= 2*b"``
    that sharpen the simplification.  Both only affect the *form* of the
    generated bounds, never the iteration set.
    """
    n = nest.depth
    if matrix.shape != (n, n):
        raise CodegenError(
            f"transformation matrix {matrix.shape} does not match nest depth {n}"
        )
    if not matrix.is_integer():
        raise CodegenError("transformation matrix must be integral")
    if matrix.det() == 0:
        raise CodegenError("transformation matrix must be invertible")

    params = list(nest.free_variables())
    reserved = list(nest.indices) + params + nest.array_names()
    if new_indices is None:
        new_names = choose_new_indices(n, reserved)
    else:
        new_names = tuple(new_indices)
        if len(new_names) != n:
            raise CodegenError("need exactly one new index name per loop")

    inverse = matrix.inverse()
    constraints = nest_constraints(nest, params)
    transformed_constraints = _substitute_constraints(constraints, inverse, n)
    levels, projections = eliminate_with_projections(transformed_constraints, n)
    lattice = IntegerLattice(matrix)
    alignments = _alignment_exprs(lattice, new_names)
    assumed = [
        parse_assumption(text, new_names, params) for text in assumptions
    ]

    loops: List[Loop] = []
    for k in range(n):
        level: LevelBounds = levels[k]
        if not level.lowers or not level.uppers:
            raise CodegenError(
                f"transformed loop {new_names[k]!r} is unbounded; the original "
                "iteration space must be a bounded polyhedron"
            )
        lowers, uppers = level.lowers, level.uppers
        if simplify and (len(lowers) > 1 or len(uppers) > 1):
            region = list(projections[k]) + assumed
            lowers = _prune_bounds(lowers, region, is_lower=True)
            uppers = _prune_bounds(uppers, region, is_lower=False)
        lower = tuple(_bound_to_expr(b, new_names, params) for b in lowers)
        upper = tuple(_bound_to_expr(b, new_names, params) for b in uppers)
        stride = lattice.stride(k)
        loops.append(
            Loop(
                index=new_names[k],
                lower=lower,
                upper=upper,
                step=stride,
                align=alignments[k],
            )
        )

    bindings = {
        old: AffineExpr(
            {new_names[j]: inverse[i, j] for j in range(n)}, 0
        )
        for i, old in enumerate(nest.indices)
    }
    body = tuple(statement.substitute_indices(bindings) for statement in nest.body)

    return Transformation(
        matrix=matrix,
        inverse=inverse,
        source_indices=nest.indices,
        new_indices=new_names,
        lattice=lattice,
        nest=LoopNest(tuple(loops), body),
    )
