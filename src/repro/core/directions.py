"""Legality with dependence *direction* vectors.

Section 6 treats dependences represented by distance vectors and notes that
extending the results to dependence directions is straightforward (the
companion TR carries it out).  A direction vector classifies each loop's
dependence component as ``'<'`` (positive), ``'='`` (zero), ``'>'``
(negative) or ``'*'`` (unknown).  The inner product of a transformation row
with such a class is an *interval*; the legality reasoning of LegalBasis
carries over with interval arithmetic:

* all-non-negative interval: the row may lead, dependences with a strictly
  positive interval are carried;
* all-non-positive interval: the row may lead negated;
* an interval containing both signs: the row must be dropped.

A full matrix is legal for a direction vector when, scanning rows top-down,
every interval is non-negative until one is strictly positive (the loop
that carries the dependence); a vector that is identically ``'='`` needs no
carrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.errors import DependenceError
from repro.linalg.fraction_matrix import Matrix

Direction = Tuple[str, ...]

_NEG_INF = None  # sentinel: unbounded below
_POS_INF = None  # sentinel: unbounded above

_VALID = {"<", "=", ">", "*"}


@dataclass(frozen=True)
class Interval:
    """A possibly unbounded interval [lo, hi] over the rationals."""

    lo: Optional[Fraction]  # None means -infinity
    hi: Optional[Fraction]  # None means +infinity

    @property
    def non_negative(self) -> bool:
        return self.lo is not None and self.lo >= 0

    @property
    def non_positive(self) -> bool:
        return self.hi is not None and self.hi <= 0

    @property
    def strictly_positive(self) -> bool:
        return self.lo is not None and self.lo > 0

    @property
    def is_zero(self) -> bool:
        return self.lo == 0 and self.hi == 0


def _add(a: Optional[Fraction], b: Optional[Fraction]) -> Optional[Fraction]:
    if a is None or b is None:
        return None
    return a + b


def distance_to_direction(distance: Sequence[int]) -> Direction:
    """Convert a concrete distance vector to its direction classes."""
    return tuple("<" if v > 0 else (">" if v < 0 else "=") for v in distance)


def row_direction_interval(
    row: Sequence[Fraction], direction: Direction
) -> Interval:
    """The interval of possible values of ``row . d`` for ``d`` in the class.

    Components: ``'<'`` means ``d_k >= 1``, ``'>'`` means ``d_k <= -1``,
    ``'='`` means ``d_k = 0`` and ``'*'`` leaves ``d_k`` unconstrained.
    """
    if len(row) != len(direction):
        raise DependenceError("row and direction vector lengths differ")
    lo: Optional[Fraction] = Fraction(0)
    hi: Optional[Fraction] = Fraction(0)
    for coeff, cls in zip(row, direction):
        coeff = Fraction(coeff)
        if cls not in _VALID:
            raise DependenceError(f"invalid direction component {cls!r}")
        if cls == "=" or coeff == 0:
            continue
        if cls == "<":  # d_k in [1, inf)
            if coeff > 0:
                lo = _add(lo, coeff)
                hi = None
            else:
                lo = None
                hi = _add(hi, coeff)
        elif cls == ">":  # d_k in (-inf, -1]
            if coeff > 0:
                lo = None
                hi = _add(hi, -coeff)
            else:
                lo = _add(lo, -coeff)
                hi = None
        else:  # '*': d_k unconstrained and coeff != 0
            lo = None
            hi = None
    return Interval(lo, hi)


@dataclass(frozen=True)
class DirectionalBasisResult:
    """Output of the direction-vector variant of LegalBasis."""

    basis: Matrix
    row_map: Tuple[Tuple[int, bool], ...]
    remaining: Tuple[Direction, ...]


def legal_basis_directions(
    basis: Matrix, directions: Sequence[Direction]
) -> DirectionalBasisResult:
    """LegalBasis (Figure 2) generalized to direction vectors."""
    remaining: List[Direction] = [tuple(d) for d in directions]
    kept_rows: List[List[Fraction]] = []
    row_map: List[Tuple[int, bool]] = []
    for index in range(basis.nrows):
        row = list(basis.row_at(index))
        intervals = [row_direction_interval(row, d) for d in remaining]
        if all(iv.non_negative for iv in intervals):
            kept_rows.append(row)
            row_map.append((index, False))
            remaining = [
                d for d, iv in zip(remaining, intervals)
                if not iv.strictly_positive
            ]
        elif all(iv.non_positive for iv in intervals):
            negated = [-c for c in row]
            kept_rows.append(negated)
            row_map.append((index, True))
            remaining = [
                d
                for d, iv in zip(remaining, intervals)
                if not (iv.hi is not None and iv.hi < 0)
            ]
        # else: mixed signs possible — drop the row.
    result = Matrix(kept_rows) if kept_rows else Matrix.zeros(0, basis.ncols)
    return DirectionalBasisResult(
        basis=result, row_map=tuple(row_map), remaining=tuple(remaining)
    )


def is_legal_direction_transformation(
    matrix: Matrix, directions: Sequence[Direction]
) -> bool:
    """Conservative legality of a full transformation for direction vectors.

    For every direction vector, scanning the rows of ``matrix`` top-down,
    each row's interval must be provably non-negative until some row's
    interval is provably strictly positive (that loop carries the
    dependence).  An all-``'='`` vector is the same-iteration dependence
    and needs no carrier; any other vector without a definite carrier is
    conservatively rejected.
    """
    for direction in directions:
        direction = tuple(direction)
        if all(cls == "=" for cls in direction):
            continue
        carried = False
        for i in range(matrix.nrows):
            interval = row_direction_interval(matrix.row_at(i), direction)
            if interval.strictly_positive:
                carried = True
                break
            if not interval.non_negative:
                return False
        if not carried:
            return False
    return True
