"""Algorithm BasisMatrix (Section 5.1).

Selects a maximal set of linearly independent rows of the data access
matrix, scanning top-down so that lower-ranked (less important) subscripts
are the ones discarded.  Following the paper, the result is reported as a
permutation matrix plus the rank: the first ``rank`` rows of ``P @ A`` form
the basis matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.linalg.fraction_matrix import Matrix


@dataclass(frozen=True)
class BasisResult:
    """Output of Algorithm BasisMatrix."""

    permutation: Matrix
    rank: int
    kept_rows: Tuple[int, ...]

    def basis_of(self, matrix: Matrix) -> Matrix:
        """The basis matrix: the kept rows of ``matrix``, in original order."""
        return matrix.select_rows(list(self.kept_rows))


def basis_matrix(matrix: Matrix) -> BasisResult:
    """Run Algorithm BasisMatrix on a data access matrix.

    Returns the permutation ``P`` (kept rows first, discarded rows after, each
    group in original order) and the rank ``d``.  The efficient
    implementation in the paper is a Hermite-normal-form variation; an exact
    rational elimination keeps the same greedy semantics here.
    """
    kept = matrix.independent_row_indices()
    discarded = [i for i in range(matrix.nrows) if i not in kept]
    order = list(kept) + discarded
    permutation_rows = []
    for target in order:
        permutation_rows.append([1 if j == target else 0 for j in range(matrix.nrows)])
    permutation = (
        Matrix(permutation_rows) if permutation_rows else Matrix([])
    )
    return BasisResult(permutation=permutation, rank=len(kept), kept_rows=tuple(kept))
