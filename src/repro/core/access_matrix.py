"""The data access matrix (Section 2.2).

The data access matrix represents the array subscripts of a loop nest: its
product with the iteration vector reproduces each subscript (constants
dropped).  Row order encodes relative importance — the paper's heuristic
puts subscripts appearing in distribution dimensions first, breaking ties by
occurrence count — so that the greedy basis selection discards the least
important subscripts when the matrix is singular.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.distributions.base import Distribution
from repro.ir.affine import AffineExpr
from repro.ir.loop import LoopNest
from repro.linalg.fraction_matrix import Matrix


@dataclass(frozen=True)
class SubscriptSource:
    """Where a subscript row came from: which array, dimension, and whether
    that dimension is a distribution dimension of the array."""

    array: str
    dim: int
    is_distribution_dim: bool
    is_write: bool


@dataclass
class SubscriptRow:
    """One candidate row of the data access matrix with its provenance."""

    coeffs: Tuple[Fraction, ...]
    expr: AffineExpr
    sources: List[SubscriptSource] = field(default_factory=list)
    first_seen: int = 0

    @property
    def distribution_count(self) -> int:
        """How many times this subscript occurs in a distribution dimension."""
        return sum(1 for s in self.sources if s.is_distribution_dim)

    @property
    def total_count(self) -> int:
        """Total occurrences of this subscript across all references."""
        return len(self.sources)


@dataclass(frozen=True)
class DataAccessMatrix:
    """The ranked data access matrix of a loop nest."""

    matrix: Matrix
    rows: Tuple[SubscriptRow, ...]
    indices: Tuple[str, ...]

    @property
    def depth(self) -> int:
        """Loop nest depth (number of columns)."""
        return len(self.indices)

    def describe(self) -> str:
        """Human-readable summary with provenance, for logs and reports."""
        lines = []
        for position, row in enumerate(self.rows):
            where = ", ".join(
                f"{s.array}[dim {s.dim}]{'*' if s.is_distribution_dim else ''}"
                for s in row.sources
            )
            lines.append(f"row {position}: {row.expr}  <- {where}")
        return "\n".join(lines)


def build_access_matrix(
    nest: LoopNest,
    distributions: Optional[Mapping[str, Distribution]] = None,
    *,
    skip_nonintegral: bool = True,
    priority: Optional[Sequence[str]] = None,
) -> DataAccessMatrix:
    """Build the data access matrix for a loop nest.

    Ranking heuristic (Section 2.2): subscripts occurring in distribution
    dimensions come first, ordered by how often they occur in distribution
    dimensions (then by total occurrences, then by first appearance);
    remaining subscripts follow ordered by total occurrences.  Constant
    subscripts, zero rows and (optionally) non-integral rows are omitted —
    the paper allows dropping "overly complex" subscripts without affecting
    correctness.

    ``priority`` optionally pins specific subscripts (given as expression
    strings like ``"j-k"``; constants are ignored when matching) to the
    front, in the given order.  The paper notes the technical development is
    independent of the ordering; this hook reproduces its worked examples
    exactly where the published tie-breaking is unspecified.
    """
    distributions = dict(distributions or {})
    indices = nest.indices
    rows: List[SubscriptRow] = []
    by_coeffs = {}

    order = 0
    for ref, is_write in nest.array_refs():
        distribution = distributions.get(ref.array)
        dist_dims = set(distribution.distribution_dims()) if distribution else set()
        for dim, subscript in enumerate(ref.subscripts):
            coeffs = subscript.coefficient_vector(indices)
            if all(c == 0 for c in coeffs):
                continue  # Constant subscript: nothing to normalize.
            if skip_nonintegral and any(c.denominator != 1 for c in coeffs):
                continue  # 'Overly complex' (Section 2.2): safe to omit.
            source = SubscriptSource(
                array=ref.array,
                dim=dim,
                is_distribution_dim=dim in dist_dims,
                is_write=is_write,
            )
            row = by_coeffs.get(coeffs)
            if row is None:
                row = SubscriptRow(
                    coeffs=coeffs,
                    expr=AffineExpr.from_coeffs(indices, coeffs),
                    first_seen=order,
                )
                by_coeffs[coeffs] = row
                rows.append(row)
            row.sources.append(source)
            order += 1

    pinned = _priority_positions(priority, indices)
    ranked = sorted(
        rows,
        key=lambda row: (
            pinned.get(row.coeffs, len(pinned)),
            -row.distribution_count,
            -row.total_count,
            row.first_seen,
        ),
    )
    matrix = Matrix([row.coeffs for row in ranked]) if ranked else Matrix([])
    return DataAccessMatrix(matrix=matrix, rows=tuple(ranked), indices=indices)


def _priority_positions(
    priority: Optional[Sequence[str]], indices: Sequence[str]
) -> dict:
    """Map pinned coefficient vectors to their requested rank."""
    positions: dict = {}
    if not priority:
        return positions
    for rank, text in enumerate(priority):
        expr = AffineExpr.parse(text)
        coeffs = expr.coefficient_vector(indices)
        positions[coeffs] = rank
    return positions
