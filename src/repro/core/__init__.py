"""Access normalization — the paper's primary contribution.

Pipeline: :func:`build_access_matrix` (Section 2.2) ->
:func:`basis_matrix` (Section 5.1) -> :func:`legal_basis` (Figure 2) ->
:func:`legal_invertible` (Figure 3, includes :func:`padding_matrix` from
Section 5.2) -> :func:`apply_transformation` (Section 3).  The one-call
driver is :func:`access_normalize`.
"""

from repro.core.access_matrix import (
    DataAccessMatrix,
    SubscriptRow,
    SubscriptSource,
    build_access_matrix,
)
from repro.core.autodist import AutoDistResult, search_distributions
from repro.core.basis import BasisResult, basis_matrix
from repro.core.cachepad import innermost_stride_score, optimize_padding_order
from repro.core.directions import (
    distance_to_direction,
    is_legal_direction_transformation,
    legal_basis_directions,
    row_direction_interval,
)
from repro.core.classify import (
    classify,
    has_skewing,
    is_identity,
    is_interchange,
    is_reversal,
    is_scaling,
)
from repro.core.legal import (
    LegalBasisResult,
    is_legal_transformation,
    legal_basis,
    legal_invertible,
)
from repro.core.normalize import (
    NormalizationResult,
    access_normalize,
    derive_transformation_matrix,
)
from repro.core.padding import pad_to_invertible, padding_matrix
from repro.core.prenormalize import normalize_program_steps, normalize_steps
from repro.core.transform import (
    Transformation,
    apply_transformation,
    choose_new_indices,
    nest_constraints,
)

__all__ = [
    "AutoDistResult",
    "BasisResult",
    "DataAccessMatrix",
    "LegalBasisResult",
    "NormalizationResult",
    "SubscriptRow",
    "SubscriptSource",
    "Transformation",
    "access_normalize",
    "apply_transformation",
    "basis_matrix",
    "build_access_matrix",
    "choose_new_indices",
    "classify",
    "derive_transformation_matrix",
    "distance_to_direction",
    "has_skewing",
    "is_identity",
    "is_interchange",
    "is_legal_direction_transformation",
    "is_legal_transformation",
    "legal_basis_directions",
    "is_reversal",
    "innermost_stride_score",
    "is_scaling",
    "legal_basis",
    "legal_invertible",
    "nest_constraints",
    "normalize_program_steps",
    "normalize_steps",
    "row_direction_interval",
    "search_distributions",
    "optimize_padding_order",
    "pad_to_invertible",
    "padding_matrix",
]
