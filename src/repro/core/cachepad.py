"""Cache-aware padding selection (Section 6's closing remark).

"The choice of the padding matrix in this paper is quite arbitrary.  For a
machine in which processors have a first-level cache, there is the obvious
possibility of selecting the padding to improve cache performance" — the
paper leaves this for future work.  This module implements a concrete
version: among the orderings of the transformation's *free* trailing rows
(the ones that did not come from the data access matrix and are therefore
unconstrained apart from legality), pick the one minimizing the total
innermost-loop memory stride of the transformed program.  Unit-stride
innermost access maximizes spatial cache-line reuse (and doubles as the
Section 9 vectorization win).
"""

from __future__ import annotations

from itertools import permutations
from typing import Optional, Sequence, Tuple

from repro.core.legal import is_legal_transformation
from repro.core.transform import apply_transformation
from repro.errors import ReproError
from repro.ir.program import Program
from repro.linalg.fraction_matrix import Matrix

#: Don't enumerate orderings of more than this many free rows (6! = 720).
MAX_FREE_ROWS = 5


def innermost_stride_score(program: Program, nest) -> Optional[int]:
    """Total |innermost stride| over all references (lower is better)."""
    from repro.vector.stride import reference_stride

    if nest.depth == 0:
        return 0
    innermost = nest.indices[-1]
    bound = program.bound_params()
    total = 0
    for ref, _ in nest.array_refs():
        try:
            shape = program.array(ref.array).shape(bound)
        except (ReproError, KeyError, ValueError):
            return None
        stride = reference_stride(ref, innermost, shape)
        if stride is None:
            return None
        total += abs(stride)
    return total


def optimize_padding_order(
    program: Program,
    matrix: Matrix,
    fixed_rows: int,
    deps: Matrix,
    directions: Sequence[Tuple[str, ...]] = (),
) -> Matrix:
    """Reorder the trailing (free) rows of ``matrix`` for cache behaviour.

    ``fixed_rows`` rows at the top came from the data access matrix and are
    kept in place; the remaining rows (projection and padding rows) are
    permuted, each candidate checked for dependence legality — against the
    distance columns ``deps`` and any direction vectors — and the one with
    the lowest innermost-stride score wins.  Ties (and scoring failures)
    keep the original order.
    """
    from repro.core.directions import is_legal_direction_transformation

    depth = matrix.nrows
    free = depth - fixed_rows
    if free <= 1 or free > MAX_FREE_ROWS:
        return matrix
    head = [list(matrix.row_at(i)) for i in range(fixed_rows)]
    tail = [list(matrix.row_at(i)) for i in range(fixed_rows, depth)]

    best_matrix = matrix
    best_score = None
    for order in permutations(range(free)):
        candidate = Matrix(head + [tail[i] for i in order])
        if not is_legal_transformation(candidate, deps):
            continue
        if directions and not is_legal_direction_transformation(
            candidate, directions
        ):
            continue
        try:
            transformation = apply_transformation(program.nest, candidate)
        except ReproError:
            continue
        score = innermost_stride_score(program, transformation.nest)
        if score is None:
            continue
        if best_score is None or score < best_score:
            best_score = score
            best_matrix = candidate
    return best_matrix
