"""The access-normalization driver.

This is the pass the paper describes end to end: build the data access
matrix from the program and its data distributions, reduce it to a basis,
repair it against the dependence matrix, pad it to an invertible
transformation, and restructure the loop nest with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.access_matrix import DataAccessMatrix, build_access_matrix
from repro.core.basis import basis_matrix
from repro.core.classify import classify
from repro.core.legal import is_legal_transformation, legal_basis, legal_invertible
from repro.core.transform import Transformation, apply_transformation
from repro.dependence.analysis import analyze_dependences
from repro.dependence.distance import Dependence, dependence_matrix, has_non_uniform
from repro.errors import IllegalTransformationError
from repro.ir.program import Program
from repro.linalg.fraction_matrix import Matrix


@dataclass(frozen=True)
class NormalizationResult:
    """Everything the pass produced, with full provenance.

    ``normalized_rows`` maps each row of the final transformation that came
    from the data access matrix back to its rank there (and whether it was
    negated by LegalBasis) — those are exactly the subscripts that are
    *normal* (Definition 4.1) in the transformed nest, which downstream code
    generation exploits for locality and block transfers.
    """

    program: Program
    transformed: Program
    transformation: Transformation
    access: DataAccessMatrix
    dependences: Tuple[Dependence, ...]
    dependence_columns: Matrix
    normalized_rows: Tuple[Tuple[int, bool], ...]
    direction_dependences: Tuple[Tuple[str, ...], ...] = ()
    notes: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def matrix(self) -> Matrix:
        """The transformation matrix ``T``."""
        return self.transformation.matrix

    @property
    def labels(self) -> List[str]:
        """Elementary transformations composed in ``T``."""
        return classify(self.matrix)

    @property
    def transformed_dependences(self) -> Matrix:
        """The dependence matrix of the transformed nest: ``T @ D``."""
        if self.dependence_columns.ncols == 0:
            return self.dependence_columns
        return self.matrix @ self.dependence_columns

    @property
    def outer_carried_count(self) -> int:
        """How many dependences the transformed outermost loop may carry.

        Zero for all of the paper's workloads — access normalization pushes
        the carried dependences inward, which is what makes outer-loop
        distribution synchronization-free (Section 7).  Direction-vector
        dependences (the non-uniform fallback path) count conservatively:
        any whose product interval with the first transformation row is not
        provably zero is assumed carried.
        """
        from repro.core.directions import row_direction_interval

        transformed = self.transformed_dependences
        count = sum(
            1 for j in range(transformed.ncols) if transformed[0, j] > 0
        )
        if self.direction_dependences and self.matrix.nrows:
            row = self.matrix.row_at(0)
            for direction in self.direction_dependences:
                if all(cls == "=" for cls in direction):
                    continue
                if not row_direction_interval(row, direction).is_zero:
                    count += 1
        return count

    def report(self) -> str:
        """A human-readable account of what the pass did."""
        lines = [
            f"program: {self.program.name}",
            "data access matrix (ranked):",
            self.access.describe() or "  (empty)",
            "dependence columns: "
            + (
                ", ".join(
                    str(tuple(int(v) for v in col))
                    for col in self.dependence_columns.cols()
                )
                or "(none)"
            ),
            f"transformation T = {self.matrix!r}",
            f"classification: {', '.join(self.labels)}",
            f"normalized access-matrix rows: {list(self.normalized_rows)}",
        ]
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def derive_transformation_matrix(
    access: Matrix, deps: Matrix, depth: Optional[int] = None
) -> Tuple[Matrix, Tuple[Tuple[int, bool], ...]]:
    """Sections 4-6 in one call: access matrix -> legal invertible ``T``.

    Returns the matrix and, for each of its leading rows that descends from
    the access matrix, ``(access_row_index, negated)``.  ``depth`` (the
    nest depth) is only needed when the access matrix is empty; it defaults
    to the access matrix's column count, falling back to the dependence
    matrix's row count.
    """
    n = depth if depth is not None else (access.ncols or deps.nrows)
    if access.nrows == 0:
        return Matrix.identity(n), ()
    basis = basis_matrix(access)
    reduced = basis.basis_of(access)
    legal = legal_basis(reduced, deps)
    transform = legal_invertible(legal.basis, deps)
    provenance = tuple(
        (basis.kept_rows[source], negated) for source, negated in legal.row_map
    )
    if not is_legal_transformation(transform, deps):
        raise IllegalTransformationError(
            "derived transformation does not satisfy the dependence matrix"
        )
    return transform, provenance


def _derive_with_directions(
    access: Matrix, dependences: Sequence[Dependence], depth: int
) -> Tuple[Matrix, Tuple[Tuple[int, bool], ...]]:
    """Partial normalization when only direction vectors are available.

    Runs the direction-vector variant of LegalBasis over the access matrix,
    completes the surviving rows with identity rows (in increasing loop
    order), and accepts the result only if the conservative direction-based
    lexicographic check proves it legal.  Returns the identity otherwise.
    """
    from repro.core.directions import (
        distance_to_direction,
        is_legal_direction_transformation,
        legal_basis_directions,
    )

    identity = Matrix.identity(depth)
    directions = []
    for dependence in dependences:
        if dependence.distance is not None:
            directions.append(distance_to_direction(dependence.distance))
        else:
            directions.append(tuple(dependence.direction))
    if access.nrows == 0:
        return identity, ()

    basis = basis_matrix(access)
    reduced = basis.basis_of(access)
    directional = legal_basis_directions(reduced, directions)
    if directional.basis.nrows == 0:
        return identity, ()
    rows = [list(directional.basis.row_at(i)) for i in range(directional.basis.nrows)]
    candidate = Matrix(rows)
    for dim in range(depth):
        if candidate.nrows == depth:
            break
        unit = [1 if j == dim else 0 for j in range(depth)]
        extended = candidate.vstack(Matrix([unit]))
        if extended.rank() > candidate.rank():
            candidate = extended
    if candidate.nrows != depth or not candidate.is_invertible():
        return identity, ()
    if not is_legal_direction_transformation(candidate, directions):
        return identity, ()
    provenance = tuple(
        (basis.kept_rows[source], negated)
        for source, negated in directional.row_map
    )
    return candidate, provenance


def access_normalize(
    program: Program,
    *,
    priority: Optional[Sequence[str]] = None,
    new_indices: Optional[Sequence[str]] = None,
    padding: str = "default",
    assumptions: Optional[Sequence[str]] = None,
) -> NormalizationResult:
    """Run access normalization on a program.

    When the nest has non-uniform dependences (no distance representation),
    the pass tries a direction-vector partial normalization and otherwise
    returns the identity transformation.

    ``assumptions`` are parameter facts like ``"N >= 2*b"`` used to
    simplify the generated loop bounds (they never change the iteration
    set).  ``padding="cache"`` additionally reorders the transformation's free
    trailing rows (those not descending from the data access matrix) to
    minimize the innermost-loop memory stride — the cache-oriented padding
    choice Section 6 leaves for future work.
    """
    if assumptions is None:
        assumptions = tuple(getattr(program, "assumptions", ()) or ())
    if padding not in ("default", "cache"):
        raise ValueError(f"unknown padding policy {padding!r}")
    notes: List[str] = []
    nest = program.nest
    access = build_access_matrix(
        nest, program.distributions, priority=priority
    )
    dependences = tuple(analyze_dependences(nest, program.bound_params() or None))
    depth = nest.depth

    direction_dependences: Tuple[Tuple[str, ...], ...] = ()
    if has_non_uniform(dependences):
        from repro.core.directions import distance_to_direction

        matrix, provenance = _derive_with_directions(access.matrix, dependences, depth)
        deps = Matrix.zeros(depth, 0)
        direction_dependences = tuple(
            distance_to_direction(d.distance)
            if d.distance is not None
            else tuple(d.direction)
            for d in dependences
        )
        if matrix == Matrix.identity(depth) and not provenance:
            notes.append(
                "non-uniform dependences present and no partial "
                "normalization was provably legal; using the identity "
                "transformation"
            )
        else:
            notes.append(
                "non-uniform dependences present; derived a partial "
                "normalization via direction vectors"
            )
    else:
        deps = dependence_matrix(
            [d for d in dependences if d.distance is not None], depth
        )
        matrix, provenance = derive_transformation_matrix(access.matrix, deps, depth)

    if padding == "cache" and len(provenance) < depth:
        from repro.core.cachepad import optimize_padding_order

        matrix = optimize_padding_order(
            program, matrix, len(provenance), deps,
            directions=direction_dependences,
        )
        notes.append("padding rows reordered for cache behaviour")

    transformation = apply_transformation(
        nest, matrix, new_indices=new_indices, assumptions=assumptions
    )
    transformed = program.with_nest(
        transformation.nest, name=f"{program.name}-normalized"
    )
    return NormalizationResult(
        program=program,
        transformed=transformed,
        transformation=transformation,
        access=access,
        dependences=dependences,
        dependence_columns=deps,
        normalized_rows=provenance,
        direction_dependences=direction_dependences,
        notes=tuple(notes),
    )
