"""Classification of transformation matrices.

Access normalization subsumes loop interchange, skewing, reversal and
scaling (Section 1).  This module names the elementary transformations a
given matrix composes — useful for reports and for asserting that a derived
matrix is (or is not) in Banerjee's unimodular class.
"""

from __future__ import annotations

from typing import List

from repro.linalg.fraction_matrix import Matrix


def is_identity(matrix: Matrix) -> bool:
    """True for the identity transformation."""
    return matrix.is_square and matrix == Matrix.identity(matrix.nrows)


def is_interchange(matrix: Matrix) -> bool:
    """True for a pure loop permutation (non-identity permutation matrix)."""
    return matrix.is_permutation() and not is_identity(matrix)


def is_reversal(matrix: Matrix) -> bool:
    """True for a diagonal ±1 matrix with at least one -1."""
    if not matrix.is_square:
        return False
    has_negative = False
    for i in range(matrix.nrows):
        for j in range(matrix.ncols):
            value = matrix[i, j]
            if i == j:
                if value not in (1, -1):
                    return False
                has_negative = has_negative or value == -1
            elif value != 0:
                return False
    return has_negative


def is_scaling(matrix: Matrix) -> bool:
    """True for a diagonal integer matrix with some |entry| > 1."""
    if not matrix.is_square or not matrix.is_integer():
        return False
    saw_big = False
    for i in range(matrix.nrows):
        for j in range(matrix.ncols):
            value = matrix[i, j]
            if i == j:
                if value == 0:
                    return False
                saw_big = saw_big or abs(value) > 1
            elif value != 0:
                return False
    return saw_big


def has_skewing(matrix: Matrix) -> bool:
    """True when some off-diagonal entry is non-zero."""
    return any(
        matrix[i, j] != 0
        for i in range(matrix.nrows)
        for j in range(matrix.ncols)
        if i != j
    )


def classify(matrix: Matrix) -> List[str]:
    """Labels for the elementary transformations composed in ``matrix``.

    Possible labels: ``identity``, ``interchange``, ``reversal``,
    ``skewing``, ``scaling``, ``non-unimodular``, ``unimodular``.
    """
    labels: List[str] = []
    if is_identity(matrix):
        return ["identity", "unimodular"]
    if is_interchange(matrix):
        labels.append("interchange")
    if is_reversal(matrix):
        labels.append("reversal")
    if has_skewing(matrix) and not is_interchange(matrix):
        labels.append("skewing")
    if any(abs(matrix[i, i]) > 1 for i in range(min(matrix.nrows, matrix.ncols))):
        labels.append("scaling")
    if any(
        matrix[i, i] < 0 for i in range(min(matrix.nrows, matrix.ncols))
    ) and "reversal" not in labels:
        labels.append("reversal")
    labels.append("unimodular" if matrix.is_unimodular() else "non-unimodular")
    return labels
