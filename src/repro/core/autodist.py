"""Automatic data-distribution selection (Section 9, future work).

The paper speculates: "it might be possible to start with the dependence
matrix and use our techniques in reverse, so to speak, to determine what a
good data distribution should be", noting that the main difficulty is load
balance.  This module implements that idea as an empirical search: for
each candidate assignment of wrapped/blocked/replicated distributions to
the program's arrays, run the *full* pipeline — access normalization,
SPMD code generation with block transfers, event-exact simulation — and
rank candidates by simulated makespan (which accounts for locality, block
transfers *and* load balance at once, addressing the paper's concern).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.codegen.spmd import generate_spmd
from repro.core.normalize import access_normalize
from repro.distributions import Blocked, Distribution, Wrapped
from repro.errors import ReproError
from repro.ir.program import Program
from repro.numa.machine import MachineConfig, butterfly_gp1000
from repro.numa.simulator import simulate
from repro.runtime.cache import SimulationCache
from repro.runtime.metrics import Metrics


@dataclass(frozen=True)
class Candidate:
    """One evaluated distribution assignment."""

    distributions: Mapping[str, Optional[Distribution]]
    time_us: float
    transformation_labels: Tuple[str, ...]

    def describe(self) -> str:
        parts = []
        for name in sorted(self.distributions):
            distribution = self.distributions[name]
            label = distribution.describe() if distribution else "replicated"
            parts.append(f"{name}: {label}")
        return "; ".join(parts)


@dataclass(frozen=True)
class AutoDistResult:
    """Outcome of the search: every candidate, best first."""

    ranking: Tuple[Candidate, ...]
    evaluated: int

    @property
    def best(self) -> Candidate:
        return self.ranking[0]


def _array_options(rank: int, allow_replicated: bool) -> List[Optional[Distribution]]:
    options: List[Optional[Distribution]] = []
    for dim in range(rank):
        options.append(Wrapped(dim))
        options.append(Blocked(dim))
    if allow_replicated:
        options.append(None)
    return options


def candidate_assignments(
    program: Program, *, allow_replicated: bool = False
) -> Iterator[Dict[str, Optional[Distribution]]]:
    """All combinations of per-dimension wrapped/blocked per array."""
    names = [decl.name for decl in program.arrays]
    option_lists = [
        _array_options(program.array(name).rank, allow_replicated)
        for name in names
    ]
    for combo in product(*option_lists):
        yield dict(zip(names, combo))


def evaluate_assignment(
    program: Program,
    assignment: Mapping[str, Optional[Distribution]],
    *,
    processors: int,
    machine: MachineConfig,
    params: Optional[Mapping[str, int]] = None,
) -> Candidate:
    """Simulated makespan of the program under one distribution choice."""
    distributions = {
        name: distribution
        for name, distribution in assignment.items()
        if distribution is not None
    }
    trial = Program(
        nest=program.nest,
        arrays=program.arrays,
        distributions=distributions,
        params=program.bound_params(params),
        name=program.name,
    )
    result = access_normalize(trial)
    node = generate_spmd(result.transformed)
    outcome = simulate(node, processors=processors, machine=machine)
    return Candidate(
        distributions=dict(assignment),
        time_us=outcome.total_time_us,
        transformation_labels=tuple(result.labels),
    )


def search_distributions(
    program: Program,
    *,
    processors: int = 16,
    machine: Optional[MachineConfig] = None,
    params: Optional[Mapping[str, int]] = None,
    max_candidates: Optional[int] = None,
    allow_replicated: bool = False,
    jobs: int = 1,
    cache: Optional[SimulationCache] = None,
    metrics: Optional[Metrics] = None,
) -> AutoDistResult:
    """Search distribution assignments, best (lowest makespan) first.

    ``params`` can scale the problem down so the search stays cheap; the
    *relative* ranking is what matters.  Candidates whose pipeline fails
    (e.g. no legal transformation) are skipped.

    This classic search is now a thin preset of the transformation
    autotuner (:func:`repro.tune.search.tune_program`): the same
    wrapped/blocked menu (``SearchSpace(block_sizes=(), ...)``), only the
    paper's derived transformation per assignment
    (``recipes=("derived",)``), scored at a single processor count.  The
    tuner shares the scoring path — one :func:`run_grid` fan-out over
    ``jobs`` workers with memoization — so the ranking is identical at
    any job count, and each candidate keeps its full provenance.
    """
    from repro.tune.search import tune_program
    from repro.tune.space import SearchSpace

    machine = machine or butterfly_gp1000()
    metrics = metrics if metrics is not None else Metrics()
    space = SearchSpace(
        block_sizes=(),
        allow_replicated=allow_replicated,
        recipes=("derived",),
    )
    try:
        outcome = tune_program(
            program,
            processors=(processors,),
            machine=machine,
            params=params,
            budget=max_candidates,
            space=space,
            jobs=jobs,
            cache=cache,
            metrics=metrics,
            include_baseline=False,
        )
    except ReproError:
        raise ReproError("no distribution candidate could be evaluated")
    candidates = [
        Candidate(
            distributions=dict(scored.distributions),
            time_us=scored.times_us[0],
            transformation_labels=tuple(scored.labels),
        )
        for scored in outcome.ranking
    ]
    return AutoDistResult(ranking=tuple(candidates), evaluated=len(candidates))
