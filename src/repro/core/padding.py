"""Algorithm Padding (Section 5.2).

Extends a full-row-rank ``m x n`` basis matrix to an invertible ``n x n``
matrix by appending rows of the identity: pick ``m`` linearly independent
columns of the basis, then append ``e_j`` for every remaining column ``j``.
The stacked matrix is invertible because, after permuting the pivot columns
to the front, it is block triangular with invertible diagonal blocks.
"""

from __future__ import annotations

from typing import List

from repro.errors import LinalgError
from repro.linalg.fraction_matrix import Matrix


def padding_matrix(basis: Matrix) -> Matrix:
    """The ``(n-m) x n`` padding matrix for a full-row-rank basis.

    Raises :class:`LinalgError` when the input rows are not independent.
    """
    if basis.nrows == 0:
        raise LinalgError("cannot pad an empty basis; the identity is the answer")
    if basis.rank() != basis.nrows:
        raise LinalgError("padding requires a full-row-rank basis matrix")
    pivot_cols = set(basis.independent_column_indices())
    rows: List[List[int]] = []
    for column in range(basis.ncols):
        if column not in pivot_cols:
            rows.append([1 if j == column else 0 for j in range(basis.ncols)])
    return Matrix(rows) if rows else Matrix.zeros(0, basis.ncols)


def pad_to_invertible(basis: Matrix) -> Matrix:
    """Stack the basis on top of its padding; the result is invertible."""
    padding = padding_matrix(basis)
    if padding.nrows == 0:
        stacked = basis
    else:
        stacked = basis.vstack(padding)
    if not stacked.is_invertible():
        raise LinalgError("internal error: padded matrix is singular")
    return stacked
