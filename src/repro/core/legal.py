"""Algorithms LegalBasis and LegalInvt (Section 6, Figures 2 and 3).

``legal_basis`` repairs a basis matrix so that no kept row reverses a
dependence; ``legal_invertible`` pads a legal basis to a full invertible
transformation, inventing new rows by projecting coordinate vectors onto
the span of the outstanding dependences — the construction
``x = c Z (Z^T Z)^{-1} Z^T e_k`` that the paper takes from Schrijver.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.errors import IllegalTransformationError
from repro.linalg.fraction_matrix import Matrix
from repro.linalg.intmat import clear_denominators
from repro.dependence.distance import is_lex_positive


@dataclass(frozen=True)
class LegalBasisResult:
    """Output of Algorithm LegalBasis.

    ``row_map[i]`` records where row ``i`` of the result came from in the
    input basis: ``(source_row, negated)``.  Rows whose products with the
    outstanding dependences mixed signs were dropped entirely.
    """

    basis: Matrix
    row_map: Tuple[Tuple[int, bool], ...]
    remaining_deps: Matrix


def _drop_columns(matrix: Matrix, to_drop: List[int]) -> Matrix:
    if not to_drop:
        return matrix
    keep = [j for j in range(matrix.ncols) if j not in set(to_drop)]
    return matrix.select_cols(keep)


def legal_basis(basis: Matrix, deps: Matrix) -> LegalBasisResult:
    """Algorithm LegalBasis (Figure 2).

    For each row (top-down) form ``f = row @ D`` over the not-yet-carried
    dependences: all entries non-negative keeps the row (positive entries
    mark dependences now carried and dropped from ``D``); all entries
    non-positive keeps the row negated (loop reversal); mixed signs force
    the row to be discarded.
    """
    remaining = deps
    kept_rows: List[List[Fraction]] = []
    row_map: List[Tuple[int, bool]] = []
    for index in range(basis.nrows):
        row = list(basis.row_at(index))
        if remaining.ncols == 0:
            kept_rows.append(row)
            row_map.append((index, False))
            continue
        products = [
            sum(r * remaining[i, j] for i, r in enumerate(row))
            for j in range(remaining.ncols)
        ]
        if all(p >= 0 for p in products):
            kept_rows.append(row)
            row_map.append((index, False))
            remaining = _drop_columns(
                remaining, [j for j, p in enumerate(products) if p > 0]
            )
        elif all(p <= 0 for p in products):
            kept_rows.append([-r for r in row])
            row_map.append((index, True))
            remaining = _drop_columns(
                remaining, [j for j, p in enumerate(products) if p < 0]
            )
        # Mixed signs: the row cannot head a legal loop; drop it.
    result = Matrix(kept_rows) if kept_rows else Matrix.zeros(0, basis.ncols)
    return LegalBasisResult(
        basis=result, row_map=tuple(row_map), remaining_deps=remaining
    )


def legal_invertible(basis: Matrix, deps: Matrix) -> Matrix:
    """Algorithm LegalInvt (Figure 3).

    ``basis`` must already be legal with respect to ``deps`` (every row's
    products with the dependence columns are non-negative).  Returns an
    ``n x n`` invertible integer matrix whose transformation satisfies every
    dependence; raises :class:`IllegalTransformationError` when the basis is
    not legal.
    """
    n = basis.ncols
    remaining = deps
    rows: List[List[Fraction]] = [list(basis.row_at(i)) for i in range(basis.nrows)]

    # First pass: drop dependences already carried by the legal basis.
    for row in rows:
        if remaining.ncols == 0:
            break
        products = [
            sum(r * remaining[i, j] for i, r in enumerate(row))
            for j in range(remaining.ncols)
        ]
        if any(p < 0 for p in products):
            raise IllegalTransformationError(
                "legal_invertible requires a legal basis (negative product found)"
            )
        remaining = _drop_columns(remaining, [j for j, p in enumerate(products) if p > 0])

    # Invent new rows until every dependence is carried.
    while remaining.ncols > 0:
        new_row = _projection_row(remaining)
        products = [
            sum(r * remaining[i, j] for i, r in enumerate(new_row))
            for j in range(remaining.ncols)
        ]
        if any(p < 0 for p in products) or all(p == 0 for p in products):
            raise IllegalTransformationError(
                "projection construction failed; are the dependence columns "
                "lexicographically positive distance vectors?"
            )
        remaining = _drop_columns(remaining, [j for j, p in enumerate(products) if p > 0])
        rows.append([Fraction(v) for v in new_row])

    partial = Matrix(rows) if rows else Matrix.zeros(0, n)
    if partial.nrows == 0:
        return Matrix.identity(n)
    from repro.core.padding import pad_to_invertible

    return pad_to_invertible(partial)


def _projection_row(deps: Matrix) -> List[int]:
    """One padding row: the projection of the first usable ``e_k`` onto the
    column span of the outstanding dependences, scaled to a primitive
    integer vector.

    Because every remaining dependence is orthogonal to all current rows,
    the projection is too, which keeps the growing matrix full rank; and
    because distance vectors are lexicographically positive, the products
    ``x^T d_j`` (equal to the ``k``-th entries of the ``d_j``) are
    non-negative with at least one positive.
    """
    k = _first_non_orthogonal_axis(deps)
    if k is None:
        raise IllegalTransformationError("no coordinate axis meets the dependences")
    independent_cols = deps.transpose().independent_row_indices()
    z = deps.select_cols(independent_cols)
    gram = z.transpose() @ z
    e_k = Matrix.column([1 if i == k else 0 for i in range(deps.nrows)])
    projection = z @ gram.inverse() @ z.transpose() @ e_k
    return clear_denominators([projection[i, 0] for i in range(deps.nrows)])


def _first_non_orthogonal_axis(deps: Matrix) -> Optional[int]:
    for k in range(deps.nrows):
        if any(deps[k, j] != 0 for j in range(deps.ncols)):
            return k
    return None


def is_legal_transformation(transform: Matrix, deps: Matrix) -> bool:
    """Check Section 6's legality criterion: every column of ``T @ D`` is
    lexicographically positive."""
    if deps.ncols == 0:
        return True
    product = transform @ deps
    return all(
        is_lex_positive([product[i, j] for i in range(product.nrows)])
        for j in range(product.ncols)
    )
