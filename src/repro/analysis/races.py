"""SPMD race / communication checker (codes ``RACE001``-``RACE004``).

Analyzes a :class:`repro.codegen.spmd.NodeProgram` for cross-processor
conflicts on the distributed (outermost) loop:

* a dependence *carried* by the distributed loop relates iterations that
  run on different processors.  If the node program inserts no
  per-iteration synchronization, a carried **output** dependence is a
  write-write race (``RACE001``) and a carried **flow/anti** dependence is
  a read-write race (``RACE002``) — unless every write of the array is
  wrapped in an ownership guard (``(expr) mod P == p``), which serializes
  writers per element and excuses write-write conflicts;
* a block transfer (``read A[...]``) of an array involved in a carried
  dependence gathers values that another processor may still be producing
  (``RACE003``, warning);
* carried dependences that *are* covered by the node program's declared
  per-iteration synchronization are reported as ``RACE004`` info, so the
  cost shows up in review without failing the gate.

Carried-ness comes from the normalization result when available (columns
of ``T @ D`` with a positive leading entry, direction vectors via interval
arithmetic); for a standalone node program with unit steps the pass runs
the dependence analyzer directly on the node's nest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity, Span
from repro.codegen.locality import RefClass
from repro.codegen.spmd import NodeProgram
from repro.core.directions import row_direction_interval
from repro.dependence.analysis import analyze_dependences
from repro.dependence.distance import Dependence, DependenceKind
from repro.errors import ReproError
from repro.ir.affine import AffineExpr
from repro.ir.stmt import Assign, IfThen, ModEq, Statement

if TYPE_CHECKING:
    from repro.analysis.manager import AnalysisContext


class RacePass:
    """Detect cross-processor conflicts in the SPMD node program."""

    name = "races"

    def run(self, context: "AnalysisContext") -> List[Diagnostic]:
        node = context.node
        if node is None:
            return []
        program = node.program
        carried = _carried_dependences(context)
        if carried is None:
            return []  # dependence information unavailable (strided nest)

        diagnostics: List[Diagnostic] = []
        outer = node.nest.indices[0] if node.nest.depth else None
        synchronized = node.sync_per_outer_iteration > 0
        guarded = _ownership_guarded_arrays(node)

        for dependence in carried:
            span = Span(
                program=program.name, loop=outer, reference=dependence.array
            )
            vector = (
                tuple(dependence.distance)
                if dependence.distance is not None
                else tuple(dependence.direction or ())
            )
            if synchronized:
                diagnostics.append(
                    Diagnostic(
                        "RACE004",
                        Severity.INFO,
                        f"{dependence.kind.value} dependence {vector} on "
                        f"{dependence.array!r} is carried by the distributed "
                        "loop but covered by per-iteration synchronization",
                        span,
                    )
                )
                continue
            if dependence.kind is DependenceKind.OUTPUT:
                if dependence.array in guarded:
                    continue  # owner-exclusive writes cannot conflict
                diagnostics.append(
                    Diagnostic(
                        "RACE001",
                        Severity.ERROR,
                        f"write-write conflict: output dependence {vector} on "
                        f"{dependence.array!r} is carried by the distributed "
                        "loop with no synchronization",
                        span,
                    )
                )
            else:
                diagnostics.append(
                    Diagnostic(
                        "RACE002",
                        Severity.ERROR,
                        f"read-write conflict: {dependence.kind.value} "
                        f"dependence {vector} on {dependence.array!r} is "
                        "carried by the distributed loop with no "
                        "synchronization",
                        span,
                    )
                )

        carried_arrays = {dependence.array for dependence in carried}
        for level, read in node.plan.block_reads:
            if read.array in carried_arrays:
                loop_index = (
                    node.nest.indices[level]
                    if level < node.nest.depth
                    else outer
                )
                diagnostics.append(
                    Diagnostic(
                        "RACE003",
                        Severity.WARNING,
                        f"block transfer {read} gathers {read.array!r}, whose "
                        "distributed loop carries a dependence; the copy can "
                        "go stale across processors",
                        Span(
                            program=program.name,
                            loop=loop_index,
                            reference=str(read),
                        ),
                    )
                )
        _check_plan_consistency(node, diagnostics)
        return diagnostics


# ----------------------------------------------------------------------
def _distribution_dims(distribution: object) -> Tuple[int, ...]:
    dims = getattr(distribution, "distribution_dims", None)
    if dims is None:
        return ()
    return tuple(dims())


def _carried_dependences(
    context: "AnalysisContext",
) -> Optional[List[Dependence]]:
    """Dependences carried by the distributed (outermost) loop.

    ``None`` means "could not be determined" (no normalization result and
    the node nest is not analyzable directly) — the pass stays silent
    rather than guessing.
    """
    node = context.node
    result = context.result
    if node is None:
        return None
    carried: List[Dependence] = []
    if result is not None:
        matrix = result.matrix
        row = matrix.row_at(0) if matrix.nrows else ()
        for dependence in result.dependences:
            if dependence.distance is not None:
                image = matrix.apply(list(dependence.distance))
                if image and image[0] > 0:
                    carried.append(dependence)
            elif dependence.direction is not None and row:
                interval = row_direction_interval(row, tuple(dependence.direction))
                if not interval.is_zero:
                    carried.append(dependence)
        return carried
    nest = node.nest
    if any(loop.step != 1 or loop.align is not None for loop in nest.loops):
        return None
    try:
        dependences = analyze_dependences(
            nest, node.program.bound_params() or None
        )
    except ReproError:
        return None
    for dependence in dependences:
        if dependence.distance is not None:
            if dependence.distance[0] > 0:
                carried.append(dependence)
        elif dependence.direction is not None:
            if dependence.direction[0] in ("<", "*"):
                carried.append(dependence)
    return carried


def _ownership_guarded_arrays(node: NodeProgram) -> Set[str]:
    """Arrays whose *every* write is wrapped in an ownership guard.

    An ownership guard is a ``ModEq`` whose modulus is the processor-count
    parameter and whose target is the processor-number parameter — the
    shape :func:`repro.codegen.ownership.generate_ownership` emits.
    """
    procs = AffineExpr.var(node.procs_param)
    proc = AffineExpr.var(node.proc_param)

    def is_ownership_guard(condition: ModEq) -> bool:
        return condition.modulus == procs and condition.target == proc

    guarded: Set[str] = set()
    unguarded: Set[str] = set()

    def visit(statement: Statement, under_guard: bool) -> None:
        if isinstance(statement, IfThen):
            owns = any(is_ownership_guard(c) for c in statement.conditions)
            if statement.disjunctive:
                owns = all(is_ownership_guard(c) for c in statement.conditions)
            visit(statement.body, under_guard or owns)
            return
        if isinstance(statement, Assign):
            target = guarded if under_guard else unguarded
            target.add(statement.lhs.array)

    for statement in node.nest.body:
        visit(statement, False)
    for loop in node.nest.loops:
        for statement in loop.prologue:
            visit(statement, False)
    return guarded - unguarded


def _check_plan_consistency(
    node: NodeProgram, diagnostics: List[Diagnostic]
) -> None:
    """A LOCAL-classified *write* under a blocked schedule of a cyclic
    distribution would be a plan bug; surface it as a race error since the
    write would land on a non-owner."""
    if node.schedule == "wrapped":
        return
    for info in node.plan.refs:
        if not info.is_write or info.ref_class is not RefClass.LOCAL:
            continue
        distribution = node.program.distributions.get(info.ref.array)
        if distribution is None or not _distribution_dims(distribution):
            continue
        diagnostics.append(
            Diagnostic(
                "RACE001",
                Severity.ERROR,
                f"write {info.ref} is classified LOCAL under the "
                f"{node.schedule!r} schedule, but value-based locality only "
                "holds for wrapped schedules",
                Span(program=node.program.name, reference=str(info.ref)),
            )
        )
