"""Static bounds checker (codes ``BND001``-``BND003``).

For every array subscript of the *source* program, proves over the
iteration polyhedron (plus any declared ``assume`` facts) that the
subscript lies within ``0 .. extent-1``, using the exact Fourier-Motzkin
implication test in :mod:`repro.linalg.fourier_motzkin`.

The proof runs over the rational relaxation of the iteration space, which
is sound: if the affine subscript stays in bounds on the relaxation it
stays in bounds on the integer points.  When a proof fails the checker
searches for a concrete *witness iteration* by enumerating the nest under
the program's default parameters — a found violation is a hard error
(``BND001``) reported with the witness; an unprovable-but-unfalsified
subscript is a warning (``BND002``).
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity, Span
from repro.core.transform import parse_assumption
from repro.errors import ReproError
from repro.ir.affine import AffineExpr
from repro.ir.loop import LoopNest
from repro.ir.program import Program
from repro.ir.scalar import ArrayRef
from repro.linalg.fourier_motzkin import Constraint, implies_bound

if TYPE_CHECKING:
    from repro.analysis.manager import AnalysisContext

#: Cap on the iterations enumerated while searching for a witness.
MAX_WITNESS_ITERATIONS = 20_000


class BoundsPass:
    """Prove every subscript within its array extents."""

    name = "bounds"

    def run(self, context: "AnalysisContext") -> List[Diagnostic]:
        program = context.program
        nest = program.nest
        if nest.depth == 0:
            return []
        indices = list(nest.indices)
        params = _parameter_order(program)
        names = indices + params
        region = _relaxed_nest_constraints(nest, indices, params)
        region.extend(
            _assumption_constraints(context.assumptions, indices, params)
        )
        # Second, lower-dimensional region with the program's ``param``
        # bindings folded in as constants.  Proofs try the symbolic region
        # first (general in the parameters); the folded region is the
        # fallback for programs whose extents are concrete while their
        # bounds are symbolic.  Folding keeps the FM problem small, which
        # matters: parameter *equality rows* in the symbolic region make
        # elimination blow up combinatorially.
        bound = {
            name: value
            for name, value in program.bound_params().items()
            if name in params
        }
        folded = (
            _fold_constraints(region, names, bound) if bound else None
        )

        diagnostics: List[Diagnostic] = []
        checked: Dict[Tuple[str, int, AffineExpr], bool] = {}
        for statement_index, ref, _is_write in _statement_refs(nest):
            if not program.has_array(ref.array):
                continue  # validate_program reports undeclared arrays
            decl = program.array(ref.array)
            if decl.rank != ref.rank:
                continue
            for dim, subscript in enumerate(ref.subscripts):
                key = (ref.array, dim, subscript)
                if key in checked:
                    continue
                checked[key] = True
                span = Span(
                    program=program.name,
                    statement=statement_index,
                    reference=f"{ref} dim {dim}",
                )
                diagnostic = self._check_subscript(
                    program, region, folded, bound, names, indices,
                    subscript, decl.extents[dim], span,
                )
                if diagnostic is not None:
                    diagnostics.append(diagnostic)
        return diagnostics

    # ------------------------------------------------------------------
    def _check_subscript(
        self,
        program: Program,
        region: List[Constraint],
        folded: Optional[List[Constraint]],
        bound: Dict[str, int],
        names: List[str],
        indices: List[str],
        subscript: AffineExpr,
        extent: AffineExpr,
        span: Span,
    ) -> Optional[Diagnostic]:
        width = len(names)
        subscript_row = list(subscript.coefficient_vector(names)) + [subscript.const]
        zero_row: List[Fraction] = [Fraction(0)] * (width + 1)
        upper = extent - 1
        upper_row = list(upper.coefficient_vector(names)) + [upper.const]

        lower_proven = implies_bound(region, subscript_row, zero_row)
        upper_proven = implies_bound(region, upper_row, subscript_row)
        if folded is not None and not (lower_proven and upper_proven):
            sub_f = _fold_row(subscript_row, names, bound)
            zero_f = _fold_row(zero_row, names, bound)
            upper_f = _fold_row(upper_row, names, bound)
            lower_proven = lower_proven or implies_bound(folded, sub_f, zero_f)
            upper_proven = upper_proven or implies_bound(folded, upper_f, sub_f)
        if lower_proven and upper_proven:
            return None

        side = "below" if not lower_proven else "above"
        witness, non_integral = _find_witness(
            program, indices, subscript, extent
        )
        if witness is not None:
            value, env = witness
            rendered = ", ".join(f"{k}={env[k]}" for k in indices if k in env)
            return Diagnostic(
                "BND001",
                Severity.ERROR,
                f"subscript {subscript} evaluates to {value} outside "
                f"0..{extent}-1 at iteration ({rendered})",
                span,
            )
        if non_integral is not None:
            value, env = non_integral
            rendered = ", ".join(f"{k}={env[k]}" for k in indices if k in env)
            return Diagnostic(
                "BND003",
                Severity.WARNING,
                f"subscript {subscript} evaluates to non-integral {value} "
                f"at iteration ({rendered})",
                span,
            )
        return Diagnostic(
            "BND002",
            Severity.WARNING,
            f"cannot prove subscript {subscript} within 0..{extent}-1 "
            f"(unproven {side}; no violation found at the default parameters)",
            span,
        )


# ----------------------------------------------------------------------
def _parameter_order(program: Program) -> List[str]:
    """Deterministic parameter ordering: nest free variables first, then
    any extra symbols from extents or assumptions, sorted."""
    ordered = list(program.nest.free_variables())
    extra = set()
    for decl in program.arrays:
        for extent in decl.extents:
            extra.update(extent.variables())
    for fact in program.assumptions:
        for token in fact.replace(">=", " ").replace("<=", " ").split():
            if token.isidentifier():
                extra.add(token)
    known = set(ordered) | set(program.nest.indices)
    ordered.extend(sorted(name for name in extra if name not in known))
    return ordered


def _relaxed_nest_constraints(
    nest: LoopNest, indices: List[str], params: List[str]
) -> List[Constraint]:
    """Iteration-space inequalities over ``(indices | params)``.

    Unlike :func:`repro.core.transform.nest_constraints` this tolerates
    strided/aligned loops: dropping the congruence constraint only
    *enlarges* the region, which keeps the in-bounds proof sound.
    """
    names = indices + params
    constraints: List[Constraint] = []
    for level, loop in enumerate(nest.loops):
        for lower in loop.lower:
            coeffs = [-c for c in lower.coefficient_vector(names)]
            coeffs[level] += 1
            constraints.append(Constraint(tuple(coeffs), -lower.const))
        for upper in loop.upper:
            coeffs = list(upper.coefficient_vector(names))
            coeffs[level] -= 1
            constraints.append(Constraint(tuple(coeffs), upper.const))
    return constraints


def _assumption_constraints(
    assumptions: Sequence[str], indices: List[str], params: List[str]
) -> List[Constraint]:
    constraints: List[Constraint] = []
    for fact in assumptions:
        try:
            constraints.append(parse_assumption(fact, indices, params))
        except ReproError:
            continue  # a malformed assumption never blocks analysis
    return constraints


def _fold_row(
    row: Sequence[Fraction], names: List[str], bound: Dict[str, int]
) -> List[Fraction]:
    """Project a ``coeffs + [const]`` row onto the unbound names, folding
    bound-parameter contributions into the constant term."""
    const = row[-1]
    kept: List[Fraction] = []
    for name, coefficient in zip(names, row[:-1]):
        if name in bound:
            const += coefficient * bound[name]
        else:
            kept.append(coefficient)
    return kept + [const]


def _fold_constraints(
    constraints: Sequence[Constraint], names: List[str], bound: Dict[str, int]
) -> List[Constraint]:
    folded: List[Constraint] = []
    for constraint in constraints:
        row = _fold_row(list(constraint.coeffs) + [constraint.const], names, bound)
        folded.append(Constraint(tuple(row[:-1]), row[-1]))
    return folded


def _statement_refs(nest: LoopNest) -> List[Tuple[int, ArrayRef, bool]]:
    """``(statement_index, ref, is_write)`` in body order."""
    result: List[Tuple[int, ArrayRef, bool]] = []
    for statement_index, statement in enumerate(nest.body):
        for ref, is_write in statement.array_refs():
            result.append((statement_index, ref, is_write))
    return result


def _find_witness(
    program: Program,
    indices: List[str],
    subscript: AffineExpr,
    extent: AffineExpr,
) -> Tuple[
    Optional[Tuple[Fraction, Dict[str, int]]],
    Optional[Tuple[Fraction, Dict[str, int]]],
]:
    """Search for a concrete out-of-bounds (or non-integral) iteration.

    Returns ``(violation, non_integral)``; each is ``(value, env)`` or
    ``None``.  Enumeration needs every symbol bound by the program's
    default parameters and is capped at :data:`MAX_WITNESS_ITERATIONS`.
    """
    params = program.bound_params()
    needed = set(program.nest.free_variables()) | set(extent.variables())
    if any(name not in params for name in needed):
        return None, None
    try:
        limit = extent.evaluate_int(params)
    except (ValueError, KeyError):
        return None, None
    non_integral: Optional[Tuple[Fraction, Dict[str, int]]] = None
    count = 0
    try:
        for env in program.nest.iterate(params):
            count += 1
            if count > MAX_WITNESS_ITERATIONS:
                break
            value = subscript.evaluate(env)
            if value.denominator != 1:
                if non_integral is None:
                    non_integral = (value, {k: env[k] for k in indices if k in env})
                continue
            if value < 0 or value > limit - 1:
                return (value, {k: env[k] for k in indices if k in env}), None
    except (ValueError, KeyError, ReproError):
        return None, non_integral
    return None, non_integral
