"""AST-level sanitizer for generated accounting code (``KERN001``-``KERN005``).

Tiers 0 and 2 of the accounting engine answer cells by *executing
generated Python*: the per-node kernel emitted by
:class:`repro.codegen.pycodegen._KernelEmitter` and the compiled form
evaluators emitted by ``repro.linalg.sympoly._compile_form``.  Both ride
through ``exec``, so nothing reviews the text they produce — a codegen
regression shows up only as wrong counts (caught dynamically) or as
silent waste (caught by nobody).  This pass parses the generated source
back into an AST and checks it like a reviewer would:

* ``KERN001`` — an assignment inside a generated loop whose right-hand
  side does not depend on any loop variable: hoistable work executed
  once per iteration (the exact inefficiency the ROADMAP names for the
  tier-0 residual ``BoundedSum`` loops, fixed in ``_compile_form`` by
  the hoist this PR ships — the check keeps it fixed);
* ``KERN002`` — a local assigned but never read: dead codegen output
  (``for`` targets are exempt — a counted-repeat loop must bind one
  even when strength reduction moved every use onto induction
  registers);
* ``KERN003`` — a dead branch: a constant ``if`` test, or a test
  identical to an enclosing test none of whose operands changed in
  between;
* ``KERN004`` — an ownership test whose *kind* (cyclic ``% P == p``
  congruence vs. blocked interval bounds) does not occur in the node
  program's distributions: the kernel is checking ownership the program
  does not have;
* ``KERN005`` — informational: the nest has no compiled kernel at all
  (the simulator falls back down the tier ladder).

All checks run on source text, so injected-defect tests can sanitize a
mutated kernel directly through :func:`sanitize_generated_source`.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity, Span

if TYPE_CHECKING:
    from repro.analysis.manager import AnalysisContext
    from repro.codegen.spmd import NodeProgram

__all__ = [
    "KernelPass",
    "expected_ownership",
    "sanitize_generated_source",
]


def _target_names(node: ast.expr) -> Set[str]:
    """Names bound by an assignment target (tuple targets included)."""
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store)
    }


def _loaded_names(node: ast.AST) -> Set[str]:
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
    }


def _stored_names(node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            out.add(child.id)
        elif isinstance(child, ast.For):
            out |= _target_names(child.target)
    return out


def sanitize_generated_source(
    source: str,
    *,
    artifact: str,
    program: str = "",
    expected: Optional[Set[str]] = None,
) -> List[Diagnostic]:
    """Sanitize one generated-code artifact.

    ``artifact`` labels the span (``"kernel"``, ``"form:local"``, ...);
    ``expected`` is the set of ownership-test kinds (``"wrapped"`` /
    ``"blocked"``) the node program can legitimately need, or ``None``
    to skip the ownership check (tier-0 form code tests no ownership).
    Spans carry the generated-source line number in ``statement``.
    """
    tree = ast.parse(source)
    diagnostics: List[Diagnostic] = []
    for func in ast.walk(tree):
        if not isinstance(func, ast.FunctionDef):
            continue
        _check_unused_locals(func, artifact, program, diagnostics)
        _check_loop_invariants(func, artifact, program, diagnostics)
        _check_dead_branches(func, artifact, program, diagnostics)
        if expected is not None:
            _check_ownership(func, expected, artifact, program, diagnostics)
    return diagnostics


def _span(artifact: str, program: str, line: int) -> Span:
    return Span(program=program, statement=line, reference=artifact)


# ----------------------------------------------------------------------
# KERN002: locals assigned but never read
# ----------------------------------------------------------------------

def _check_unused_locals(
    func: ast.FunctionDef,
    artifact: str,
    program: str,
    diagnostics: List[Diagnostic],
) -> None:
    arguments = {arg.arg for arg in func.args.args}
    first_store: Dict[str, int] = {}
    loaded: Set[str] = set()
    repeat_targets: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                loaded.add(node.id)
            elif isinstance(node.ctx, ast.Store):
                first_store.setdefault(node.id, node.lineno)
        elif isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            # A counted-repeat loop has to bind a target even when the
            # body reads only induction registers, never the index.
            repeat_targets.add(node.target.id)
    for name in sorted(first_store):
        if name in loaded or name in arguments or name in repeat_targets:
            continue
        diagnostics.append(
            Diagnostic(
                "KERN002",
                Severity.WARNING,
                f"local {name!r} is assigned but never read",
                _span(artifact, program, first_store[name]),
            )
        )


# ----------------------------------------------------------------------
# KERN001: loop-invariant computation inside a generated loop
# ----------------------------------------------------------------------

def _check_loop_invariants(
    func: ast.FunctionDef,
    artifact: str,
    program: str,
    diagnostics: List[Diagnostic],
) -> None:
    # Collect, per loop, the simple assignments whose *innermost*
    # enclosing loop it is — an invariant assignment is reported against
    # the loop it should be hoisted out of, once.
    loops: List[Tuple[ast.For, List[ast.Assign]]] = []

    def visit(statements: Sequence[ast.stmt], sink: Optional[List[ast.Assign]]) -> None:
        for statement in statements:
            if isinstance(statement, ast.For):
                inner: List[ast.Assign] = []
                loops.append((statement, inner))
                visit(statement.body, inner)
                visit(statement.orelse, sink)
            elif isinstance(statement, ast.If):
                visit(statement.body, sink)
                visit(statement.orelse, sink)
            elif isinstance(statement, ast.Assign) and sink is not None:
                sink.append(statement)

    visit(func.body, None)

    for loop, assigns in loops:
        varying = _target_names(loop.target)
        store_counts: Dict[str, int] = {}
        simple: List[ast.Assign] = []
        for node in ast.walk(loop):
            if isinstance(node, ast.AugAssign):
                # Accumulators change with every iteration by definition.
                varying |= _target_names(node.target)
            elif isinstance(node, ast.For) and node is not loop:
                varying |= _target_names(node.target)
            elif isinstance(node, ast.Assign):
                names = set()
                for target in node.targets:
                    names |= _target_names(target)
                for name in names:
                    store_counts[name] = store_counts.get(name, 0) + 1
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    simple.append(node)
                else:
                    varying |= names  # tuple unpacking: treat as opaque
        # A name assigned at several sites may take different values on
        # different paths — conservatively varying.
        varying |= {name for name, count in store_counts.items() if count > 1}
        changed = True
        while changed:
            changed = False
            for node in simple:
                target = node.targets[0]
                assert isinstance(target, ast.Name)
                if target.id in varying:
                    continue
                if _loaded_names(node.value) & varying:
                    varying.add(target.id)
                    changed = True
        for node in assigns:
            target = node.targets[0] if len(node.targets) == 1 else None
            if not isinstance(target, ast.Name) or target.id in varying:
                continue
            loads = _loaded_names(node.value)
            if not loads or loads & varying:
                continue  # pure constants are free; varying RHS is not hoistable
            diagnostics.append(
                Diagnostic(
                    "KERN001",
                    Severity.WARNING,
                    f"'{target.id} = ...' does not depend on the loop "
                    f"variable(s) {', '.join(sorted(_target_names(loop.target)))}"
                    " — hoistable above the loop",
                    _span(artifact, program, node.lineno),
                )
            )


# ----------------------------------------------------------------------
# KERN003: dead branches
# ----------------------------------------------------------------------

def _check_dead_branches(
    func: ast.FunctionDef,
    artifact: str,
    program: str,
    diagnostics: List[Diagnostic],
) -> None:
    def visit(statements: Sequence[ast.stmt], active: Dict[str, Set[str]]) -> None:
        for statement in statements:
            stored = _stored_names(statement)
            if stored:
                for dump in [
                    key for key, names in active.items() if names & stored
                ]:
                    del active[dump]
            if isinstance(statement, ast.If):
                test = statement.test
                if isinstance(test, ast.Constant):
                    diagnostics.append(
                        Diagnostic(
                            "KERN003",
                            Severity.WARNING,
                            f"branch test is the constant {test.value!r}; "
                            "one side of the branch is dead",
                            _span(artifact, program, statement.lineno),
                        )
                    )
                    visit(statement.body, dict(active))
                    visit(statement.orelse, dict(active))
                    continue
                dump = ast.dump(test)
                if dump in active:
                    diagnostics.append(
                        Diagnostic(
                            "KERN003",
                            Severity.WARNING,
                            "branch test repeats an enclosing test whose "
                            "operands have not changed; the else branch "
                            "is dead",
                            _span(artifact, program, statement.lineno),
                        )
                    )
                child = dict(active)
                child[dump] = _loaded_names(test)
                visit(statement.body, child)
                visit(statement.orelse, dict(active))
            elif isinstance(statement, ast.For):
                # Entries surviving the store-invalidation above are
                # loop-invariant, so they remain decided inside the body.
                visit(statement.body, dict(active))
                visit(statement.orelse, dict(active))

    visit(func.body, {})


# ----------------------------------------------------------------------
# KERN004: ownership tests the program does not call for
# ----------------------------------------------------------------------

def _observed_ownership(func: ast.FunctionDef) -> Dict[str, int]:
    """Ownership-test kinds the kernel text performs -> first line."""
    observed: Dict[str, int] = {}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.ops[0], (ast.Eq, ast.NotEq))
            and isinstance(node.left, ast.BinOp)
            and isinstance(node.left.op, ast.Mod)
            and isinstance(node.left.right, ast.Name)
            and node.left.right.id == "_P"
            and isinstance(node.comparators[0], ast.Name)
            and node.comparators[0].id == "_p"
        ):
            observed.setdefault("wrapped", node.lineno)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "_count_congruent":
                observed.setdefault("wrapped", node.lineno)
            elif node.func.id == "_count_in_interval":
                observed.setdefault("blocked", node.lineno)
        elif isinstance(node, ast.Name) and node.id.startswith(
            ("_lob_", "_hib_", "_clb_")
        ):
            observed.setdefault("blocked", node.lineno)
    return observed


def _check_ownership(
    func: ast.FunctionDef,
    expected: Set[str],
    artifact: str,
    program: str,
    diagnostics: List[Diagnostic],
) -> None:
    for kind, line in sorted(_observed_ownership(func).items()):
        if kind in expected:
            continue
        diagnostics.append(
            Diagnostic(
                "KERN004",
                Severity.ERROR,
                f"kernel performs a {kind} ownership test but no accessed "
                f"array is distributed {kind} in this node program",
                _span(artifact, program, line),
            )
        )


def expected_ownership(node: "NodeProgram") -> Set[str]:
    """Ownership-test kinds ``node``'s distributions can require.

    Mirrors ``_KernelEmitter._ref_kind`` / ``_block_read``: a per-element
    or per-block ownership test only ever arises from a ``Wrapped`` or
    ``Blocked`` distribution of an array the nest actually references
    (whole-array gathers test nothing per element).
    """
    from repro.codegen.locality import RefClass

    expected: Set[str] = set()
    distributions = node.program.distributions
    for info in node.plan.refs:
        if info.ref_class in (RefClass.LOCAL, RefClass.COVERED):
            continue
        distribution = distributions.get(info.ref.array)
        if distribution is None or not distribution.distribution_dims():
            continue
        kind = type(distribution).__name__
        if kind in ("Wrapped", "Blocked"):
            expected.add(kind.lower())
    for loop in node.nest.loops:
        for statement in loop.prologue:
            distribution = distributions.get(statement.array)
            if distribution is None or not distribution.distribution_dims():
                continue
            dims = distribution.distribution_dims()
            if all(statement.pattern[dim] is None for dim in dims):
                continue  # whole-array gather: no per-element test
            kind = type(distribution).__name__
            if kind in ("Wrapped", "Blocked"):
                expected.add(kind.lower())
    return expected


# ----------------------------------------------------------------------
# the pass
# ----------------------------------------------------------------------

class KernelPass:
    """Sanitize the generated accounting code (``KERN001``-``KERN005``)."""

    name = "kernels"

    def run(self, context: "AnalysisContext") -> List[Diagnostic]:
        node = context.node
        if node is None:
            return []
        from repro.numa.simulator import _cached_form, _cached_kernel

        diagnostics: List[Diagnostic] = []
        program_name = node.program.name
        kernel_status = _cached_kernel(node, False)
        if kernel_status[0] == "ok":
            diagnostics.extend(
                sanitize_generated_source(
                    kernel_status[1].source,
                    artifact="kernel",
                    program=program_name,
                    expected=expected_ownership(node),
                )
            )
        else:
            diagnostics.append(
                Diagnostic(
                    "KERN005",
                    Severity.INFO,
                    f"compiled accounting kernel unavailable for this "
                    f"nest: {kernel_status[1]}",
                    Span(program=program_name, reference="kernel"),
                )
            )
        form_status = _cached_form(node)
        if form_status[0] == "ok":
            engine = form_status[1]
            for field in sorted(engine.forms):
                compiled = engine.forms[field].compiled()
                source = getattr(compiled, "source", None)
                if isinstance(source, str):
                    diagnostics.extend(
                        sanitize_generated_source(
                            source,
                            artifact=f"form:{field}",
                            program=program_name,
                            expected=None,
                        )
                    )
        return diagnostics
