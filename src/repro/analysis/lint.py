"""Lint pass (codes ``LINT001``-``LINT004``).

Surfaces findings that are not correctness bugs but usually indicate a
program (or pass pipeline) not doing what its author expects:

* ``LINT001`` — an access-matrix row that never made it into the
  transformation: a warning when Algorithm LegalBasis dropped it because
  it conflicts with the dependences (padding never repairs such rows —
  the subscript stays non-normal), an info when it was merely linearly
  dependent on higher-ranked rows;
* ``LINT002`` — a loop index no subscript, bound, guard or stored index
  value ever uses;
* ``LINT003`` — a guard condition that is provably always true or always
  false;
* ``LINT004`` — a distribution-dimension subscript that survived
  normalization non-normal (classified ``CHECK`` in the locality plan),
  so accesses resolve owner-by-owner at run time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set

from repro.analysis.diagnostics import Diagnostic, Severity, Span
from repro.codegen.locality import RefClass
from repro.core.basis import basis_matrix
from repro.ir.affine import AffineExpr
from repro.ir.loop import LoopNest
from repro.ir.scalar import BinOp, IndexValue, Load, ScalarExpr
from repro.ir.stmt import Assign, BlockRead, IfThen, ModEq, Statement
from repro.linalg.fraction_matrix import Matrix

if TYPE_CHECKING:
    from repro.analysis.manager import AnalysisContext


class LintPass:
    """Style / surprise findings over the program and the pipeline."""

    name = "lint"

    def run(self, context: "AnalysisContext") -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        self._check_dropped_rows(context, diagnostics)
        self._check_unused_indices(context, diagnostics)
        self._check_constant_guards(context, diagnostics)
        self._check_non_normal_subscripts(context, diagnostics)
        return diagnostics

    # ------------------------------------------------------------------
    def _check_dropped_rows(
        self, context: "AnalysisContext", diagnostics: List[Diagnostic]
    ) -> None:
        result = context.result
        if result is None or not result.access.rows:
            return
        program_name = context.program.name
        provenance = {source for source, _negated in result.normalized_rows}
        if not provenance and result.matrix == Matrix.identity(result.matrix.nrows):
            diagnostics.append(
                Diagnostic(
                    "LINT001",
                    Severity.INFO,
                    "normalization fell back to the identity transformation; "
                    "no access-matrix row was normalized",
                    Span(program=program_name),
                )
            )
            return
        kept = set(basis_matrix(result.access.matrix).kept_rows)
        for position, row in enumerate(result.access.rows):
            if position in provenance:
                continue
            arrays = ", ".join(
                sorted({source.array for source in row.sources})
            )
            if position in kept:
                diagnostics.append(
                    Diagnostic(
                        "LINT001",
                        Severity.WARNING,
                        f"access-matrix row {row.expr} (arrays: {arrays}) was "
                        "dropped by LegalBasis — it conflicts with the "
                        "dependences and padding never repaired it, so the "
                        "subscript stays non-normal",
                        Span(program=program_name, reference=str(row.expr)),
                    )
                )
            else:
                diagnostics.append(
                    Diagnostic(
                        "LINT001",
                        Severity.INFO,
                        f"access-matrix row {row.expr} (arrays: {arrays}) is "
                        "linearly dependent on higher-ranked rows and was not "
                        "normalized",
                        Span(program=program_name, reference=str(row.expr)),
                    )
                )

    # ------------------------------------------------------------------
    def _check_unused_indices(
        self, context: "AnalysisContext", diagnostics: List[Diagnostic]
    ) -> None:
        nest = context.program.nest
        used: Set[str] = set()
        for loop in nest.loops:
            for expr in loop.lower + loop.upper:
                used.update(expr.variables())
            if loop.align is not None:
                used.update(loop.align.variables())
            for statement in loop.prologue:
                _statement_variables(statement, used)
        for statement in nest.body:
            _statement_variables(statement, used)
        for loop in nest.loops:
            if loop.index not in used:
                diagnostics.append(
                    Diagnostic(
                        "LINT002",
                        Severity.WARNING,
                        f"loop index {loop.index!r} is never used by a "
                        "subscript, bound, guard or stored value",
                        Span(program=context.program.name, loop=loop.index),
                    )
                )

    # ------------------------------------------------------------------
    def _check_constant_guards(
        self, context: "AnalysisContext", diagnostics: List[Diagnostic]
    ) -> None:
        nest = context.program.nest
        for statement_index, statement in enumerate(nest.body):
            for condition in _guard_conditions(statement):
                verdict = _constant_guard_verdict(condition)
                if verdict is None:
                    continue
                diagnostics.append(
                    Diagnostic(
                        "LINT003",
                        Severity.WARNING,
                        f"guard {condition} is provably always "
                        f"{'true' if verdict else 'false'}"
                        + ("" if verdict else "; the guarded statement is dead"),
                        Span(
                            program=context.program.name,
                            statement=statement_index,
                            reference=str(condition),
                        ),
                    )
                )

    # ------------------------------------------------------------------
    def _check_non_normal_subscripts(
        self, context: "AnalysisContext", diagnostics: List[Diagnostic]
    ) -> None:
        node = context.node
        if node is None or context.result is None:
            return
        if node.schedule != "wrapped":
            return  # value-based locality reasoning needs a wrapped schedule
        nest = node.nest
        if not nest.loops or nest.loops[0].step != 1 or nest.loops[0].align is not None:
            return  # strided outer loop: the LOCAL shortcut never applies
        outer = nest.indices[0]
        seen: Set[str] = set()
        for info in node.plan.refs:
            if info.ref_class is not RefClass.CHECK:
                continue
            distribution = node.program.distributions.get(info.ref.array)
            if distribution is None:
                continue
            dims = tuple(distribution.distribution_dims())
            if len(dims) != 1 or dims[0] >= info.ref.rank:
                continue
            subscript = info.ref.subscripts[dims[0]]
            key = f"{info.ref.array}:{subscript}"
            if key in seen:
                continue
            seen.add(key)
            diagnostics.append(
                Diagnostic(
                    "LINT004",
                    Severity.WARNING,
                    f"distribution-dimension subscript {subscript} of "
                    f"{info.ref} is not normal with respect to the "
                    f"distributed loop {outer!r}; locality resolves access "
                    "by access at run time",
                    Span(
                        program=node.program.name,
                        loop=outer,
                        reference=str(info.ref),
                    ),
                )
            )


# ----------------------------------------------------------------------
def _statement_variables(statement: Statement, used: Set[str]) -> None:
    """Collect every variable a statement's expressions mention."""
    if isinstance(statement, Assign):
        for subscript in statement.lhs.subscripts:
            used.update(subscript.variables())
        _scalar_variables(statement.rhs, used)
    elif isinstance(statement, IfThen):
        for condition in statement.conditions:
            used.update(condition.expr.variables())
            used.update(condition.modulus.variables())
            used.update(condition.target.variables())
        _statement_variables(statement.body, used)
    elif isinstance(statement, BlockRead):
        for pattern in statement.pattern:
            if pattern is not None:
                used.update(pattern.variables())


def _scalar_variables(expr: ScalarExpr, used: Set[str]) -> None:
    if isinstance(expr, Load):
        for subscript in expr.ref.subscripts:
            used.update(subscript.variables())
    elif isinstance(expr, IndexValue):
        used.update(expr.expr.variables())
    elif isinstance(expr, BinOp):
        _scalar_variables(expr.left, used)
        _scalar_variables(expr.right, used)


def _guard_conditions(statement: Statement) -> List[ModEq]:
    if not isinstance(statement, IfThen):
        return []
    conditions = list(statement.conditions)
    conditions.extend(_guard_conditions(statement.body))
    return conditions


def _constant_guard_verdict(condition: ModEq) -> Optional[bool]:
    """``True``/``False`` when the guard is provably constant, else ``None``.

    ``expr mod m == target`` is decidable when ``expr - target`` reduces to
    a constant modulo a constant ``m``: either it is literally constant, or
    every variable coefficient is an integer multiple of ``m`` (integer
    variables then never change the residue).
    """
    difference = condition.expr - condition.target
    if difference == AffineExpr.constant(0):
        return True
    if not condition.modulus.is_constant():
        return None
    modulus = condition.modulus.const
    if modulus.denominator != 1 or modulus == 0:
        return None
    m = abs(int(modulus))
    if m == 1:
        return True
    for value in difference.coeffs.values():
        if value.denominator != 1 or int(value) % m != 0:
            return None
    if difference.const.denominator != 1:
        return False  # a non-integral constant difference can never be == 0 (mod m)
    return int(difference.const) % m == 0
