"""The structured diagnostics the static analyzer reports.

Every finding is a :class:`Diagnostic`: a stable code (``LEG002``,
``BND001``, ``RACE001``, ...), a severity, a human-readable message and a
:class:`Span` locating it in the IR (program / loop / statement /
reference).  Codes are stable across releases so suppressions and CI
gating can rely on them; the catalogue lives in :data:`CODES` and is
documented in ``docs/analysis.md``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple


class Severity(IntEnum):
    """Diagnostic severity, ordered so comparisons mean what they say."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used in text and JSON output."""
        return self.name.lower()

    @staticmethod
    def from_label(label: str) -> "Severity":
        """Parse ``"info"``/``"warning"``/``"error"`` (CLI ``--fail-on``)."""
        try:
            return Severity[label.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {label!r}") from None


#: The stable diagnostic-code catalogue.  One entry per code; the analyzer
#: never emits a code that is not listed here (enforced by the Diagnostic
#: constructor), so docs, suppressions and tests cannot drift.
CODES: Mapping[str, str] = {
    # legality verifier ------------------------------------------------
    "LEG001": "transformation matrix is not invertible over the integers",
    "LEG002": "a transformed dependence distance is not lexicographically positive",
    "LEG003": "loop stride/alignment inconsistent with the image lattice HNF",
    "LEG004": "a direction-vector dependence is not provably preserved",
    # static bounds checker --------------------------------------------
    "BND001": "subscript provably exceeds the array extent (witness iteration)",
    "BND002": "subscript cannot be proven within the array extent",
    "BND003": "subscript takes a non-integral value on the iteration lattice",
    # SPMD race / communication checker --------------------------------
    "RACE001": "cross-processor write-write conflict on the distributed loop",
    "RACE002": "cross-processor read-write conflict on the distributed loop",
    "RACE003": "block transfer of an array whose distributed loop carries a dependence",
    "RACE004": "distributed-loop dependence covered by per-iteration synchronization",
    # lint -------------------------------------------------------------
    "LINT001": "access-matrix row not carried into the transformation",
    "LINT002": "loop index unused by the loop body",
    "LINT003": "guard condition is provably constant",
    "LINT004": "distribution-dimension subscript is not normal after normalization",
    # symbolic-form verifier -------------------------------------------
    "FORM001": "unsimplified or ill-formed Mod/FloorDiv atom in a derived form",
    "FORM002": "count form takes a non-integral value at an integer grid point",
    "FORM003": "residual BoundedSum loops push evaluation past the auto cost ceiling",
    "FORM004": "form mentions a symbol outside (params, P, proc)",
    "FORM005": "form disagrees with the closed-form engine at a certificate grid point",
    "FORM006": "symbolic tier unavailable for this nest (informational)",
    "FORM007": "certificate grid exceeds the verification budget; form unverified",
    # kernel sanitizer -------------------------------------------------
    "KERN001": "loop-invariant computation inside a generated loop (hoistable)",
    "KERN002": "generated kernel assigns a local that is never read",
    "KERN003": "dead branch in a generated kernel (constant or duplicated test)",
    "KERN004": "kernel ownership test inconsistent with the node program's distributions",
    "KERN005": "compiled accounting kernel unavailable for this nest (informational)",
    # analyzer plumbing ------------------------------------------------
    "ANA001": "the compilation pipeline failed before analysis could run",
    "ANA002": "an analysis pass crashed (analyzer bug)",
}


@dataclass(frozen=True)
class Span:
    """Where in the IR a diagnostic points.

    All fields are optional: a whole-program finding carries only the
    program name, a per-reference finding names the statement index and
    the rendered reference, a per-loop finding names the loop index.
    """

    program: str = ""
    loop: Optional[str] = None
    statement: Optional[int] = None
    reference: Optional[str] = None

    def describe(self) -> str:
        """Readable location, e.g. ``gemm: loop u, statement 0, B[k, j]``."""
        parts: List[str] = []
        if self.loop is not None:
            parts.append(f"loop {self.loop}")
        if self.statement is not None:
            parts.append(f"statement {self.statement}")
        if self.reference is not None:
            parts.append(self.reference)
        location = ", ".join(parts)
        if self.program and location:
            return f"{self.program}: {location}"
        return self.program or location

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable representation (``None`` fields omitted)."""
        data: Dict[str, object] = {"program": self.program}
        if self.loop is not None:
            data["loop"] = self.loop
        if self.statement is not None:
            data["statement"] = self.statement
        if self.reference is not None:
            data["reference"] = self.reference
        return data


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    span: Span = field(default_factory=Span)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def format(self) -> str:
        """One-line text rendering: ``[CODE] severity: message (span)``."""
        location = self.span.describe()
        suffix = f" ({location})" if location else ""
        return f"[{self.code}] {self.severity.label}: {self.message}{suffix}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable representation."""
        return {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "span": self.span.to_dict(),
        }


@dataclass(frozen=True)
class AnalysisReport:
    """Every diagnostic the pass pipeline produced for one program.

    ``suppressed`` keeps findings dropped by ``# analyze: ignore[CODE]``
    markers so output can still account for them.
    """

    program_name: str
    diagnostics: Tuple[Diagnostic, ...] = ()
    suppressed: Tuple[Diagnostic, ...] = ()

    def count(self, severity: Severity) -> int:
        """How many (unsuppressed) diagnostics have exactly ``severity``."""
        return sum(1 for diag in self.diagnostics if diag.severity == severity)

    @property
    def has_errors(self) -> bool:
        """True when any unsuppressed diagnostic is an error."""
        return any(d.severity >= Severity.ERROR for d in self.diagnostics)

    @property
    def error_codes(self) -> Tuple[str, ...]:
        """Sorted unique codes of error-level diagnostics."""
        return tuple(
            sorted({d.code for d in self.diagnostics if d.severity >= Severity.ERROR})
        )

    def at_or_above(self, severity: Severity) -> Tuple[Diagnostic, ...]:
        """Unsuppressed diagnostics at or above ``severity``."""
        return tuple(d for d in self.diagnostics if d.severity >= severity)

    def apply_suppressions(self, codes: FrozenSet[str]) -> "AnalysisReport":
        """Move diagnostics whose code is in ``codes`` to ``suppressed``."""
        if not codes:
            return self
        kept = tuple(d for d in self.diagnostics if d.code not in codes)
        dropped = tuple(d for d in self.diagnostics if d.code in codes)
        return AnalysisReport(
            program_name=self.program_name,
            diagnostics=kept,
            suppressed=self.suppressed + dropped,
        )

    def render_text(self, heading: Optional[str] = None) -> str:
        """Readable multi-line report for one program."""
        title = heading if heading is not None else self.program_name
        if not self.diagnostics:
            tail = (
                f" ({len(self.suppressed)} suppressed)" if self.suppressed else ""
            )
            return f"{title}: clean{tail}"
        lines = [f"{title}: {len(self.diagnostics)} diagnostic(s)"]
        for diag in self.diagnostics:
            lines.append(f"  {diag.format()}")
        if self.suppressed:
            lines.append(f"  ({len(self.suppressed)} suppressed)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable representation of the whole report."""
        return {
            "program": self.program_name,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
            "counts": {
                severity.label: self.count(severity) for severity in Severity
            },
        }


#: Inline suppression marker scanned from raw DSL source text (the DSL
#: parser strips comments, so suppressions are collected separately).
_SUPPRESS_RE = re.compile(r"#\s*analyze:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


def collect_suppressions(source: str) -> FrozenSet[str]:
    """Codes suppressed by ``# analyze: ignore[CODE, ...]`` markers.

    Suppressions are file-scoped: the DSL has a single loop nest, so a
    finer granularity would not buy anything.  Unknown codes raise —
    a typo in a suppression should not silently disable nothing.
    """
    codes: List[str] = []
    for match in _SUPPRESS_RE.finditer(source):
        for item in match.group(1).split(","):
            code = item.strip().upper()
            if not code:
                continue
            if code not in CODES:
                raise ValueError(
                    f"suppression names unknown diagnostic code {code!r}"
                )
            codes.append(code)
    return frozenset(codes)


def normalize_suppressions(codes: Iterable[str]) -> FrozenSet[str]:
    """Validate an explicit suppression list (JSON corpus entries, CLI)."""
    result: List[str] = []
    for item in codes:
        code = str(item).strip().upper()
        if code not in CODES:
            raise ValueError(f"suppression names unknown diagnostic code {code!r}")
        result.append(code)
    return frozenset(result)
