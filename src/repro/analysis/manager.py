"""The analysis pass manager.

Two entry points:

* :func:`analyze_program` — run the compile pipeline
  (``access_normalize`` → ``generate_spmd``) on a source program, then
  every analysis pass over the artifacts.  This is what the ``repro
  analyze`` CLI uses; a pipeline failure becomes an ``ANA001`` error
  diagnostic instead of an exception, so one broken file never aborts a
  multi-file run.
* :func:`analyze_artifacts` — run the passes over artifacts the caller
  already produced (the fuzz oracle path: it has the
  :class:`NormalizationResult` and :class:`NodeProgram` in hand and must
  not pay for a second pipeline run).

Passes are isolated: one crashing pass produces an ``ANA002`` diagnostic
and the remaining passes still run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.analysis.bounds import BoundsPass
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
    Span,
)
from repro.analysis.legality import LegalityPass
from repro.analysis.lint import LintPass
from repro.analysis.races import RacePass
from repro.errors import ReproError
from repro.ir.program import Program

if TYPE_CHECKING:
    from repro.codegen.spmd import NodeProgram
    from repro.core.normalize import NormalizationResult


@dataclass
class AnalysisContext:
    """Everything a pass may look at.

    ``result``/``node`` are ``None`` when the pipeline stage that produces
    them failed (or was skipped); passes must degrade gracefully.
    """

    program: Program
    result: Optional["NormalizationResult"] = None
    node: Optional["NodeProgram"] = None
    assumptions: Tuple[str, ...] = ()
    pipeline_error: Optional[str] = None
    notes: Tuple[str, ...] = field(default_factory=tuple)


class AnalysisPass(Protocol):
    """Interface of one analysis pass (structural; see the four passes)."""

    name: str

    def run(self, context: AnalysisContext) -> List[Diagnostic]:
        ...


def _forms_pass() -> AnalysisPass:
    from repro.analysis.forms import FormsPass

    return FormsPass()


def _kernels_pass() -> AnalysisPass:
    from repro.analysis.kernels import KernelPass

    return KernelPass()


#: The pass registry: name -> (description, factory), in execution
#: order.  ``legality``..``lint`` form the default pipeline; ``forms``
#: and ``kernels`` verify *derived artifacts* (tier-0 symbolic forms,
#: generated accounting kernels) and are opt-in via ``--passes`` — they
#: compile the artifacts they check, which the default lint run should
#: not pay for.
PASS_REGISTRY: Dict[str, Tuple[str, Callable[[], AnalysisPass]]] = {
    "legality": (
        "re-prove the transformation legal (LEG codes)",
        LegalityPass,
    ),
    "bounds": (
        "Fourier-Motzkin subscript bounds proofs (BND codes)",
        BoundsPass,
    ),
    "races": (
        "SPMD cross-processor race detection (RACE codes)",
        RacePass,
    ),
    "lint": (
        "structural lint of the normalized nest (LINT codes)",
        LintPass,
    ),
    "forms": (
        "verify + certify tier-0 symbolic forms against the "
        "closed-form engine (FORM codes)",
        _forms_pass,
    ),
    "kernels": (
        "sanitize generated accounting-kernel code (KERN codes)",
        _kernels_pass,
    ),
}

#: Pass names run when the user selects nothing explicitly.
DEFAULT_PASS_NAMES: Tuple[str, ...] = ("legality", "bounds", "races", "lint")


def available_passes() -> Tuple[Tuple[str, str], ...]:
    """``(name, description)`` rows for ``--list-passes``, in run order."""
    return tuple(
        (name, description) for name, (description, _) in PASS_REGISTRY.items()
    )


def resolve_passes(names: Iterable[str]) -> Tuple[AnalysisPass, ...]:
    """Instantiate the named passes, in registry (execution) order.

    Unknown names raise :class:`~repro.errors.ReproError` listing the
    registry — a typo must not silently run everything.
    """
    requested = [str(name).strip() for name in names]
    requested = [name for name in requested if name]
    unknown = sorted(set(requested) - set(PASS_REGISTRY))
    if unknown:
        known = ", ".join(PASS_REGISTRY)
        raise ReproError(
            f"unknown analysis pass(es): {', '.join(unknown)} "
            f"(available: {known})"
        )
    if not requested:
        raise ReproError("no analysis passes selected")
    chosen = set(requested)
    return tuple(
        factory()
        for name, (_description, factory) in PASS_REGISTRY.items()
        if name in chosen
    )


def default_passes() -> Tuple[AnalysisPass, ...]:
    """The standard pass pipeline, in execution order."""
    return resolve_passes(DEFAULT_PASS_NAMES)


def build_context(
    program: Program,
    *,
    priority: Optional[Sequence[str]] = None,
    assumptions: Optional[Sequence[str]] = None,
    schedule: str = "wrapped",
    block_transfers: bool = True,
    sync: bool = False,
) -> AnalysisContext:
    """Run the compile pipeline, capturing failures instead of raising.

    ``sync=False`` analyzes the node program exactly as ``repro compile``
    emits it (no synchronization events), so outer-carried dependences
    that survive normalization surface as race errors; ``sync=True``
    mirrors the fuzz oracle, which always inserts one sync event per
    carried dependence.
    """
    from repro.codegen.spmd import generate_spmd
    from repro.core.normalize import access_normalize
    from repro.ir.validate import validate_program

    facts = tuple(assumptions) if assumptions is not None else tuple(
        program.assumptions
    )
    context = AnalysisContext(program=program, assumptions=facts)
    try:
        validate_program(program)
        result = access_normalize(
            program, priority=priority, assumptions=facts or None
        )
        context.result = result
        context.notes = tuple(result.notes)
        context.node = generate_spmd(
            result.transformed,
            schedule=schedule,
            block_transfers=block_transfers,
            sync_events=result.outer_carried_count if sync else None,
        )
    except ReproError as error:
        context.pipeline_error = f"{type(error).__name__}: {error}"
    return context


def run_passes(
    context: AnalysisContext,
    *,
    passes: Optional[Sequence[AnalysisPass]] = None,
    suppressions: FrozenSet[str] = frozenset(),
) -> AnalysisReport:
    """Run every pass over ``context`` and assemble the report."""
    diagnostics: List[Diagnostic] = []
    if context.pipeline_error is not None:
        diagnostics.append(
            Diagnostic(
                "ANA001",
                Severity.ERROR,
                f"compilation pipeline failed: {context.pipeline_error}",
                Span(program=context.program.name),
            )
        )
    for analysis_pass in passes if passes is not None else default_passes():
        try:
            diagnostics.extend(analysis_pass.run(context))
        except Exception as error:  # noqa: BLE001 - a pass bug must not kill the run
            diagnostics.append(
                Diagnostic(
                    "ANA002",
                    Severity.ERROR,
                    f"analysis pass {analysis_pass.name!r} crashed: "
                    f"{type(error).__name__}: {error}",
                    Span(program=context.program.name),
                )
            )
    report = AnalysisReport(
        program_name=context.program.name, diagnostics=tuple(diagnostics)
    )
    return report.apply_suppressions(suppressions)


def analyze_program(
    program: Program,
    *,
    priority: Optional[Sequence[str]] = None,
    assumptions: Optional[Sequence[str]] = None,
    schedule: str = "wrapped",
    block_transfers: bool = True,
    sync: bool = False,
    passes: Optional[Sequence[AnalysisPass]] = None,
    suppressions: FrozenSet[str] = frozenset(),
) -> AnalysisReport:
    """Compile ``program`` and statically analyze every artifact."""
    context = build_context(
        program,
        priority=priority,
        assumptions=assumptions,
        schedule=schedule,
        block_transfers=block_transfers,
        sync=sync,
    )
    return run_passes(context, passes=passes, suppressions=suppressions)


def analyze_artifacts(
    program: Program,
    *,
    result: Optional["NormalizationResult"] = None,
    node: Optional["NodeProgram"] = None,
    assumptions: Optional[Sequence[str]] = None,
    passes: Optional[Sequence[AnalysisPass]] = None,
    suppressions: FrozenSet[str] = frozenset(),
) -> AnalysisReport:
    """Analyze artifacts the caller already produced (no pipeline re-run)."""
    facts = tuple(assumptions) if assumptions is not None else tuple(
        program.assumptions
    )
    context = AnalysisContext(
        program=program, result=result, node=node, assumptions=facts,
        notes=tuple(result.notes) if result is not None else (),
    )
    return run_passes(context, passes=passes, suppressions=suppressions)
