"""Symbolic-form verifier and certificate layer (codes ``FORM001``-``FORM007``).

Tier 0 of the accounting engine (:mod:`repro.numa.symbolic`) derives each
:class:`~repro.numa.simulator.AccessCounts` field as one quasi-polynomial
form over ``(params, P, proc)`` — after which every sweep cell is a pure
form evaluation.  Nothing *static* re-proved those forms against the node
program until this pass; the only check was the dynamic fuzz oracle.

The pass does two things:

1. **Well-formedness lint** over every derived form:

   * ``FORM001`` — a ``Mod``/``FloorDiv`` atom that the exact-identity
     constructor rewrites would simplify (or that the constructors reject
     outright): derived forms are always built through the constructors,
     so an unsimplified atom means a derivation or mutation bug;
   * ``FORM003`` — residual ``BoundedSum`` loops whose estimated
     evaluation cost exceeds the simulator's auto-selection ceiling, so
     ``auto`` will demote the form (the banded-nest inefficiency the
     ROADMAP names);
   * ``FORM004`` — a free symbol outside the program parameters and the
     ``(P, proc)`` processor symbols: such a form cannot be evaluated.

2. **Certification** that the form is *identical* to the independently
   derived closed-form engine (tier 1) on a finite grid whose size is
   computed from the form's own quasi-polynomial structure — a sound
   interpolation argument, not sampling:

   * with the processor count ``P`` fixed, every modulus in the form is a
     concrete integer; the form restricted to one parameter axis is
     quasi-polynomial with congruence period ``L`` (the lcm of the
     moduli of atoms that move with the parameter) and degree at most
     ``d`` (computed structurally, ``Mod``/``Ge0`` contributing degree
     0, ``FloorDiv``/``Pos`` the degree of their argument, and a
     ``BoundedSum`` ``deg(body) + deg(bound) * (1 + inner-degree)``);
   * two quasi-polynomials of period ``L`` and degree ``<= d`` that
     agree on ``d + 1`` points in every residue class are identical, so
     the grid takes ``L * (d + 1)`` consecutive integer values per
     parameter (a tensor-product grid over several parameters) anchored
     at the program's default bindings;
   * the ``P`` axis carries the moduli themselves, so it is swept
     exhaustively over ``1 .. max_processors`` with every processor id
     checked at each count.

   Agreement on the whole grid certifies form ≡ closed-form engine on
   the enclosing chamber (the region where no ``Pos``/``Ge0`` argument
   changes sign — see ``docs/analysis.md`` for the exact statement);
   disagreement is ``FORM005``, a non-integral form value is ``FORM002``,
   and a grid past the verification budget (or structure the argument
   cannot cover, e.g. a modulus that moves with a parameter) is
   ``FORM007``.  The resulting :class:`FormCertificate` is memoized in
   the process-wide :class:`~repro.runtime.cache.SimulationCache`
   alongside the form itself, keyed by the node fingerprint.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from math import gcd
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity, Span
from repro.linalg.sympoly import (
    BoundedSum,
    FloorDiv,
    Ge0,
    Mod,
    Pos,
    SymExpr,
    SymbolicUnsupported,
    floordiv as make_floordiv,
    mod as make_mod,
)

if TYPE_CHECKING:
    from repro.analysis.manager import AnalysisContext
    from repro.codegen.spmd import NodeProgram
    from repro.numa.symbolic import SymbolicEngine

__all__ = [
    "FormCertificate",
    "FormsPass",
    "certify_engine",
    "certify_node",
]

#: Processor counts the certificate sweeps exhaustively (the ``P`` axis
#: carries the congruence moduli, so it cannot be interpolated).
CERT_MAX_PROCS = 4

#: Hard cap on checked grid cells; a grid past this comes back
#: ``verified=False`` with ``failure="budget"`` instead of running for
#: minutes (``FORM007``, a warning — never a silent pass).
CERT_POINT_BUDGET = 20_000


# ----------------------------------------------------------------------
# quasi-polynomial structure: degree and congruence period per variable
# ----------------------------------------------------------------------

def _degree(expr: SymExpr, var: str) -> int:
    """Structural upper bound on the degree of ``expr`` in ``var``."""
    best = 0
    for mono, _coeff in expr._terms:
        total = 0
        for base, exp in mono:
            total += exp * _base_degree(base, var)
        best = max(best, total)
    return best


def _base_degree(base: object, var: str) -> int:
    if isinstance(base, str):
        return 1 if base == var else 0
    if isinstance(base, (Mod, Ge0)):
        return 0
    if isinstance(base, FloorDiv):
        return _degree(base.arg, var)
    if isinstance(base, Pos):
        return _degree(base.arg, var)
    if isinstance(base, BoundedSum):
        inner = _degree(base.body, base.var)
        return _degree(base.body, var) + _degree(base.bound, var) * (inner + 1)
    raise SymbolicUnsupported(f"unknown atom kind {base!r}")


def _modulus_int(modulus: object, procs_name: str, processors: int) -> Optional[int]:
    """The concrete modulus value with ``P`` fixed, or ``None``."""
    if isinstance(modulus, int):
        return modulus
    if isinstance(modulus, SymExpr):
        if modulus.free_symbols() <= frozenset((procs_name,)):
            try:
                return modulus.evaluate({procs_name: processors})
            except SymbolicUnsupported:
                return None
    return None


def _collect_periods(
    expr: SymExpr,
    var: str,
    procs_name: str,
    processors: int,
    moving: FrozenSet[str],
    out: List[Optional[int]],
) -> None:
    """Concrete moduli of atoms that move with ``var`` (``None`` = opaque).

    ``moving`` carries bound variables of enclosing sums whose *bound*
    moves with ``var``: their iteration space shifts as ``var`` changes,
    so their atoms' periods fold into the period in ``var`` too.
    """
    names = frozenset((var,)) | moving
    for atom in expr.atoms():
        if isinstance(atom, BoundedSum):
            inner = moving
            if any(atom.bound.depends_on(name) for name in names):
                inner = moving | frozenset((atom.var,))
            _collect_periods(atom.bound, var, procs_name, processors, moving, out)
            _collect_periods(atom.body, var, procs_name, processors, inner, out)
        elif isinstance(atom, (Mod, FloorDiv)):
            _collect_periods(atom.arg, var, procs_name, processors, moving, out)
            modulus = atom.modulus
            if isinstance(modulus, SymExpr):
                _collect_periods(
                    modulus, var, procs_name, processors, moving, out
                )
            if any(atom.depends_on(name) for name in names):
                value = _modulus_int(modulus, procs_name, processors)
                if isinstance(modulus, SymExpr) and any(
                    modulus.depends_on(name) for name in names
                ):
                    value = None  # the modulus itself moves: not periodic
                out.append(value)
        elif isinstance(atom, (Pos, Ge0)):
            _collect_periods(atom.arg, var, procs_name, processors, moving, out)


def _period(
    expr: SymExpr, var: str, procs_name: str, processors: int
) -> Optional[int]:
    """Congruence period of ``expr`` along ``var`` at a fixed ``P``.

    ``None`` when some modulus cannot be settled (it depends on the
    parameter itself, or on a symbol outside ``P``) — the interpolation
    argument then does not apply along this axis.
    """
    collected: List[Optional[int]] = []
    _collect_periods(
        expr, var, procs_name, processors, frozenset(), collected
    )
    period = 1
    for value in collected:
        if value is None or value <= 0:
            return None
        period = period * value // gcd(period, value)
    return period


# ----------------------------------------------------------------------
# the certificate
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FormCertificate:
    """Machine-checkable record that form ≡ closed-form engine.

    ``verified`` is the verdict; on failure ``failure`` classifies it
    (``"mismatch"``, ``"non-integral"``, ``"budget"``, ``"structure"``)
    and ``reason`` pins the witness point.  ``degree``/``period`` record
    the per-parameter interpolation structure the grid was computed
    from, ``points`` the number of checked grid cells, and ``digest`` a
    SHA-256 over the forms and the grid specification so a cached
    certificate can be matched against the artifacts it certifies.
    """

    program: str
    verified: bool
    failure: str
    reason: str
    params: Tuple[str, ...]
    anchor: Tuple[Tuple[str, int], ...]
    degree: Tuple[Tuple[str, int], ...]
    period: Tuple[Tuple[str, int], ...]
    max_processors: int
    points: int
    digest: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable representation."""
        return {
            "program": self.program,
            "verified": self.verified,
            "failure": self.failure,
            "reason": self.reason,
            "params": list(self.params),
            "anchor": {name: value for name, value in self.anchor},
            "degree": {name: value for name, value in self.degree},
            "period": {name: value for name, value in self.period},
            "max_processors": self.max_processors,
            "points": self.points,
            "digest": self.digest,
        }


def _failed(
    program: str,
    failure: str,
    reason: str,
    params: Tuple[str, ...],
    anchor: Tuple[Tuple[str, int], ...],
    degree: Tuple[Tuple[str, int], ...],
    max_processors: int,
    points: int,
    digest: str,
) -> FormCertificate:
    return FormCertificate(
        program=program,
        verified=False,
        failure=failure,
        reason=reason,
        params=params,
        anchor=anchor,
        degree=degree,
        period=(),
        max_processors=max_processors,
        points=points,
        digest=digest,
    )


def certify_engine(
    engine: "SymbolicEngine",
    *,
    max_processors: int = CERT_MAX_PROCS,
    point_budget: int = CERT_POINT_BUDGET,
) -> FormCertificate:
    """Certify ``engine``'s forms against its own closed-form reference.

    The reference (``engine.base``) is the tier-1
    :class:`~repro.numa.counting.ClosedFormEngine` — an independent
    derivation that never touches :mod:`~repro.linalg.sympoly` — so
    agreement really is a cross-check, not a tautology.
    """
    node = engine.node
    program_name = node.program.name
    anchor_env = node.program.bound_params(None)
    params = tuple(sorted(node.program.params))
    anchor = tuple((name, int(anchor_env[name])) for name in params)

    degrees: Dict[str, int] = {}
    try:
        for name in params:
            degrees[name] = max(
                (_degree(form, name) for form in engine.forms.values()),
                default=0,
            )
    except SymbolicUnsupported as error:
        return _failed(
            program_name, "structure", str(error), params, anchor, (),
            max_processors, 0, "",
        )
    degree = tuple(sorted(degrees.items()))

    digest = hashlib.sha256()
    for field in sorted(engine.forms):
        digest.update(field.encode("ascii"))
        digest.update(repr(engine.forms[field]).encode("utf-8"))
    digest.update(repr(anchor).encode("ascii"))
    digest.update(f"procs<={max_processors}".encode("ascii"))

    # One grid per anchor processor count: the periods depend on P.
    grids: List[Tuple[int, Dict[str, int]]] = []
    total_cells = 0
    worst_period: Dict[str, int] = {name: 1 for name in params}
    for processors in range(1, max_processors + 1):
        periods: Dict[str, int] = {}
        for name in params:
            candidates: List[int] = []
            for form in engine.forms.values():
                value = _period(form, name, engine.procs_name, processors)
                if value is None:
                    return _failed(
                        program_name, "structure",
                        f"no finite congruence period in {name!r} at "
                        f"P={processors} (a modulus moves with the "
                        "parameter)",
                        params, anchor, degree, max_processors, 0,
                        digest.hexdigest(),
                    )
                candidates.append(value)
            period = 1
            for value in candidates:
                period = period * value // gcd(period, value)
            periods[name] = period
            worst_period[name] = max(worst_period[name], period)
        cells = processors
        for name in params:
            cells *= periods[name] * (degrees[name] + 1)
        total_cells += cells
        grids.append((processors, periods))
    if total_cells > point_budget:
        return _failed(
            program_name, "budget",
            f"certificate grid needs {total_cells} cells "
            f"(budget {point_budget})",
            params, anchor, degree, max_processors, 0, digest.hexdigest(),
        )

    period = tuple(sorted(worst_period.items()))
    points = 0
    for processors, periods in grids:
        axes: List[Tuple[str, range]] = []
        for name in params:
            base = int(anchor_env[name])
            width = periods[name] * (degrees[name] + 1)
            axes.append((name, range(base, base + width)))
        for env in _product_envs(anchor_env, axes):
            for proc in range(processors):
                points += 1
                try:
                    symbolic = engine.account(env, processors, proc)
                except SymbolicUnsupported as error:
                    return FormCertificate(
                        program=program_name, verified=False,
                        failure="non-integral",
                        reason=f"form evaluation failed at "
                        f"{_point_text(env, params, processors, proc)}: "
                        f"{error}",
                        params=params, anchor=anchor, degree=degree,
                        period=period, max_processors=max_processors,
                        points=points, digest=digest.hexdigest(),
                    )
                reference = engine.base.account(env, processors, proc)
                if symbolic != reference:
                    return FormCertificate(
                        program=program_name, verified=False,
                        failure="mismatch",
                        reason=f"form disagrees with the closed-form "
                        f"engine at "
                        f"{_point_text(env, params, processors, proc)}: "
                        f"{symbolic} vs {reference}",
                        params=params, anchor=anchor, degree=degree,
                        period=period, max_processors=max_processors,
                        points=points, digest=digest.hexdigest(),
                    )
    return FormCertificate(
        program=program_name, verified=True, failure="", reason="",
        params=params, anchor=anchor, degree=degree, period=period,
        max_processors=max_processors, points=points,
        digest=digest.hexdigest(),
    )


def _point_text(
    env: Dict[str, int], params: Tuple[str, ...], processors: int, proc: int
) -> str:
    bindings = ", ".join(f"{name}={env[name]}" for name in params)
    prefix = f"({bindings}, " if bindings else "("
    return f"{prefix}P={processors}, proc={proc})"


def _product_envs(
    anchor_env: Dict[str, int], axes: List[Tuple[str, range]]
) -> List[Dict[str, int]]:
    """Tensor-product parameter grid, anchored at the default bindings."""
    envs: List[Dict[str, int]] = [dict(anchor_env)]
    for name, values in axes:
        expanded: List[Dict[str, int]] = []
        for env in envs:
            for value in values:
                child = dict(env)
                child[name] = value
                expanded.append(child)
        envs = expanded
    return envs


def certify_node(node: "NodeProgram") -> Optional[FormCertificate]:
    """The (memoized) certificate for ``node``'s symbolic forms.

    ``None`` when the nest has no symbolic tier at all — that is an
    engine-coverage fact, not a verification failure.  Both the forms
    and the certificate live in the process-wide simulation cache keyed
    by the node fingerprint, so a sweep (or a fuzz campaign revisiting a
    shrunken program) certifies each distinct node program once.
    """
    from repro.numa.simulator import _cached_form
    from repro.numa.symbolic import FORM_SCHEMA
    from repro.runtime.cache import node_fingerprint, shared_cache

    status = _cached_form(node)
    if status[0] != "ok":
        return None
    engine = status[1]
    # FORM_SCHEMA in the key: a certificate proves one derivation
    # schema's forms; it must not vouch for a newer one from a shared
    # store.
    key = node_fingerprint(node) + f"|symcert:{FORM_SCHEMA}"

    def factory() -> FormCertificate:
        return certify_engine(engine)

    cert = shared_cache().form(key, factory)
    assert isinstance(cert, FormCertificate)
    return cert


# ----------------------------------------------------------------------
# the pass
# ----------------------------------------------------------------------

class FormsPass:
    """Verify and certify the tier-0 symbolic forms (``FORM001``-``FORM007``)."""

    name = "forms"

    def run(self, context: "AnalysisContext") -> List[Diagnostic]:
        node = context.node
        if node is None:
            return []
        from repro.numa.simulator import _cached_form

        diagnostics: List[Diagnostic] = []
        program_name = node.program.name
        status = _cached_form(node)
        if status[0] != "ok":
            diagnostics.append(
                Diagnostic(
                    "FORM006",
                    Severity.INFO,
                    f"symbolic tier unavailable for this nest: {status[1]}",
                    Span(program=program_name),
                )
            )
            return diagnostics
        engine = status[1]
        self._check_symbols(engine, program_name, diagnostics)
        self._check_atoms(engine, program_name, diagnostics)
        self._check_cost(engine, program_name, diagnostics)
        self._check_certificate(node, program_name, diagnostics)
        return diagnostics

    # ------------------------------------------------------------------
    def _check_symbols(
        self,
        engine: "SymbolicEngine",
        program_name: str,
        diagnostics: List[Diagnostic],
    ) -> None:
        allowed = frozenset(engine.node.program.params) | frozenset(
            (engine.procs_name, engine.proc_name)
        )
        for field in sorted(engine.forms):
            extra = engine.forms[field].free_symbols() - allowed
            if extra:
                diagnostics.append(
                    Diagnostic(
                        "FORM004",
                        Severity.ERROR,
                        f"form for {field!r} mentions "
                        f"{', '.join(sorted(extra))} outside the program "
                        "parameters and (P, proc)",
                        Span(program=program_name, reference=f"form:{field}"),
                    )
                )

    # ------------------------------------------------------------------
    def _check_atoms(
        self,
        engine: "SymbolicEngine",
        program_name: str,
        diagnostics: List[Diagnostic],
    ) -> None:
        from repro.linalg.sympoly import _deep_atoms

        seen: Set[object] = set()
        for field in sorted(engine.forms):
            for atom in _deep_atoms(engine.forms[field], []):
                if not isinstance(atom, (Mod, FloorDiv)) or atom in seen:
                    continue
                seen.add(atom)
                constructor = make_mod if isinstance(atom, Mod) else make_floordiv
                try:
                    rebuilt = constructor(atom.arg, atom.modulus)
                except SymbolicUnsupported as error:
                    diagnostics.append(
                        Diagnostic(
                            "FORM001",
                            Severity.ERROR,
                            f"ill-formed atom {atom!r} in the {field!r} "
                            f"form: {error}",
                            Span(
                                program=program_name,
                                reference=f"form:{field}",
                            ),
                        )
                    )
                    continue
                if rebuilt != SymExpr._atom(atom):
                    diagnostics.append(
                        Diagnostic(
                            "FORM001",
                            Severity.ERROR,
                            f"unsimplified atom {atom!r} in the {field!r} "
                            f"form: the exact-identity rewrites reduce it "
                            f"to {rebuilt!r}",
                            Span(
                                program=program_name,
                                reference=f"form:{field}",
                            ),
                        )
                    )

    # ------------------------------------------------------------------
    def _check_cost(
        self,
        engine: "SymbolicEngine",
        program_name: str,
        diagnostics: List[Diagnostic],
    ) -> None:
        from repro.numa.simulator import SYMBOLIC_COST_CEILING

        env = engine.node.program.bound_params(None)
        cost = engine.estimate_cost(dict(env), CERT_MAX_PROCS)
        if cost > SYMBOLIC_COST_CEILING:
            diagnostics.append(
                Diagnostic(
                    "FORM003",
                    Severity.WARNING,
                    f"residual BoundedSum loops put form evaluation at "
                    f"~{cost} flat ops under the default parameters "
                    f"(auto ceiling {SYMBOLIC_COST_CEILING}); the auto "
                    "engine will demote this nest to the closed-form tier",
                    Span(program=program_name, reference="forms"),
                )
            )

    # ------------------------------------------------------------------
    def _check_certificate(
        self,
        node: "NodeProgram",
        program_name: str,
        diagnostics: List[Diagnostic],
    ) -> None:
        cert = certify_node(node)
        if cert is None or cert.verified:
            return
        span = Span(program=program_name, reference="certificate")
        if cert.failure == "mismatch":
            diagnostics.append(
                Diagnostic("FORM005", Severity.ERROR, cert.reason, span)
            )
        elif cert.failure == "non-integral":
            diagnostics.append(
                Diagnostic("FORM002", Severity.ERROR, cert.reason, span)
            )
        else:  # budget / structure: unverified, honestly reported
            diagnostics.append(
                Diagnostic(
                    "FORM007",
                    Severity.WARNING,
                    f"form certificate not verified ({cert.failure}): "
                    f"{cert.reason}",
                    span,
                )
            )
