"""Legality verifier (codes ``LEG001``-``LEG004``).

Independently re-proves what :func:`repro.core.access_normalize` claims:

* ``LEG001`` — the transformation matrix ``T`` is integral, invertible,
  and its stored inverse really is ``T^{-1}``;
* ``LEG002`` — every transformed dependence distance ``T @ d`` is
  lexicographically positive (Section 6 of the paper);
* ``LEG003`` — the transformed loops' strides and alignment expressions
  agree with a *recomputed* column Hermite normal form of ``T`` (the
  image-lattice argument of Section 3), rather than trusting the ones
  the code generator derived;
* ``LEG004`` — direction-vector (non-uniform) dependences are provably
  preserved under ``T`` by interval arithmetic; a warning, because the
  check is conservative.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity, Span
from repro.core.directions import row_direction_interval
from repro.dependence.distance import is_lex_positive
from repro.ir.affine import AffineExpr
from repro.linalg.fraction_matrix import Matrix
from repro.linalg.lattice import IntegerLattice

if TYPE_CHECKING:
    from repro.analysis.manager import AnalysisContext
    from repro.core.normalize import NormalizationResult


class LegalityPass:
    """Recheck the legality claims of a normalization result."""

    name = "legality"

    def run(self, context: "AnalysisContext") -> List[Diagnostic]:
        result = context.result
        if result is None:
            return []
        diagnostics: List[Diagnostic] = []
        program_name = result.transformed.name
        matrix = result.matrix
        span = Span(program=program_name)

        invertible = self._check_matrix(matrix, result, span, diagnostics)
        self._check_distances(matrix, result, program_name, diagnostics)
        self._check_directions(matrix, result, span, diagnostics)
        if invertible:
            self._check_lattice(matrix, result, program_name, diagnostics)
        return diagnostics

    # ------------------------------------------------------------------
    def _check_matrix(
        self,
        matrix: Matrix,
        result: "NormalizationResult",
        span: Span,
        diagnostics: List[Diagnostic],
    ) -> bool:
        if not matrix.is_integer():
            diagnostics.append(
                Diagnostic(
                    "LEG001",
                    Severity.ERROR,
                    f"transformation matrix {matrix!r} has non-integer entries",
                    span,
                )
            )
            return False
        if matrix.det() == 0:
            diagnostics.append(
                Diagnostic(
                    "LEG001",
                    Severity.ERROR,
                    f"transformation matrix {matrix!r} is singular",
                    span,
                )
            )
            return False
        if matrix @ result.transformation.inverse != Matrix.identity(matrix.nrows):
            diagnostics.append(
                Diagnostic(
                    "LEG001",
                    Severity.ERROR,
                    "stored inverse is not the inverse of the transformation matrix",
                    span,
                )
            )
            return False
        return True

    # ------------------------------------------------------------------
    def _check_distances(
        self,
        matrix: Matrix,
        result: "NormalizationResult",
        program_name: str,
        diagnostics: List[Diagnostic],
    ) -> None:
        for dependence in result.dependences:
            if dependence.distance is None:
                continue
            image = matrix.apply(list(dependence.distance))
            if not is_lex_positive(image):
                rendered = tuple(
                    int(v) if v.denominator == 1 else v for v in image
                )
                diagnostics.append(
                    Diagnostic(
                        "LEG002",
                        Severity.ERROR,
                        f"{dependence.kind.value} dependence on "
                        f"{dependence.array!r} with distance "
                        f"{tuple(dependence.distance)} maps to {rendered}, "
                        "which is not lexicographically positive",
                        Span(program=program_name, reference=dependence.array),
                    )
                )

    # ------------------------------------------------------------------
    def _check_directions(
        self,
        matrix: Matrix,
        result: "NormalizationResult",
        span: Span,
        diagnostics: List[Diagnostic],
    ) -> None:
        directions = result.direction_dependences
        if not directions or matrix == Matrix.identity(matrix.nrows):
            return
        for direction in directions:
            if all(cls == "=" for cls in direction):
                continue
            if not self._direction_preserved(matrix, direction):
                diagnostics.append(
                    Diagnostic(
                        "LEG004",
                        Severity.WARNING,
                        f"direction-vector dependence {tuple(direction)} is "
                        "not provably preserved by the transformation "
                        "(conservative interval check)",
                        span,
                    )
                )

    @staticmethod
    def _direction_preserved(matrix: Matrix, direction: Sequence[str]) -> bool:
        for i in range(matrix.nrows):
            interval = row_direction_interval(matrix.row_at(i), tuple(direction))
            if interval.strictly_positive:
                return True
            if not interval.non_negative:
                return False
        return False

    # ------------------------------------------------------------------
    def _check_lattice(
        self,
        matrix: Matrix,
        result: "NormalizationResult",
        program_name: str,
        diagnostics: List[Diagnostic],
    ) -> None:
        """Recompute the column HNF of ``T`` and compare loop strides and
        alignments against what the code generator emitted."""
        new_names = tuple(result.transformation.new_indices)
        loops = result.transformed.nest.loops
        lattice = IntegerLattice(matrix)
        hermite = lattice.hermite

        # Alignment expressions, re-derived from the HNF: level k admits
        # values congruent to sum_{j<k} H[k,j]*z_j modulo H[k,k], with
        # z_j = (u_j - offset_j) / H[j,j] affine in the outer indices.
        z_exprs: List[AffineExpr] = []
        for k in range(lattice.dimension):
            offset = AffineExpr.constant(0)
            for j in range(k):
                coefficient = hermite[k, j]
                if coefficient:
                    offset = offset + z_exprs[j] * coefficient
            stride = lattice.stride(k)
            if k < len(loops):
                loop = loops[k]
                if loop.step != stride:
                    diagnostics.append(
                        Diagnostic(
                            "LEG003",
                            Severity.ERROR,
                            f"loop {loop.index!r} steps by {loop.step} but the "
                            f"image lattice requires stride {stride}",
                            Span(program=program_name, loop=loop.index),
                        )
                    )
                expected: Optional[AffineExpr] = offset if stride != 1 else None
                if not _alignments_equivalent(loop.align, expected, stride):
                    diagnostics.append(
                        Diagnostic(
                            "LEG003",
                            Severity.ERROR,
                            f"loop {loop.index!r} alignment "
                            f"{_render_alignment(loop.align)} disagrees with "
                            f"the image-lattice offset "
                            f"{_render_alignment(expected)} (mod {stride})",
                            Span(program=program_name, loop=loop.index),
                        )
                    )
            z_exprs.append((AffineExpr.var(new_names[k]) - offset) / stride)


def _render_alignment(align: Optional[AffineExpr]) -> str:
    return str(align) if align is not None else "0"


def _alignments_equivalent(
    actual: Optional[AffineExpr], expected: Optional[AffineExpr], stride: int
) -> bool:
    """Alignments are interchangeable when they differ by a multiple of the
    stride in every coefficient (congruences mod ``stride`` coincide)."""
    if stride == 1:
        return True
    left = actual if actual is not None else AffineExpr.constant(0)
    right = expected if expected is not None else AffineExpr.constant(0)
    difference = left - right
    values = list(difference.coeffs.values()) + [difference.const]
    for value in values:
        if value.denominator != 1:
            return False
        if int(value) % stride != 0:
            return False
    return True
