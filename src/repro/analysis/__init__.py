"""Static analysis: legality, bounds, race, lint, form and kernel passes.

The package independently *rechecks* what the compilation pipeline
claims — the legality verifier re-proves the transformation legal, the
bounds checker proves subscripts within extents via Fourier-Motzkin, the
race checker inspects the emitted SPMD node program, and the lint pass
surfaces surprising-but-legal outcomes.  Two opt-in passes extend the
recheck to *derived artifacts*: the symbolic-form verifier certifies the
tier-0 quasi-polynomial forms against the closed-form engine on a
finite interpolation grid, and the kernel sanitizer reviews the Python
text the accounting codegen emits.  See ``docs/analysis.md``.
"""

from repro.analysis.bounds import BoundsPass
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    Span,
    collect_suppressions,
    normalize_suppressions,
)
from repro.analysis.forms import FormCertificate, FormsPass, certify_node
from repro.analysis.kernels import KernelPass, sanitize_generated_source
from repro.analysis.legality import LegalityPass
from repro.analysis.lint import LintPass
from repro.analysis.manager import (
    AnalysisContext,
    AnalysisPass,
    analyze_artifacts,
    analyze_program,
    available_passes,
    build_context,
    default_passes,
    resolve_passes,
    run_passes,
)
from repro.analysis.races import RacePass

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisReport",
    "BoundsPass",
    "CODES",
    "Diagnostic",
    "FormCertificate",
    "FormsPass",
    "KernelPass",
    "LegalityPass",
    "LintPass",
    "RacePass",
    "Severity",
    "Span",
    "analyze_artifacts",
    "analyze_program",
    "available_passes",
    "build_context",
    "certify_node",
    "collect_suppressions",
    "default_passes",
    "normalize_suppressions",
    "resolve_passes",
    "run_passes",
    "sanitize_generated_source",
]
