"""Static analysis: legality, bounds, race, and lint passes.

The package independently *rechecks* what the compilation pipeline
claims — the legality verifier re-proves the transformation legal, the
bounds checker proves subscripts within extents via Fourier-Motzkin, the
race checker inspects the emitted SPMD node program, and the lint pass
surfaces surprising-but-legal outcomes.  See ``docs/analysis.md``.
"""

from repro.analysis.bounds import BoundsPass
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    Span,
    collect_suppressions,
    normalize_suppressions,
)
from repro.analysis.legality import LegalityPass
from repro.analysis.lint import LintPass
from repro.analysis.manager import (
    AnalysisContext,
    AnalysisPass,
    analyze_artifacts,
    analyze_program,
    build_context,
    default_passes,
    run_passes,
)
from repro.analysis.races import RacePass

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisReport",
    "BoundsPass",
    "CODES",
    "Diagnostic",
    "LegalityPass",
    "LintPass",
    "RacePass",
    "Severity",
    "Span",
    "analyze_artifacts",
    "analyze_program",
    "build_context",
    "collect_suppressions",
    "default_passes",
    "normalize_suppressions",
    "run_passes",
]
