"""``repro analyze`` — the static-analysis CLI subcommand.

Accepts any mix of DSL source files (``*.an``) and fuzz-corpus entries
(``*.json``, either a bare :class:`repro.fuzz.spec.ProgramSpec` dict or
the corpus wrapper with a ``"spec"`` key).  For each input it runs the
compile pipeline and every analysis pass, prints a per-file report (text
or ``--json``), and exits non-zero when any unsuppressed diagnostic
reaches the ``--fail-on`` threshold.

Suppressions:

* DSL files — ``# analyze: ignore[CODE, ...]`` comments anywhere in the
  source (the DSL parser strips comments, so these are analysis-only);
* corpus entries — an ``"analyze": {"ignore": [...]}`` object next to
  ``"spec"``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import (
    AnalysisReport,
    Severity,
    collect_suppressions,
    normalize_suppressions,
)
from repro.analysis.manager import (
    analyze_program,
    available_passes,
    resolve_passes,
)
from repro.errors import ReproError
from repro.ir.program import Program
from repro.lang import parse_program


def load_analysis_input(name: str, text: str) -> Tuple[Program, FrozenSet[str]]:
    """Parse one input (by name suffix) into ``(program, suppressions)``.

    ``name`` selects the format: ``*.json`` is a fuzz-corpus entry, anything
    else is DSL source.  Shared by the CLI (which reads files) and the
    compilation service (which receives the text over the wire).
    """
    if name.endswith(".json"):
        from repro.fuzz.spec import ProgramSpec

        data: Any = json.loads(text)
        spec_data = data.get("spec", data) if isinstance(data, dict) else data
        program = ProgramSpec.from_dict(spec_data).build(check_bounds=False)
        ignore: Sequence[str] = ()
        if isinstance(data, dict):
            ignore = data.get("analyze", {}).get("ignore", ())
        return program, normalize_suppressions(ignore)
    program = parse_program(text, name=name)
    return program, collect_suppressions(text)


def _load_input(path: str) -> Tuple[Program, FrozenSet[str]]:
    """Parse one input file into ``(program, suppressions)``."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return load_analysis_input(path, text)


def analyze_texts(
    inputs: Sequence[Tuple[str, str]],
    *,
    fail_on: str = "error",
    priority: Optional[Sequence[str]] = None,
    assume: Sequence[str] = (),
    schedule: str = "wrapped",
    assume_sync: bool = False,
    as_json: bool = False,
    passes: Optional[Sequence[str]] = None,
) -> Tuple[str, str, int]:
    """Analyze ``(name, text)`` inputs and render the CLI report.

    ``passes`` selects analysis passes by registry name (``None`` runs
    the default pipeline).  Returns ``(stdout, stderr, exit_code)``
    exactly as ``repro analyze`` would print them — the compilation
    service reuses this so its ``analyze`` endpoint is byte-identical to
    the direct CLI path.
    """
    threshold = Severity.from_label(fail_on)
    selected = resolve_passes(passes) if passes is not None else None
    reports: List[AnalysisReport] = []
    for name, text in inputs:
        program, suppressions = load_analysis_input(name, text)
        report = analyze_program(
            program,
            priority=list(priority) if priority else None,
            assumptions=(
                (tuple(program.assumptions) + tuple(assume)) or None
            ),
            schedule=schedule,
            sync=assume_sync,
            passes=selected,
            suppressions=suppressions,
        )
        reports.append(report)

    failed = sum(1 for report in reports if report.at_or_above(threshold))
    out_lines: List[str] = []
    err_lines: List[str] = []
    if as_json:
        payload = {
            "tool": "repro-analyze",
            "fail_on": threshold.label,
            "inputs": len(reports),
            "failed": failed,
            "reports": [report.to_dict() for report in reports],
        }
        out_lines.append(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            out_lines.append(report.render_text())
        noun = "input" if len(reports) == 1 else "inputs"
        err_lines.append(
            f"analyzed {len(reports)} {noun}: "
            f"{len(reports) - failed} clean at {threshold.label}+, "
            f"{failed} flagged"
        )
    return "\n".join(out_lines), "\n".join(err_lines), 1 if failed else 0


def render_pass_list() -> str:
    """The ``--list-passes`` table (shared with ``repro submit analyze``)."""
    rows = available_passes()
    width = max(len(name) for name, _ in rows)
    return "\n".join(
        f"{name.ljust(width)}  {description}" for name, description in rows
    )


def cmd_analyze(args: argparse.Namespace) -> int:
    if args.list_passes:
        print(render_pass_list())
        return 0
    if not args.files:
        raise ReproError("no input files (or use --list-passes)")
    inputs: List[Tuple[str, str]] = []
    for path in args.files:
        with open(path, "r", encoding="utf-8") as handle:
            inputs.append((path, handle.read()))
    stdout, stderr, code = analyze_texts(
        inputs,
        fail_on=args.fail_on,
        priority=args.priority.split(",") if args.priority else None,
        assume=tuple(args.assume),
        schedule=args.schedule,
        assume_sync=args.assume_sync,
        as_json=args.json,
        passes=args.passes.split(",") if args.passes else None,
    )
    if stdout:
        print(stdout)
    if stderr:
        print(stderr, file=sys.stderr)
    return code


def add_analyze_parser(
    sub: "argparse._SubParsersAction[argparse.ArgumentParser]",
    parents: Optional[Sequence[argparse.ArgumentParser]] = None,
) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "analyze",
        parents=list(parents or ()),
        help="statically check legality, bounds, races, and lint findings",
    )
    add_analyze_options(parser)
    parser.set_defaults(func=cmd_analyze)
    return parser


def add_analyze_options(parser: argparse.ArgumentParser) -> None:
    """The ``analyze`` arguments, shared with ``repro submit analyze``."""
    parser.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help="DSL source (*.an) or fuzz-corpus entry (*.json)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a machine-readable report"
    )
    parser.add_argument(
        "--passes",
        metavar="NAME[,NAME...]",
        help="comma-separated analysis passes to run (default: "
        "legality,bounds,races,lint); see --list-passes",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="list the available analysis passes and exit",
    )
    parser.add_argument(
        "--fail-on",
        choices=["info", "warning", "error"],
        default="error",
        help="exit non-zero when an unsuppressed diagnostic reaches this "
        "severity (default: error)",
    )
    parser.add_argument(
        "--priority",
        help="comma-separated subscript expressions pinning access-matrix "
        "row order (as for 'repro compile')",
    )
    parser.add_argument(
        "--assume",
        action="append",
        default=[],
        metavar="FACT",
        help="extra parameter fact like 'N >= 2*b' (repeatable)",
    )
    parser.add_argument(
        "--schedule", choices=["wrapped", "blocked"], default="wrapped"
    )
    parser.add_argument(
        "--assume-sync",
        action="store_true",
        help="analyze as if one synchronization event per carried "
        "dependence is inserted (the fuzz oracle's execution model); "
        "carried dependences then report as RACE004 info instead of "
        "race errors",
    )
