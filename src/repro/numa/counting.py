"""Tier 1 of the accounting engine: whole-nest closed-form counting.

The interpreter walk (:class:`~repro.numa.simulator._ProcWalker`) visits
every iteration; its analytic fast path collapses only the innermost loop.
This module collapses *entire per-processor nests* into exact
:class:`~repro.numa.simulator.AccessCounts` by assigning each loop level a
strategy, chosen innermost-out at build time:

``inner``
    The innermost level.  Iterations, statements and per-reference
    local/remote splits over the loop's arithmetic progression reduce to
    congruence / interval counting (:mod:`repro.linalg.progression`) —
    O(refs) regardless of the trip count.

``const``
    No bound, subscript or block-read probe of any deeper level depends on
    this index: the inner accounting is computed once and multiplied by
    the trip count — O(1) per level.

``periodic``
    Deeper levels depend on this index only through wrapped (cyclic)
    ownership tests, whose outcome is periodic in the index value modulo
    the processor count: the progression splits into at most P residue
    classes (:func:`~repro.linalg.progression.residue_classes`), the inner
    accounting is evaluated once per class and scaled by the class size —
    O(P) instead of O(trips).

``segmented``
    The second-innermost level when every body reference is
    distribution-free and the innermost loop is a plain unit-step loop:
    the innermost trip count is a piecewise-affine function of this index
    (max-of-lowers / min-of-uppers), summed exactly per breakpoint segment
    as an arithmetic series — O(bounds^2) segments, independent of trips.

``enumerate``
    The general fallback: iterate this level's values and recurse (still
    benefiting from closed forms below).

The engine is *bit-identical* to the interpreter walk on every counter for
programs inside its domain and raises :class:`ClosedFormUnsupported` at
build time otherwise (guarded bodies, block-cyclic or multi-dimensional
distributions, rational bounds, block caching), letting the simulator fall
back to tier 2 (the compiled kernel) or tier 3 (the walk).  Like the
interpreter's analytic path, ownership is computed from subscript values
directly, so out-of-range accesses that would make the walk's
``Distribution.owner`` raise are outside the shared domain (the static
bounds pass guards it).
"""

from __future__ import annotations

from itertools import product as _product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.locality import RefClass
from repro.codegen.spmd import NodeProgram
from repro.ir.scalar import ArrayRef
from repro.ir.stmt import Assign, BlockRead
from repro.linalg.progression import (
    Progression,
    affine_segment_starts,
    congruence_period,
    count_congruent,
    count_in_interval,
    residue_classes,
    sum_affine_range,
)
from repro.numa.simulator import (
    AccessCounts,
    _compile_affine,
    _CompiledLoop,
    _eval_floor,
    _var,
)


class ClosedFormUnsupported(Exception):
    """The nest falls outside the closed-form engine's domain."""


def owned_elements(distribution, shape, processors: int, proc: int) -> int:
    """How many elements of an array one processor owns.

    Shared by the closed-form engine and the interpreter walk's gather
    accounting, so both tiers charge whole-array block reads identically.
    """
    kind = type(distribution).__name__
    dims = distribution.distribution_dims()
    if not dims:
        total = 1
        for extent in shape:
            total *= extent
        return total
    if len(dims) == 1 and kind in ("Wrapped", "Blocked"):
        dim = dims[0]
        extent = shape[dim]
        if kind == "Wrapped":
            mine = count_congruent(1, 0, 0, 1, extent, processors, proc)
        else:
            block = -(-extent // processors)
            mine = max(0, min((proc + 1) * block, extent) - proc * block)
        rest = 1
        for d, other in enumerate(shape):
            if d != dim:
                rest *= other
        return mine * rest
    # Generic fallback: enumerate owners (small arrays only).
    count = 0
    for indices in _product(*(range(extent) for extent in shape)):
        if distribution.owner(indices, processors, shape) == proc:
            count += 1
    return count


def _require_integral(expr, what: str) -> None:
    if expr.const.denominator != 1 or any(
        coeff.denominator != 1 for coeff in expr.coeffs.values()
    ):
        raise ClosedFormUnsupported(f"rational {what} '{expr}'")


class _RefRecipe:
    """Accounting recipe for one body reference."""

    __slots__ = ("kind", "slope", "rest", "array", "dim", "coeffs")

    def __init__(self, kind, slope=0, rest=None, array=None, dim=0, coeffs=None):
        self.kind = kind  # "free" | "wrapped" | "blocked"
        self.slope = slope  # innermost-index coefficient of the subscript
        self.rest = rest  # compiled subscript minus the innermost term
        self.array = array
        self.dim = dim
        self.coeffs = coeffs or {}  # index name -> integer coefficient


class _ReadRecipe:
    """Accounting recipe for one prologue block read."""

    __slots__ = ("kind", "slope", "rest", "array", "dim", "coeffs", "pattern")

    def __init__(self, kind, array, pattern, slope=0, rest=None, dim=0, coeffs=None):
        self.kind = kind  # "none" | "gather" | "wrapped" | "blocked"
        self.array = array
        self.pattern = pattern
        self.slope = slope  # own-level-index coefficient of the probe
        self.rest = rest
        self.dim = dim
        self.coeffs = coeffs or {}


class ClosedFormEngine:
    """Accounts a whole per-processor nest in closed form (tier 1).

    Build once per node program (the analysis is structural); then call
    :meth:`account` once per processor.  Raises
    :class:`ClosedFormUnsupported` from the constructor when any feature
    of the nest needs enumeration or guard evaluation.
    """

    def __init__(self, node: NodeProgram):
        nest = node.nest
        if nest.depth == 0:
            raise ClosedFormUnsupported("empty loop nest")
        if node.schedule not in ("wrapped", "blocked", "all"):
            raise ClosedFormUnsupported(f"unknown schedule {node.schedule!r}")
        self.node = node
        self.nest = nest
        program = node.program
        self.decls = {decl.name: decl for decl in program.arrays}
        self.element_bytes = {
            decl.name: decl.element_bytes for decl in program.arrays
        }
        self.distributions = program.distributions
        ref_classes: Dict[Tuple[ArrayRef, bool], RefClass] = {
            (info.ref, info.is_write): info.ref_class for info in node.plan.refs
        }
        indices = nest.indices

        self.compiled: List[_CompiledLoop] = []
        for loop in nest.loops:
            exprs = list(loop.lower) + list(loop.upper)
            if loop.align is not None:
                exprs.append(loop.align)
            for expr in exprs:
                _require_integral(expr, f"bound of loop {loop.index}")
            self.compiled.append(_CompiledLoop(loop))

        self.body_len = len(nest.body)
        self.refs: List[_RefRecipe] = []
        for statement in nest.body:
            if not isinstance(statement, Assign):
                raise ClosedFormUnsupported(
                    f"body statement {type(statement).__name__} needs "
                    "guard/read evaluation"
                )
            for ref, is_write in (
                [(statement.lhs, True)]
                + [(r, False) for r in statement.rhs.references()]
            ):
                self.refs.append(
                    self._ref_recipe(ref, is_write, ref_classes, indices)
                )

        self.reads: List[List[_ReadRecipe]] = []
        for level, loop in enumerate(nest.loops):
            recipes = []
            for statement in loop.prologue:
                if not isinstance(statement, BlockRead):
                    raise ClosedFormUnsupported(
                        f"prologue statement {type(statement).__name__} "
                        "is not a block read"
                    )
                recipes.append(self._read_recipe(statement, level, indices))
            self.reads.append(recipes)

        self.strategies = self._choose_strategies(indices)

    # ------------------------------------------------------------------
    # build-time analysis
    # ------------------------------------------------------------------
    def _ref_recipe(self, ref, is_write, ref_classes, indices) -> _RefRecipe:
        rc = ref_classes.get((ref, is_write), RefClass.CHECK)
        if rc in (RefClass.LOCAL, RefClass.COVERED):
            return _RefRecipe("free")
        distribution = self.distributions.get(ref.array)
        if distribution is None or not distribution.distribution_dims():
            return _RefRecipe("free")
        dims = distribution.distribution_dims()
        kind = type(distribution).__name__
        if len(dims) != 1 or kind not in ("Wrapped", "Blocked"):
            raise ClosedFormUnsupported(
                f"reference {ref} under '{distribution.describe()}' "
                "needs owner enumeration"
            )
        subscript = ref.subscripts[dims[0]]
        _require_integral(subscript, f"subscript of {ref.array!r}")
        inner = indices[-1]
        slope = int(subscript.coeff(inner))
        rest = _compile_affine(subscript - subscript.coeff(inner) * _var(inner))
        coeffs = {
            name: int(subscript.coeff(name))
            for name in indices
            if subscript.coeff(name) != 0
        }
        return _RefRecipe(
            "wrapped" if kind == "Wrapped" else "blocked",
            slope=slope, rest=rest, array=ref.array, dim=dims[0], coeffs=coeffs,
        )

    def _read_recipe(self, statement: BlockRead, level: int, indices) -> _ReadRecipe:
        array = statement.array
        if array not in self.decls:
            raise ClosedFormUnsupported(f"array {array!r} has no declared shape")
        distribution = self.distributions.get(array)
        if distribution is None or not distribution.distribution_dims():
            return _ReadRecipe("none", array, statement.pattern)
        dims = distribution.distribution_dims()
        if all(statement.pattern[d] is None for d in dims):
            return _ReadRecipe("gather", array, statement.pattern)
        kind = type(distribution).__name__
        if len(dims) != 1 or kind not in ("Wrapped", "Blocked"):
            raise ClosedFormUnsupported(
                f"block read of {array!r} under '{distribution.describe()}' "
                "needs owner enumeration"
            )
        probe = statement.pattern[dims[0]]
        _require_integral(probe, f"block-read probe of {array!r}")
        own = indices[level]
        for deeper in indices[level + 1:]:
            if probe.coeff(deeper) != 0:
                raise ClosedFormUnsupported(
                    f"block-read probe of {array!r} uses inner index {deeper!r}"
                )
        slope = int(probe.coeff(own))
        rest = _compile_affine(probe - probe.coeff(own) * _var(own))
        coeffs = {
            name: int(probe.coeff(name))
            for name in indices
            if probe.coeff(name) != 0
        }
        return _ReadRecipe(
            "wrapped" if kind == "Wrapped" else "blocked",
            array, statement.pattern,
            slope=slope, rest=rest, dim=dims[0], coeffs=coeffs,
        )

    def _choose_strategies(self, indices) -> List[Tuple]:
        depth = self.nest.depth
        loops = self.nest.loops
        strategies: List[Tuple] = []
        all_free = all(recipe.kind == "free" for recipe in self.refs)
        for level in range(depth):
            if level == depth - 1:
                strategies.append(("inner",))
                continue
            name = indices[level]
            bounds_dep = False
            for m in range(level + 1, depth):
                exprs = list(loops[m].lower) + list(loops[m].upper)
                if loops[m].align is not None:
                    exprs.append(loops[m].align)
                if any(expr.coeff(name) != 0 for expr in exprs):
                    bounds_dep = True
                    break
            wrapped_coeffs: List[int] = []
            blocked_dep = False
            for recipe in self.refs:
                coeff = recipe.coeffs.get(name, 0)
                if not coeff:
                    continue
                if recipe.kind == "wrapped":
                    wrapped_coeffs.append(coeff)
                elif recipe.kind == "blocked":
                    blocked_dep = True
            for m in range(level + 1, depth):
                for read in self.reads[m]:
                    coeff = read.coeffs.get(name, 0)
                    if not coeff:
                        continue
                    if read.kind == "wrapped":
                        wrapped_coeffs.append(coeff)
                    elif read.kind == "blocked":
                        blocked_dep = True
            if not bounds_dep and not wrapped_coeffs and not blocked_dep:
                strategies.append(("const",))
            elif not bounds_dep and not blocked_dep:
                strategies.append(("periodic", tuple(wrapped_coeffs)))
            elif (
                level == depth - 2
                and all_free
                and not self.nest.loops[depth - 1].prologue
                and loops[depth - 1].step == 1
                and loops[depth - 1].align is None
            ):
                strategies.append(("segmented",))
            else:
                strategies.append(("enumerate",))
        return strategies

    def describe_strategies(self) -> Tuple[str, ...]:
        """The per-level strategy names, outermost first (for tests/docs)."""
        return tuple(strategy[0] for strategy in self.strategies)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def account(self, env: Dict[str, int], processors: int, proc: int) -> AccessCounts:
        """Exact counts for one processor — never iterates the nest."""
        counts = AccessCounts()
        shapes = {name: decl.shape(env) for name, decl in self.decls.items()}
        self._level(0, env, processors, proc, shapes, counts)
        return counts

    def _progression(self, level, env, processors, proc) -> Progression:
        compiled = self.compiled[level]
        first = compiled.first(env)
        high = compiled.high(env)
        step = compiled.step
        if level > 0 or self.node.schedule == "all":
            return Progression.from_bounds(first, high, step)
        if first > high:
            return Progression(first, step, 0)
        if self.node.schedule == "wrapped":
            if step == 1:
                start = first + ((proc - first) % processors)
                return Progression.from_bounds(start, high, processors)
            return Progression.from_bounds(
                first + step * proc, high, step * processors
            )
        # blocked: contiguous position ranges
        trips = (high - first) // step + 1
        block = -(-trips // processors)
        start = proc * block
        end = min(trips, (proc + 1) * block) - 1
        if end < start:
            return Progression(first, step, 0)
        return Progression(first + step * start, step, end - start + 1)

    def _level(self, level, env, processors, proc, shapes, counts) -> None:
        progression = self._progression(level, env, processors, proc)
        if level == 0 and self.node.sync_per_outer_iteration:
            counts.syncs += self.node.sync_per_outer_iteration * progression.trips
        for read in self.reads[level]:
            self._charge_read(
                read, progression, env, processors, proc, shapes, counts
            )
        if progression.trips == 0:
            return
        strategy = self.strategies[level]
        kind = strategy[0]
        if kind == "inner":
            self._innermost(progression, env, processors, proc, shapes, counts)
            return
        index = self.nest.loops[level].index
        if kind == "const":
            inner = AccessCounts()
            env[index] = progression.first
            self._level(level + 1, env, processors, proc, shapes, inner)
            del env[index]
            _accumulate(counts, inner, progression.trips)
        elif kind == "periodic":
            period = congruence_period(
                processors, *(c * progression.step for c in strategy[1])
            )
            for value, size in residue_classes(progression, period):
                inner = AccessCounts()
                env[index] = value
                self._level(level + 1, env, processors, proc, shapes, inner)
                _accumulate(counts, inner, size)
            del env[index]
        elif kind == "segmented":
            self._segmented(level, progression, env, counts)
        else:  # enumerate
            value = progression.first
            for _ in range(progression.trips):
                env[index] = value
                self._level(level + 1, env, processors, proc, shapes, counts)
                value += progression.step
            del env[index]

    def _innermost(self, progression, env, processors, proc, shapes, counts) -> None:
        trips = progression.trips
        counts.iterations += trips
        counts.statements += trips * self.body_len
        first, step = progression.first, progression.step
        for recipe in self.refs:
            if recipe.kind == "free":
                counts.local += trips
                continue
            rest = _eval_floor(recipe.rest, env)
            if recipe.kind == "wrapped":
                local = count_congruent(
                    recipe.slope, rest, first, step, trips, processors, proc
                )
            else:
                extent = shapes[recipe.array][recipe.dim]
                block = -(-extent // processors)
                high = (proc + 1) * block - 1
                if self.nest.depth > 1:
                    # The walk's innermost summary clamps the owned interval
                    # to the array extent; its depth-1 enumeration path does
                    # not.  Equal for in-bounds programs — mirror both.
                    high = min(high, extent - 1)
                local = count_in_interval(
                    recipe.slope, rest, first, step, trips,
                    proc * block, high,
                )
            counts.local += local
            counts.remote += trips - local

    def _charge_read(
        self, read, progression, env, processors, proc, shapes, counts
    ) -> None:
        if read.kind == "none" or progression.trips == 0:
            return
        shape = shapes[read.array]
        if read.kind == "gather":
            total = 1
            for extent in shape:
                total *= extent
            distribution = self.distributions[read.array]
            remote = total - owned_elements(distribution, shape, processors, proc)
            if remote <= 0:
                return
            messages = min(processors - 1, remote)
            num_bytes = remote * self.element_bytes.get(read.array, 8)
            counts.block_transfers += messages * progression.trips
            counts.block_bytes += num_bytes * progression.trips
            return
        elements = 1
        for dim, entry in enumerate(read.pattern):
            if entry is None:
                elements *= shape[dim]
        num_bytes = elements * self.element_bytes.get(read.array, 8)
        rest = _eval_floor(read.rest, env)
        if read.kind == "wrapped":
            local = count_congruent(
                read.slope, rest, progression.first, progression.step,
                progression.trips, processors, proc,
            )
        else:
            extent = shape[read.dim]
            block = -(-extent // processors)
            local = count_in_interval(
                read.slope, rest, progression.first, progression.step,
                progression.trips, proc * block, (proc + 1) * block - 1,
            )
        fetches = progression.trips - local
        counts.block_transfers += fetches
        counts.block_bytes += fetches * num_bytes

    def _segmented(self, level, progression, env, counts) -> None:
        """Sum the innermost trip count over this level as affine segments."""
        inner = self.compiled[level + 1]
        index = self.nest.loops[level].index
        first, step = progression.first, progression.step

        def _as_position_affine(compiled_bound):
            pairs, _den, const = compiled_bound  # den == 1 by precondition
            slope_x = 0
            base = const
            for name, coeff in pairs:
                if name == index:
                    slope_x += coeff
                else:
                    base += coeff * env[name]
            return (slope_x * step, slope_x * first + base)

        lowers = [_as_position_affine(c) for c in inner.lowers]
        uppers = [_as_position_affine(c) for c in inner.uppers]
        differences = []
        for i in range(len(lowers)):
            for j in range(i + 1, len(lowers)):
                differences.append(
                    (lowers[i][0] - lowers[j][0], lowers[i][1] - lowers[j][1])
                )
        for i in range(len(uppers)):
            for j in range(i + 1, len(uppers)):
                differences.append(
                    (uppers[i][0] - uppers[j][0], uppers[i][1] - uppers[j][1])
                )
        for ls, li in lowers:
            for us, ui in uppers:
                differences.append((us - ls, ui - li + 1))
        starts = affine_segment_starts(differences, progression.trips)
        n_refs = len(self.refs)
        for k, start in enumerate(starts):
            end = (
                starts[k + 1] - 1 if k + 1 < len(starts)
                else progression.trips - 1
            )
            low = max(lowers, key=lambda f: f[0] * start + f[1])
            high = min(uppers, key=lambda f: f[0] * start + f[1])
            slope = high[0] - low[0]
            intercept = high[1] - low[1] + 1
            if slope * start + intercept <= 0:
                continue
            total = sum_affine_range(slope, intercept, start, end)
            counts.iterations += total
            counts.statements += total * self.body_len
            counts.local += total * n_refs


def _accumulate(counts: AccessCounts, inner: AccessCounts, factor: int) -> None:
    counts.local += inner.local * factor
    counts.remote += inner.remote * factor
    counts.block_transfers += inner.block_transfers * factor
    counts.block_bytes += inner.block_bytes * factor
    counts.guards += inner.guards * factor
    counts.statements += inner.statements * factor
    counts.iterations += inner.iterations * factor
    counts.syncs += inner.syncs * factor
