"""The NUMA machine simulator.

Runs a generated node program on ``P`` simulated processors and accounts
every memory event against a :class:`~repro.numa.machine.MachineConfig`:
local accesses, remote accesses (exact owners computed from the data
distributions), block transfers (startup + per-byte), ownership guards and
statement execution.  The paper's speedup figures are ratios of exactly
these quantities.

Two modes:

* ``account`` (default) — cost accounting only, never touches array data.
  The innermost loop is summarized analytically where possible (locality
  counts over an arithmetic progression reduce to solving a linear
  congruence), making whole-figure sweeps at paper scale (400x400 GEMM)
  tractable.
* ``execute`` — additionally performs the assignments on real arrays so the
  parallel execution can be checked against the sequential program.
  Processors are simulated one after another; this is faithful for node
  programs whose distributed outer loop carries no dependence (which is
  what access normalization establishes for the paper's workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.codegen.locality import RefClass
from repro.codegen.spmd import NodeProgram
from repro.distributions.base import Distribution
from repro.errors import SimulationError
from repro.ir.interp import evaluate_scalar
from repro.ir.loop import Loop
from repro.ir.scalar import ArrayRef
from repro.ir.stmt import Assign, BlockRead, IfThen, Statement
from repro.linalg.progression import count_congruent, count_in_interval
from repro.numa.machine import MachineConfig, butterfly_gp1000


@dataclass
class AccessCounts:
    """Raw event counts for one simulated processor."""

    local: int = 0
    remote: int = 0
    block_transfers: int = 0
    block_bytes: int = 0
    guards: int = 0
    statements: int = 0
    iterations: int = 0
    syncs: int = 0

    def merged(self, other: "AccessCounts") -> "AccessCounts":
        return AccessCounts(
            local=self.local + other.local,
            remote=self.remote + other.remote,
            block_transfers=self.block_transfers + other.block_transfers,
            block_bytes=self.block_bytes + other.block_bytes,
            guards=self.guards + other.guards,
            statements=self.statements + other.statements,
            iterations=self.iterations + other.iterations,
            syncs=self.syncs + other.syncs,
        )


def _time_us(counts: AccessCounts, machine: MachineConfig, multiplier: float) -> float:
    return (
        counts.statements * machine.compute_per_statement_us
        + counts.local * machine.local_access_us
        + counts.remote * machine.remote_access_us * multiplier
        + counts.block_transfers * machine.block_startup_us
        + counts.block_bytes * machine.block_per_byte_us * multiplier
        + counts.guards * machine.guard_cost_us
        + counts.syncs * machine.sync_cost_us
    )


@dataclass(frozen=True)
class ProcessorResult:
    """Counts and modeled time for one processor."""

    proc: int
    counts: AccessCounts
    time_us: float


@dataclass(frozen=True)
class SimulationResult:
    """The outcome of one simulated parallel execution."""

    node_name: str
    processors: int
    machine: MachineConfig
    per_proc: Tuple[ProcessorResult, ...]
    remote_multiplier: float = 1.0
    #: Which accounting engine produced the counts: ``closed-form``
    #: (tier 1), ``compiled`` (tier 2) or ``walk`` (tier 3).  All three
    #: are bit-identical on every count; the tier only affects speed.
    engine: str = "walk"

    @property
    def total_time_us(self) -> float:
        """Makespan: the slowest processor's time."""
        return max(result.time_us for result in self.per_proc)

    @property
    def totals(self) -> AccessCounts:
        """Event counts summed over all processors."""
        total = AccessCounts()
        for result in self.per_proc:
            total = total.merged(result.counts)
        return total

    def speedup(self, sequential_time_us: float) -> float:
        """Speedup relative to a sequential (1-processor) time."""
        return sequential_time_us / self.total_time_us

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the compilation service's wire format)."""
        totals = self.totals
        return {
            "node": self.node_name,
            "processors": self.processors,
            "machine": self.machine.name,
            "total_time_us": self.total_time_us,
            "remote_multiplier": self.remote_multiplier,
            "engine": self.engine,
            "totals": {
                "local": totals.local,
                "remote": totals.remote,
                "block_transfers": totals.block_transfers,
                "block_bytes": totals.block_bytes,
                "guards": totals.guards,
                "statements": totals.statements,
                "iterations": totals.iterations,
                "syncs": totals.syncs,
            },
            "per_proc": [
                {
                    "proc": result.proc,
                    "time_us": result.time_us,
                    "iterations": result.counts.iterations,
                    "local": result.counts.local,
                    "remote": result.counts.remote,
                    "block_transfers": result.counts.block_transfers,
                    "block_bytes": result.counts.block_bytes,
                    "syncs": result.counts.syncs,
                }
                for result in self.per_proc
            ],
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        totals = self.totals
        return (
            f"{self.node_name}: P={self.processors} time={self.total_time_us:.1f}us "
            f"local={totals.local} remote={totals.remote} "
            f"blocks={totals.block_transfers} guards={totals.guards}"
        )

    def table(self) -> str:
        """Per-processor breakdown as an aligned text table.

        Makes load imbalance visible: the makespan row is the processor
        with the largest time.
        """
        headers = (
            "proc", "iters", "local", "remote", "blocks", "kB", "syncs",
            "time (ms)",
        )
        rows = []
        for result in self.per_proc:
            c = result.counts
            rows.append(
                (
                    result.proc,
                    c.iterations,
                    c.local,
                    c.remote,
                    c.block_transfers,
                    f"{c.block_bytes / 1024:.1f}",
                    c.syncs,
                    f"{result.time_us / 1e3:.2f}",
                )
            )
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in rows))
            for i, h in enumerate(headers)
        ]
        lines = [
            "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(
                "  ".join(str(cell).rjust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)


def _compile_affine(expr) -> Tuple[Tuple[Tuple[str, int], ...], int, int]:
    """Compile an affine expression to integer form: ``(pairs, den, const)``.

    The value of the expression is ``(sum(c*env[v]) + const) / den`` — all
    integer arithmetic, which is an order of magnitude faster in the hot
    simulation loops than per-term ``Fraction`` math.
    """
    coeffs = expr.coeffs
    den = 1
    for value in list(coeffs.values()) + [expr.const]:
        den = den * value.denominator // gcd(den, value.denominator)
    pairs = tuple(
        (name, int(value * den)) for name, value in coeffs.items()
    )
    return pairs, den, int(expr.const * den)


def _eval_ceil(compiled, env) -> int:
    pairs, den, const = compiled
    total = const
    for name, coeff in pairs:
        total += coeff * env[name]
    if den == 1:
        return total
    return -((-total) // den)


def _eval_floor(compiled, env) -> int:
    pairs, den, const = compiled
    total = const
    for name, coeff in pairs:
        total += coeff * env[name]
    if den == 1:
        return total
    return total // den


def _eval_exact(compiled, env) -> Optional[int]:
    """Integer value, or None when the rational value is not integral."""
    pairs, den, const = compiled
    total = const
    for name, coeff in pairs:
        total += coeff * env[name]
    if den == 1:
        return total
    if total % den:
        return None
    return total // den


class _CompiledLoop:
    """Precompiled bound/alignment evaluators for one loop level."""

    __slots__ = ("loop", "lowers", "uppers", "align", "step")

    def __init__(self, loop: Loop):
        self.loop = loop
        self.lowers = tuple(_compile_affine(e) for e in loop.lower)
        self.uppers = tuple(_compile_affine(e) for e in loop.upper)
        self.align = _compile_affine(loop.align) if loop.align is not None else None
        self.step = loop.step

    def low(self, env) -> int:
        return max(_eval_ceil(c, env) for c in self.lowers)

    def high(self, env) -> int:
        return min(_eval_floor(c, env) for c in self.uppers)

    def first(self, env) -> int:
        low = self.low(env)
        if self.align is None:
            return low
        offset = _eval_exact(self.align, env)
        if offset is None:
            raise SimulationError("alignment expression is not integral")
        return low + ((offset - low) % self.step)

    def values(self, env) -> Iterator[int]:
        value = self.first(env)
        high = self.high(env)
        while value <= high:
            yield value
            value += self.step

    def trip_count(self, env) -> int:
        first = self.first(env)
        high = self.high(env)
        if first > high:
            return 0
        return (high - first) // self.step + 1


class _ProcWalker:
    """Simulates one processor's execution of a node program."""

    def __init__(
        self,
        node: NodeProgram,
        env: Dict[str, int],
        processors: int,
        proc: int,
        mode: str,
        arrays: Optional[Dict],
        block_cache: bool = False,
    ):
        self.node = node
        self.nest = node.nest
        self.env = env
        self.P = processors
        self.p = proc
        self.mode = mode
        self.arrays = arrays
        self.block_cache: Optional[set] = set() if block_cache else None
        self.counts = AccessCounts()
        program = node.program
        self.shapes = {
            decl.name: decl.shape(env) for decl in program.arrays
        }
        self.element_bytes = {
            decl.name: decl.element_bytes for decl in program.arrays
        }
        self.distributions: Mapping[str, Distribution] = program.distributions
        self.ref_classes: Dict[Tuple[ArrayRef, bool], RefClass] = {
            (info.ref, info.is_write): info.ref_class for info in node.plan.refs
        }
        self._body_plain = all(isinstance(s, Assign) for s in self.nest.body)
        self._innermost_prologue = (
            bool(self.nest.loops[-1].prologue) if self.nest.loops else False
        )
        self._compiled = [_CompiledLoop(loop) for loop in self.nest.loops]
        # Precompiled (ref, is_write) -> locality recipe for the innermost
        # loop summary: slope of the distribution-dimension subscript in the
        # innermost index plus the compiled remainder expression.
        self._inner_plan = self._compile_inner_plan()
        self._fast_body = [self._compile_statement(s) for s in self.nest.body]
        self._fast_prologue = [
            [self._compile_statement(s) for s in loop.prologue]
            for loop in self.nest.loops
        ]

    def _compile_inner_plan(self):
        if not self.nest.loops or not self._body_plain:
            return None
        index = self.nest.loops[-1].index
        plan = []
        for statement in self.nest.body:
            for ref, is_write in (
                [(statement.lhs, True)]
                + [(r, False) for r in statement.rhs.references()]
            ):
                rc = self.ref_classes.get((ref, is_write), RefClass.CHECK)
                if rc in (RefClass.LOCAL, RefClass.COVERED):
                    plan.append(("free", None, None, None))
                    continue
                distribution = self.distributions.get(ref.array)
                if distribution is None or not distribution.distribution_dims():
                    plan.append(("free", None, None, None))
                    continue
                dims = distribution.distribution_dims()
                kind = type(distribution).__name__
                if len(dims) != 1 or kind not in ("Wrapped", "Blocked"):
                    plan.append(("enum", None, None, None))
                    continue
                subscript = ref.subscripts[dims[0]]
                slope = subscript.coeff(index)
                if slope.denominator != 1:
                    plan.append(("enum", None, None, None))
                    continue
                rest = subscript - slope * _var(index)
                compiled = _compile_affine(rest)
                if kind == "Wrapped":
                    plan.append(("wrapped", int(slope), compiled, None))
                else:
                    extent = self.shapes[ref.array][dims[0]]
                    plan.append(("blocked", int(slope), compiled, extent))
        return plan

    # ------------------------------------------------------------------
    # compiled per-iteration execution
    # ------------------------------------------------------------------
    def _compile_charge(self, ref: ArrayRef, is_write: bool):
        """A closure charging one access of ``ref`` under the current env."""
        counts = self.counts
        rc = self.ref_classes.get((ref, is_write), RefClass.CHECK)
        if rc in (RefClass.LOCAL, RefClass.COVERED):
            def charge_local(env):
                counts.local += 1
            return charge_local
        distribution = self.distributions.get(ref.array)
        if distribution is None or not distribution.distribution_dims():
            def charge_repl(env):
                counts.local += 1
            return charge_repl
        dims = distribution.distribution_dims()
        kind = type(distribution).__name__
        if len(dims) == 1 and kind in ("Wrapped", "Blocked"):
            subscript = ref.subscripts[dims[0]]
            compiled = _compile_affine(subscript)
            where = f"subscript '{subscript}' of array {ref.array!r}"
            cap, proc = self.P, self.p
            if kind == "Wrapped":
                def charge_wrapped(env):
                    value = _eval_exact(compiled, env)
                    if value is None:
                        raise SimulationError(
                            f"non-integral {where} in wrapped ownership test"
                        )
                    if value % cap == proc:
                        counts.local += 1
                    else:
                        counts.remote += 1
                return charge_wrapped
            extent = self.shapes[ref.array][dims[0]]
            block = -(-extent // cap)
            low, high = proc * block, (proc + 1) * block - 1
            def charge_blocked(env):
                value = _eval_exact(compiled, env)
                if value is None:
                    raise SimulationError(
                        f"non-integral {where} in blocked ownership test"
                    )
                if low <= value <= high:
                    counts.local += 1
                else:
                    counts.remote += 1
            return charge_blocked

        def charge_generic(env):
            owner = self._owner(ref.array, ref.index_tuple(env))
            if owner is None or owner == self.p:
                counts.local += 1
            else:
                counts.remote += 1
        return charge_generic

    def _compile_statement(self, statement: Statement):
        """Compile a statement into a fast per-iteration closure."""
        counts = self.counts
        if isinstance(statement, Assign):
            charges = [self._compile_charge(statement.lhs, True)]
            charges.extend(
                self._compile_charge(ref, False)
                for ref in statement.rhs.references()
            )
            if self.mode == "execute":
                arrays = self.arrays
                rhs = statement.rhs
                lhs_subs = [_compile_affine(s) for s in statement.lhs.subscripts]
                target = arrays[statement.lhs.array]

                def run_assign_exec(env):
                    counts.statements += 1
                    for charge in charges:
                        charge(env)
                    index = tuple(_eval_exact(c, env) for c in lhs_subs)
                    target[index] = evaluate_scalar(rhs, env, arrays)
                return run_assign_exec

            def run_assign(env):
                counts.statements += 1
                for charge in charges:
                    charge(env)
            return run_assign
        if isinstance(statement, IfThen):
            conditions = [
                (
                    _compile_affine(cond.expr),
                    _compile_affine(cond.modulus),
                    _compile_affine(cond.target),
                    str(cond),
                )
                for cond in statement.conditions
            ]
            inner = self._compile_statement(statement.body)
            guard_count = len(conditions)
            disjunctive = statement.disjunctive

            def run_guarded(env):
                counts.guards += guard_count
                taken = disjunctive is not True
                for expr, modulus, target, text in conditions:
                    mod = _eval_exact(modulus, env)
                    lhs = _eval_exact(expr, env)
                    rhs = _eval_exact(target, env)
                    if mod is None or lhs is None or rhs is None:
                        raise SimulationError(
                            f"non-integral value in guard '{text}'"
                        )
                    hit = lhs % mod == rhs % mod
                    if disjunctive and hit:
                        taken = True
                        break
                    if not disjunctive and not hit:
                        taken = False
                        break
                if taken:
                    inner(env)
            return run_guarded
        if isinstance(statement, BlockRead):
            shape = self.shapes.get(statement.array)
            if shape is None:
                raise SimulationError(
                    f"array {statement.array!r} has no declared shape"
                )
            elements = 1
            for dim, entry in enumerate(statement.pattern):
                if entry is None:
                    elements *= shape[dim]
            num_bytes = elements * self.element_bytes.get(statement.array, 8)
            distribution = self.distributions.get(statement.array)
            if distribution is None or not distribution.distribution_dims():
                def run_read_local(env):
                    return
                return run_read_local
            dist_dims = set(distribution.distribution_dims())
            if all(statement.pattern[d] is None for d in dist_dims):
                # Whole-array gather: the distribution dimensions are
                # wildcards, so the slice spans every owner.  Locally owned
                # elements stay put; the rest arrive with one bulk message
                # per remote owner.
                return self._compile_gather(statement, distribution, shape)
            probe_template = [
                entry if entry is not None else None
                for entry in statement.pattern
            ]
            compiled_probe = [
                _compile_affine(entry) if entry is not None else None
                for entry in probe_template
            ]
            cap, proc = self.P, self.p
            cache = self.block_cache
            array_name = statement.array

            def run_read(env):
                probe = tuple(
                    _eval_exact(c, env) if c is not None else 0
                    for c in compiled_probe
                )
                owner = distribution.owner(probe, cap, shape)
                if owner is None or owner == proc:
                    return
                if cache is not None:
                    key = (array_name, probe)
                    if key in cache:
                        return  # already fetched by this processor
                    cache.add(key)
                counts.block_transfers += 1
                counts.block_bytes += num_bytes
            return run_read
        raise SimulationError(f"cannot simulate statement {statement!r}")

    def _compile_gather(self, statement: BlockRead, distribution, shape):
        """Closure for a whole-array gather (``read X[*]``-style)."""
        counts = self.counts
        total_elements = 1
        for extent in shape:
            total_elements *= extent
        owned = self._owned_elements(distribution, shape)
        remote_elements = total_elements - owned
        num_bytes = remote_elements * self.element_bytes.get(statement.array, 8)
        messages = min(self.P - 1, remote_elements)
        cache = self.block_cache
        key = (statement.array, "gather")

        def run_gather(env):
            if remote_elements <= 0:
                return
            if cache is not None:
                if key in cache:
                    return
                cache.add(key)
            counts.block_transfers += messages
            counts.block_bytes += num_bytes
        return run_gather

    def _owned_elements(self, distribution, shape) -> int:
        """How many elements of an array this processor owns."""
        kind = type(distribution).__name__
        dims = distribution.distribution_dims()
        if not dims:
            total = 1
            for extent in shape:
                total *= extent
            return total
        if len(dims) == 1 and kind in ("Wrapped", "Blocked"):
            dim = dims[0]
            extent = shape[dim]
            if kind == "Wrapped":
                mine = _count_congruent(1, 0, 0, 1, extent, self.P, self.p)
            else:
                block = -(-extent // self.P)
                mine = max(
                    0, min((self.p + 1) * block, extent) - self.p * block
                )
            rest = 1
            for d, other in enumerate(shape):
                if d != dim:
                    rest *= other
            return mine * rest
        # Generic fallback: enumerate owners (small arrays only).
        from itertools import product as _product

        count = 0
        for indices in _product(*(range(extent) for extent in shape)):
            if distribution.owner(indices, self.P, shape) == self.p:
                count += 1
        return count

    # ------------------------------------------------------------------
    # ownership
    # ------------------------------------------------------------------
    def _owner(self, array: str, indices: Tuple[int, ...]) -> Optional[int]:
        distribution = self.distributions.get(array)
        if distribution is None:
            return None
        shape = self.shapes.get(array)
        if shape is None:
            raise SimulationError(f"array {array!r} has no declared shape")
        return distribution.owner(indices, self.P, shape)

    # ------------------------------------------------------------------
    # walking
    # ------------------------------------------------------------------
    def run(self) -> AccessCounts:
        self._walk(0)
        return self.counts

    def _walk(self, level: int) -> None:
        nest = self.nest
        if level == nest.depth:
            self.counts.iterations += 1
            env = self.env
            for run in self._fast_body:
                run(env)
            return
        loop = nest.loops[level]
        compiled = self._compiled[level]
        analytic_inner = (
            level == nest.depth - 1
            and level > 0
            and self.mode == "account"
            and self._inner_plan is not None
            and not self._innermost_prologue
            and all(step[0] != "enum" for step in self._inner_plan)
        )
        if analytic_inner and self._summarize_innermost(compiled):
            return
        values = (
            _scheduled_values(compiled, self.env, self.node.schedule, self.P, self.p)
            if level == 0
            else compiled.values(self.env)
        )
        prologue = self._fast_prologue[level]
        sync_events = self.node.sync_per_outer_iteration if level == 0 else 0
        env = self.env
        for value in values:
            env[loop.index] = value
            if sync_events:
                self.counts.syncs += sync_events
            for run in prologue:
                run(env)
            self._walk(level + 1)
        env.pop(loop.index, None)

    # ------------------------------------------------------------------
    # analytic innermost-loop summary
    # ------------------------------------------------------------------
    def _summarize_innermost(self, compiled: "_CompiledLoop") -> bool:
        """Account the whole innermost loop in O(refs) time.

        Returns False — charging nothing — when a remainder expression is
        not integral at the current outer indices; the caller then falls
        back to enumerating the loop (whose per-access charges report the
        offending subscript precisely if it really is fractional at every
        iteration).
        """
        env = self.env
        trips = compiled.trip_count(env)
        if trips == 0:
            return True
        bases = []
        for kind, slope, rest, extent in self._inner_plan:
            if kind == "free":
                bases.append(None)
                continue
            base = _eval_exact(rest, env)
            if base is None:
                return False
            bases.append(base)
        first = compiled.first(env)
        step = compiled.step
        counts = self.counts
        counts.iterations += trips
        counts.statements += trips * len(self.nest.body)
        for (kind, slope, rest, extent), base in zip(self._inner_plan, bases):
            if kind == "free":
                counts.local += trips
                continue
            if kind == "wrapped":
                local = _count_congruent(
                    slope, base, first, step, trips, self.P, self.p
                )
            else:
                block = -(-extent // self.P)
                local = _count_in_interval(
                    slope, base, first, step, trips, self.p * block,
                    min((self.p + 1) * block - 1, extent - 1),
                )
            counts.local += local
            counts.remote += trips - local
        return True


def _var(name: str):
    from repro.ir.affine import AffineExpr

    return AffineExpr.var(name)


# The congruence/interval counting primitives now live in the linalg
# substrate (repro.linalg.progression), where the closed-form multi-level
# engine (repro.numa.counting) builds its per-level recurrences on top of
# them.  The old private names stay importable for the walker and tests.
_count_congruent = count_congruent
_count_in_interval = count_in_interval


def _scheduled_values(
    compiled: "_CompiledLoop", env: Mapping[str, int], schedule: str,
    processors: int, proc: int
) -> Iterator[int]:
    """Values of the distributed outermost loop executed by one processor."""
    if schedule == "all":
        yield from compiled.values(env)
        return
    high = compiled.high(env)
    first = compiled.first(env)
    if first > high:
        return
    step = compiled.step
    if schedule == "wrapped":
        if step == 1:
            # Value-based round robin (the paper's semantics): processor p
            # executes the iterations whose value is congruent to p, which
            # is what makes normal distribution-dimension subscripts local.
            value = first + ((proc - first) % processors)
            while value <= high:
                yield value
                value += processors
            return
        # Strided outer loop (tile loop or non-unimodular stride):
        # position-based round robin keeps every processor busy.
        value = first + step * proc
        stride = step * processors
        while value <= high:
            yield value
            value += stride
        return
    if schedule == "blocked":
        trips = (high - first) // step + 1
        block = -(-trips // processors)
        start = proc * block
        end = min(trips, (proc + 1) * block) - 1
        for q in range(start, end + 1):
            yield first + step * q
        return
    raise SimulationError(f"unknown schedule {schedule!r}")


#: Engine choices accepted by :func:`simulate` (and ``--engine``).
ENGINES = ("auto", "symbolic", "closed-form", "compiled", "walk")

#: Auto tier selection demotes a derivable symbolic form to the next
#: tier when its estimated per-processor evaluation cost (flat ops, see
#: :meth:`SymbolicEngine.estimate_cost`) exceeds this ceiling — a form
#: dominated by residual ``BoundedSum`` loops over large extents can be
#: slower than the closed-form engine it would replace.  The estimate is
#: plan-aware (fused loops costed once, residue-class plan levels at
#: O(classes)); one estimated op measures ~0.3–0.6 µs of compiled-form
#: evaluation (``scripts/bench_sympoly.py``, recorded in
#: ``BENCH_simulator.json``), so the ceiling admits accounts up to tens
#: of milliseconds — the regime where the banded paper kernels still
#: beat the closed-form tier.  Forcing ``engine="symbolic"`` bypasses
#: the ceiling.
SYMBOLIC_COST_CEILING = 120_000

#: Structural budget for :func:`_symbolic_unpromising`: total *excess*
#: ``max``/``min`` bound arms across the nest (arms beyond the first
#: per bound).  Each excess arm can double the range-split work inside
#: :func:`~repro.linalg.sympoly.sym_sum`, so past a handful the
#: derivation mostly burns its budget and falls back to loops anyway.
SYMBOLIC_MAX_EXTRA_ARMS = 8


def _symbolic_unpromising(node: NodeProgram) -> bool:
    """Cheap structural predictor that symbolic derivation will not pay.

    Multi-armed ``max``/``min`` loop bounds (skewed/banded nests) make
    symbolic range splitting exponential in the number of arms.  A
    *few* arms are now worth deriving — residual ``BoundedSum`` levels
    compile to fused loops with residue-class run plans, which is how
    the banded SYR2K shapes win — so ``auto`` only skips the (cached
    but non-trivial) derivation when the total excess-arm count says
    the derivation itself would blow its budget.  Forced
    ``engine="symbolic"`` always derives.
    """
    excess = sum(
        (len(loop.lower) - 1) + (len(loop.upper) - 1)
        for loop in node.nest.loops
    )
    return excess > SYMBOLIC_MAX_EXTRA_ARMS


def _cached_form(node: NodeProgram):
    """The tier-0 symbolic engine for ``node``, derived at most once.

    Returns ``("ok", engine)`` or ``("error", reason)``; both outcomes
    are memoized in the process-wide cache keyed by the node fingerprint
    alone — the derived form is symbolic in ``(params, P, proc)``, so one
    derivation answers every cell of a sweep.
    """
    from repro.numa.symbolic import (
        FORM_SCHEMA,
        SymbolicEngine,
        SymbolicUnsupported,
    )
    from repro.runtime.cache import node_fingerprint, shared_cache

    # FORM_SCHEMA in the key: an upgraded derivation/compilation schema
    # must never read a stale pre-upgrade engine from a shared store.
    key = node_fingerprint(node) + f"|symform:{FORM_SCHEMA}"

    def factory():
        try:
            return ("ok", SymbolicEngine(node))
        except SymbolicUnsupported as error:
            return ("error", str(error))

    return shared_cache().form(key, factory)


def _cached_kernel(node: NodeProgram, block_cache: bool):
    """The tier-2 accounting kernel for ``node``, compiled at most once.

    Returns ``("ok", kernel)`` or ``("error", CodegenError)``; both
    outcomes are memoized in the process-wide
    :class:`~repro.runtime.cache.SimulationCache` keyed by the node
    fingerprint, so a sweep compiles each distinct node program once.
    """
    from repro.codegen.pycodegen import compile_accounting
    from repro.errors import CodegenError
    from repro.runtime.cache import node_fingerprint, shared_cache

    key = node_fingerprint(node) + f"|kernel|bc={int(bool(block_cache))}"

    def factory():
        try:
            return ("ok", compile_accounting(node, block_cache=block_cache))
        except CodegenError as error:
            return ("error", error)

    return shared_cache().kernel(key, factory)


def _run_kernel(
    kernel, node: NodeProgram, env: Dict[str, int], processors: int,
    proc: int, block_cache: bool,
) -> AccessCounts:
    """Run the tier-2 kernel for one processor."""
    from repro.numa.counting import owned_elements

    program = node.program
    shapes = {decl.name: decl.shape(env) for decl in program.arrays}
    gathers = []
    for array in kernel.gather_arrays:
        shape = shapes[array]
        total = 1
        for extent in shape:
            total *= extent
        distribution = program.distributions[array]
        remote = total - owned_elements(distribution, shape, processors, proc)
        element_bytes = next(
            (d.element_bytes for d in program.arrays if d.name == array), 8
        )
        gathers.append(
            (min(processors - 1, remote), remote * element_bytes, remote)
        )
    cache = set() if block_cache else None
    return AccessCounts(*kernel(env, processors, proc, shapes, gathers, cache))


def simulate(
    node: NodeProgram,
    *,
    processors: int,
    params: Optional[Mapping[str, int]] = None,
    machine: Optional[MachineConfig] = None,
    mode: str = "account",
    arrays: Optional[Dict] = None,
    block_cache: bool = False,
    engine: str = "auto",
) -> SimulationResult:
    """Simulate a node program on ``processors`` processors.

    In ``execute`` mode, ``arrays`` must be provided; assignments are
    performed in place (processor by processor) so the caller can verify
    the parallel execution against the sequential program.

    ``block_cache=True`` models per-processor software caching of fetched
    block slices: a slice already transferred to this processor is not
    transferred again (communication hoisting across outer iterations) —
    an extension beyond the paper, exercised by the ABL7 ablation.

    ``engine`` picks the accounting tier: ``auto`` (default) uses the
    fastest tier that can handle the nest — the symbolic per-program form
    (:mod:`repro.numa.symbolic`, derived once per node program and then
    evaluated per cell), the closed-form multi-level engine
    (:mod:`repro.numa.counting`), the compiled accounting kernel
    (:func:`repro.codegen.pycodegen.compile_accounting`), or the
    interpreter walk.  Forcing ``symbolic``, ``closed-form`` or
    ``compiled`` raises a :class:`~repro.errors.SimulationError` when that
    tier cannot handle the nest; all tiers are bit-identical on every
    count (the tier equivalence tests and the fuzz oracle enforce this),
    so ``auto`` never changes results, only speed.  The chosen tier is
    reported as ``SimulationResult.engine``.
    """
    if engine not in ENGINES:
        choices = ", ".join(ENGINES)
        raise SimulationError(
            f"unknown engine {engine!r} (choose from: {choices})"
        )
    if mode not in ("account", "execute"):
        raise SimulationError(f"unknown mode {mode!r}")
    if mode == "execute" and arrays is None:
        raise SimulationError("execute mode requires arrays")
    if mode != "account" and engine in ("symbolic", "closed-form", "compiled"):
        raise SimulationError(
            f"engine {engine!r} only supports account mode; "
            "execute mode always uses the walk engine"
        )
    if processors <= 0:
        raise SimulationError("need at least one processor")
    machine = machine or butterfly_gp1000()

    symbolic = None
    closed = None
    kernel = None
    chosen = "walk"
    if mode == "account" and engine != "walk":
        if block_cache and engine in ("symbolic", "closed-form"):
            raise SimulationError(
                f"{engine} engine does not model the block cache; "
                "use the compiled or walk engine"
            )
        if not block_cache and (
            engine == "symbolic"
            or (engine == "auto" and not _symbolic_unpromising(node))
        ):
            status, payload = _cached_form(node)
            if status == "ok":
                keep = engine == "symbolic" or (
                    payload.estimate_cost(
                        node.program.bound_params(params), processors
                    )
                    <= SYMBOLIC_COST_CEILING
                )
                if keep:
                    symbolic = payload
                    chosen = "symbolic"
            elif engine == "symbolic":
                raise SimulationError(
                    f"symbolic engine cannot handle this nest: {payload}"
                )
        if symbolic is None and not block_cache and engine in (
            "auto", "closed-form"
        ):
            from repro.numa.counting import (
                ClosedFormEngine,
                ClosedFormUnsupported,
            )

            try:
                closed = ClosedFormEngine(node)
                chosen = "closed-form"
            except ClosedFormUnsupported as error:
                if engine == "closed-form":
                    raise SimulationError(
                        f"closed-form engine cannot handle this nest: {error}"
                    )
        if symbolic is None and closed is None and engine in (
            "auto", "compiled"
        ):
            status, payload = _cached_kernel(node, block_cache)
            if status == "ok":
                kernel = payload
                chosen = "compiled"
            elif engine == "compiled":
                raise SimulationError(
                    f"compiled engine cannot handle this nest: {payload}"
                )

    per_proc: List[ProcessorResult] = []
    all_counts: List[AccessCounts] = []
    for proc in range(processors):
        env = node.program.bound_params(params)
        env[node.procs_param] = processors
        env[node.proc_param] = proc
        if symbolic is not None:
            all_counts.append(symbolic.account(env, processors, proc))
        elif closed is not None:
            all_counts.append(closed.account(env, processors, proc))
        elif kernel is not None:
            all_counts.append(
                _run_kernel(kernel, node, env, processors, proc, block_cache)
            )
        else:
            walker = _ProcWalker(
                node, env, processors, proc, mode, arrays,
                block_cache=block_cache,
            )
            all_counts.append(walker.run())

    multiplier = 1.0
    if machine.contention_coefficient > 0 and processors > 1:
        base_times = [_time_us(c, machine, 1.0) for c in all_counts]
        makespan = max(base_times) or 1.0
        remote_traffic = sum(
            c.remote * machine.remote_access_us
            + c.block_bytes * machine.block_per_byte_us
            for c in all_counts
        )
        utilization = remote_traffic / (processors * makespan)
        multiplier = 1.0 + machine.contention_coefficient * (processors - 1) * utilization

    for proc, counts in enumerate(all_counts):
        per_proc.append(
            ProcessorResult(
                proc=proc,
                counts=counts,
                time_us=_time_us(counts, machine, multiplier),
            )
        )
    return SimulationResult(
        node_name=node.program.name,
        processors=processors,
        machine=machine,
        per_proc=tuple(per_proc),
        remote_multiplier=multiplier,
        engine=chosen,
    )


#: The argument tuple of :func:`simulate_task`:
#: ``(node, processors, params, machine, mode, block_cache[, engine])``.
#: The trailing engine entry is optional so pre-engine 6-tuples (older
#: callers, pickled task queues) keep working and mean ``auto``.
SimulateTask = Tuple[
    NodeProgram, int, Optional[Mapping[str, int]], Optional[MachineConfig],
    str, bool,
]


def simulate_task(task: SimulateTask) -> SimulationResult:
    """Top-level, picklable entry point for one simulation cell.

    ``multiprocessing`` workers must import their target function, so the
    parallel sweep engine (:mod:`repro.runtime.executor`) ships cells as
    plain tuples of picklable dataclasses and calls this instead of a
    closure over :func:`simulate`.
    """
    node, processors, params, machine, mode, block_cache = task[:6]
    engine = task[6] if len(task) > 6 else "auto"
    return simulate(
        node,
        processors=processors,
        params=params,
        machine=machine,
        mode=mode,
        block_cache=block_cache,
        engine=engine,
    )


def sequential_time(
    node: NodeProgram,
    *,
    params: Optional[Mapping[str, int]] = None,
    machine: Optional[MachineConfig] = None,
) -> float:
    """The one-processor execution time of a node program (all local)."""
    return simulate(
        node, processors=1, params=params, machine=machine
    ).total_time_us
