"""Tier 0 of the accounting engine: per-program symbolic count forms.

The closed-form engine (:mod:`repro.numa.counting`) collapses a nest into
exact counts, but re-derives them for every concrete ``(params, P, proc)``
cell.  This module derives each :class:`~repro.numa.simulator.AccessCounts`
field *once per node program* as a :class:`~repro.linalg.sympoly.SymExpr`
over the program parameters, the processor count and the processor id —
after which every sweep cell is a single compiled-form evaluation.

The derivation deliberately reuses the closed-form engine's build-time
analysis (bound compilation, reference/read recipes, domain checks) so the
two tiers share one notion of "supported nest", then replaces its
per-level strategy dispatch with a uniform innermost-out symbolic
summation: each loop level contributes ``value = first + stride * t`` for
``t in [0, trips)``, ownership tests become ``Mod``/``Ge0`` indicator
atoms, and :func:`~repro.linalg.sympoly.sym_sum` eliminates one level at a
time.  The substitution order matters: each level is summed with its
enclosing indices still symbolic, and the enclosing level's value is
substituted only when that level itself is summed — substituting early
threads schedule atoms (``Mod(p, P)`` etc.) through every inner split and
blows the form up combinatorially.

Nests whose derivation leaves the summable fragment raise
:class:`~repro.linalg.sympoly.SymbolicUnsupported`; the simulator treats
that as "fall down the engine ladder" to the closed-form tier, never as an
error.  Within its domain the engine is bit-identical to the interpreter
walk on every count — including the walk's quirk of clamping a blocked
reference's owned interval to the array extent only for nests of depth
greater than one (see ``ClosedFormEngine._innermost``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.codegen.spmd import NodeProgram
from repro.linalg.sympoly import (
    SymExpr,
    SymbolicUnsupported,
    bounded_sum,
    compile_account,
    const,
    eq0,
    eval_cost,
    floordiv,
    fresh_name,
    ge0,
    mod,
    planned_cost,
    pos,
    smax,
    smin,
    sum_budget,
    sym,
    sym_sum,
)
from repro.numa.counting import ClosedFormEngine, ClosedFormUnsupported
from repro.numa.simulator import AccessCounts

__all__ = ["SymbolicEngine", "SymbolicUnsupported", "FIELDS", "FORM_SCHEMA"]

#: Version of the derivation + compilation schema.  Cached artifacts
#: keyed off a node fingerprint (the memoized engine in
#: ``SimulationCache.form`` and the ``|symcert`` certificates) embed
#: this so an upgraded derivation — new splits, new evaluator shapes —
#: never reads a stale pre-upgrade entry from a shared store.  Bump it
#: whenever the derived forms or their compiled evaluators change shape.
FORM_SCHEMA = 2

#: ``sym_sum`` invocations allowed per level elimination before falling
#: back to an explicit loop.  Multi-armed ``smax``/``smin`` bounds (e.g.
#: SYR2K's skewed band) make range splitting exponential; past the budget
#: the level is kept as a :class:`~repro.linalg.sympoly.BoundedSum`, which
#: the compiled form runs as a real loop — O(extent) for that level
#: instead of O(1), still exact and still derive-once per program.
_LEVEL_SUM_BUDGET = 600

#: A closed form replacing a loop only pays off while it is cheaper to
#: *evaluate* than the loop it replaced.  The comparison uses
#: :func:`~repro.linalg.sympoly.eval_cost` under a nominal machine size —
#: ``P`` processors, ``_NOMINAL_EXTENT`` iterations for any bound the
#: nominal environment cannot settle (program parameters stay symbolic
#: here) — plus an absolute term cap as a backstop against forms that
#: are cheap at the nominal point but balloon elsewhere.
_NOMINAL_PROCS = 32
_NOMINAL_EXTENT = 64
_LEVEL_RESULT_LIMIT = 6000

#: The AccessCounts fields, in declaration order.
FIELDS = (
    "local",
    "remote",
    "block_transfers",
    "block_bytes",
    "guards",
    "statements",
    "iterations",
    "syncs",
)


def _from_compiled(compiled) -> SymExpr:
    """A ``_compile_affine`` triple as a SymExpr (integral by tier-1 checks)."""
    pairs, den, c = compiled
    if den != 1:  # pragma: no cover - _require_integral rejects these
        raise SymbolicUnsupported("rational affine expression")
    total = const(c)
    for name, coeff in pairs:
        total = total + coeff * sym(name)
    return total


def _from_affine(expr) -> SymExpr:
    """An :class:`~repro.ir.affine.AffineExpr` as a SymExpr."""
    total = const(expr.const)
    for name, coeff in expr.coeffs.items():
        total = total + coeff * sym(name)
    return total


class SymbolicEngine:
    """Derive-once symbolic accounting for a node program (tier 0).

    Build once per node program — the constructor runs the full symbolic
    derivation and compiles each count field — then call :meth:`account`
    once per ``(params, P, proc)`` cell.  Raises
    :class:`SymbolicUnsupported` from the constructor when the nest (or
    its derivation) falls outside the symbolic fragment.
    """

    def __init__(self, node: NodeProgram):
        try:
            base = ClosedFormEngine(node)
        except ClosedFormUnsupported as error:
            raise SymbolicUnsupported(str(error))
        self.node = node
        self.base = base
        self.procs_name = node.procs_param
        self.proc_name = node.proc_param
        taken = set(node.nest.indices) | set(node.program.params)
        if self.procs_name in taken or self.proc_name in taken:
            raise SymbolicUnsupported(
                "processor symbols shadow program names"
            )
        self._hint = self._make_hint(
            {self.procs_name: _NOMINAL_PROCS, self.proc_name: 0}
        )
        self.forms: Dict[str, SymExpr] = self._derive()
        for form in self.forms.values():
            form.compiled()
        # One fused evaluator for all fields: sums sharing a summation
        # level run in one loop (or one residue-class plan) and shared
        # atoms evaluate once.  None only for pathological bound-variable
        # shadowing; account() then falls back to per-form evaluation.
        # The identity snapshot lets _fused() detect callers that rebind
        # ``self.forms`` entries (certification injects defective forms
        # this way) and recompile, so the fused path can never serve a
        # stale pre-mutation evaluator.
        self._account = compile_account(self.forms)
        self._account_forms = tuple(self.forms.values())

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def _sym_progression(self, level: int) -> Tuple[SymExpr, SymExpr, SymExpr]:
        """``(first, stride, trips)`` of one level, outer indices symbolic.

        ``trips`` is the *raw* trip expression (may be negative where the
        loop body is empty); :func:`sym_sum` clamps it, and multiplicative
        uses wrap it in ``pos``.
        """
        compiled = self.base.compiled[level]
        P = sym(self.procs_name)
        p = sym(self.proc_name)
        low = None
        for bound in compiled.lowers:
            expr = _from_compiled(bound)
            low = expr if low is None else smax(low, expr)
        high = None
        for bound in compiled.uppers:
            expr = _from_compiled(bound)
            high = expr if high is None else smin(high, expr)
        step = compiled.step
        first = low
        if compiled.align is not None:
            offset = _from_compiled(compiled.align)
            first = low + mod(offset - low, step)
        if level > 0 or self.node.schedule == "all":
            return first, const(step), floordiv(high - first, step) + 1
        if self.node.schedule == "wrapped":
            if step == 1:
                # Value-based round robin: start at the first value
                # congruent to the processor id.
                start = first + mod(p - first, P)
                return start, P, floordiv(high - start, P) + 1
            start = first + step * p
            stride = step * P
            return start, stride, floordiv(high - start, stride) + 1
        # blocked: contiguous position ranges
        total = pos(floordiv(high - first, step) + 1)
        block = floordiv(total + P - 1, P)
        start_pos = p * block
        count = smin(total, (p + 1) * block) - start_pos
        return first + step * start_pos, const(step), count

    @staticmethod
    def _make_hint(env: Dict[str, int]):
        """An ``eval_cost`` extent hint: evaluate the bound under ``env``,
        falling back to a nominal extent when the bound mentions symbols
        the environment does not settle (loop variables of enclosing
        ``BoundedSum`` levels, or — for the derive-time nominal hint —
        program parameters)."""

        def hint(bound: SymExpr) -> int:
            try:
                return bound.evaluate(env)
            except (KeyError, ValueError, SymbolicUnsupported):
                return _NOMINAL_EXTENT

        return hint

    def _sum(
        self, body: SymExpr, var: str, trips: SymExpr, positive: frozenset
    ) -> SymExpr:
        """Eliminate one level: closed form, or an explicit loop.

        Closed-form elimination is exponential in the number of
        ``smax``/``smin`` bound arms; when it exceeds the budget (or the
        fragment), the level stays a ``BoundedSum`` — definitionally the
        same sum, evaluated by the compiled form as a loop.

        A closed form that *can* be derived is kept only when it is
        estimated cheaper to evaluate than the loop it replaces.  Range
        splitting on symbolic ``P`` can trade an O(trips) loop for a
        residue ``BoundedSum`` over ``P`` with a body hundreds of terms
        wide — symbolically "closed", practically slower — so the keep
        rule compares :func:`eval_cost` under the nominal hint instead
        of raw term counts.
        """
        try:
            with sum_budget(_LEVEL_SUM_BUDGET):
                result = sym_sum(body, var, trips, positive)
        except SymbolicUnsupported:
            return bounded_sum(var, trips, body)
        if result.term_count() > _LEVEL_RESULT_LIMIT:
            return bounded_sum(var, trips, body)
        loop_cost = max(0, self._hint(trips)) * (
            1 + eval_cost(body, self._hint)
        )
        if eval_cost(result, self._hint) > loop_cost:
            return bounded_sum(var, trips, body)
        return result

    def _count_wrapped(self, c: SymExpr, s, trips: SymExpr):
        """``#{t in [0, max(0, trips)) : c + s*t ≡ 0 (mod P)}`` directly.

        The symbolic mirror of the walk's innermost progression count:
        ``c`` and ``trips`` stay opaque (they may hold smax/smin atoms),
        so no case analysis is needed.  ``None`` when no rule applies.
        """
        P = sym(self.procs_name)
        s = SymExpr._coerce(s)
        if not s.subs(self.procs_name, const(0))._terms:
            # The step is 0 or a multiple of P: the residue never moves.
            return eq0(mod(c, P)) * pos(trips)
        if not s.is_const():
            return None
        slope = s.const_value()
        if slope.denominator != 1:
            return None
        slope = slope.numerator
        if slope == 1:
            t0 = mod(-c, P)
        elif slope == -1:
            t0 = mod(c, P)
        else:
            # gcd(|s|, P) with P symbolic: leave to the split machinery.
            return None
        return pos(floordiv(trips - 1 - t0, P) + 1)

    def _count_blocked(
        self, c: SymExpr, s, trips: SymExpr, low: SymExpr, high: SymExpr
    ):
        """``#{t in [0, max(0, trips)) : low <= c + s*t <= high}`` directly."""
        s = SymExpr._coerce(s)
        if not s.is_const():
            return None
        slope = s.const_value()
        if slope.denominator != 1:
            return None
        slope = slope.numerator
        if slope == 0:
            return ge0(c - low) * ge0(high - c) * pos(trips)
        if slope > 0:
            lo_t = -floordiv(c - low, slope)
            hi_t = floordiv(high - c, slope)
        else:
            lo_t = -floordiv(high - c, -slope)
            hi_t = floordiv(c - low, -slope)
        return pos(smin(trips - 1, hi_t) - smax(const(0), lo_t) + 1)

    def _owned(self, distribution, shape: Tuple[SymExpr, ...]) -> SymExpr:
        """Symbolic :func:`~repro.numa.counting.owned_elements`."""
        P = sym(self.procs_name)
        p = sym(self.proc_name)
        kind = type(distribution).__name__
        dims = distribution.distribution_dims()
        if not dims:
            total = const(1)
            for extent in shape:
                total = total * extent
            return total
        if len(dims) == 1 and kind in ("Wrapped", "Blocked"):
            dim = dims[0]
            extent = shape[dim]
            if kind == "Wrapped":
                mine = pos(floordiv(extent - 1 - mod(p, P), P) + 1)
            else:
                block = floordiv(extent + P - 1, P)
                mine = pos(smin((p + 1) * block, extent) - p * block)
            rest = const(1)
            for d, other in enumerate(shape):
                if d != dim:
                    rest = rest * other
            return mine * rest
        raise SymbolicUnsupported(
            f"ownership under '{distribution.describe()}' needs enumeration"
        )

    def _charge_read(
        self,
        read,
        prog: Tuple[SymExpr, SymExpr, SymExpr],
        contribs: List[List],
        extents: Dict[str, Tuple[SymExpr, ...]],
        positive: frozenset,
    ) -> None:
        """Append one prologue block read's transfers/bytes contributions."""
        if read.kind == "none":
            return
        P = sym(self.procs_name)
        p = sym(self.proc_name)
        first, stride, trips = prog
        visits = pos(trips)
        shape = extents[read.array]
        element_bytes = self.base.element_bytes.get(read.array, 8)
        if read.kind == "gather":
            total = const(1)
            for extent in shape:
                total = total * extent
            distribution = self.base.distributions[read.array]
            remote = total - self._owned(distribution, shape)
            messages = smin(P - 1, remote)
            contribs.append(["block_transfers", messages * visits])
            contribs.append(["block_bytes", remote * element_bytes * visits])
            return
        elements = const(1)
        for dim, entry in enumerate(read.pattern):
            if entry is None:
                elements = elements * shape[dim]
        head = read.slope * first + _from_compiled(read.rest)
        slope = read.slope * stride
        if read.kind == "wrapped":
            local = self._count_wrapped(head - p, slope, trips)
        else:
            extent = shape[read.dim]
            block = floordiv(extent + P - 1, P)
            local = self._count_blocked(
                head, slope, trips, p * block, (p + 1) * block - 1
            )
        if local is None:
            tvar = fresh_name()
            probe = head + slope * sym(tvar)
            if read.kind == "wrapped":
                indicator = eq0(mod(probe - p, P))
            else:
                indicator = ge0(probe - p * block) * ge0(
                    (p + 1) * block - 1 - probe
                )
            local = self._sum(indicator, tvar, trips, positive)
        fetches = visits - local
        contribs.append(["block_transfers", fetches])
        contribs.append(["block_bytes", fetches * elements * element_bytes])

    def _derive(self) -> Dict[str, SymExpr]:
        base = self.base
        nest = base.nest
        depth = nest.depth
        P = sym(self.procs_name)
        p = sym(self.proc_name)
        positive = frozenset((self.procs_name,))
        extents = {
            name: tuple(_from_affine(e) for e in decl.extents)
            for name, decl in base.decls.items()
        }
        zero = const(0)
        progs = [self._sym_progression(level) for level in range(depth)]

        # Each count contribution is folded through the enclosing levels
        # *independently*: sym_sum is linear, and summing an aggregate
        # would let the distinct indicator atoms of unrelated references
        # multiply each other's range splits combinatorially.
        contribs: List[List] = []

        # Innermost level: iterations, statements and per-reference
        # local/remote splits, with every outer index still symbolic.
        first, stride, trips = progs[depth - 1]
        tvar = fresh_name()
        value = first + stride * sym(tvar)
        visits = self._sum(const(1), tvar, trips, positive)
        contribs.append(["iterations", visits])
        contribs.append(["statements", visits * base.body_len])
        indicator_sums: Dict[SymExpr, SymExpr] = {}
        for recipe in base.refs:
            if recipe.kind == "free":
                contribs.append(["local", visits])
                continue
            head = recipe.slope * first + _from_compiled(recipe.rest)
            slope = recipe.slope * stride
            subscript = head + slope * sym(tvar)
            if recipe.kind == "wrapped":
                indicator = eq0(mod(subscript - p, P))
            else:
                extent = extents[recipe.array][recipe.dim]
                block = floordiv(extent + P - 1, P)
                high_own = (p + 1) * block - 1
                if depth > 1:
                    # Mirror the walk: the innermost summary clamps the
                    # owned interval to the extent; depth-1 nests do not.
                    high_own = smin(high_own, extent - 1)
                indicator = ge0(subscript - p * block) * ge0(
                    high_own - subscript
                )
            mine = indicator_sums.get(indicator)
            if mine is None:
                if recipe.kind == "wrapped":
                    mine = self._count_wrapped(head - p, slope, trips)
                else:
                    mine = self._count_blocked(
                        head, slope, trips, p * block, high_own
                    )
                if mine is None:
                    mine = self._sum(indicator, tvar, trips, positive)
                indicator_sums[indicator] = mine
            contribs.append(["local", mine])
            contribs.append(["remote", visits - mine])

        # Fold levels outward.  Block reads at a level are charged once
        # per visit of that level (their locality sum ranges over the
        # level's own values), so they join *before* enclosing levels are
        # summed and get multiplied by outer trip counts naturally.
        for level in range(depth - 1, -1, -1):
            if level < depth - 1:
                first, stride, trips = progs[level]
                tvar = fresh_name()
                value = first + stride * sym(tvar)
                index = nest.loops[level].index
                folded: Dict[SymExpr, SymExpr] = {}
                for entry in contribs:
                    expr = entry[1]
                    result = folded.get(expr)
                    if result is None:
                        result = self._sum(
                            expr.subs(index, value), tvar, trips, positive
                        )
                        folded[expr] = result
                    entry[1] = result
            for read in base.reads[level]:
                self._charge_read(
                    read, progs[level], contribs, extents, positive
                )
            if level == 0 and self.node.sync_per_outer_iteration:
                contribs.append([
                    "syncs",
                    self.node.sync_per_outer_iteration * pos(progs[0][2]),
                ])

        counts: Dict[str, SymExpr] = {name: zero for name in FIELDS}
        for name, expr in contribs:
            counts[name] = counts[name] + expr
        return counts

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _fused(self):
        """The fused evaluator for the *current* ``self.forms``.

        Recompiled whenever a form object has been rebound since the last
        compile, so mutations of ``self.forms`` (defect injection during
        certification, experimental form surgery) are always honored by
        the evaluation path the certificate vouches for.
        """
        current = tuple(self.forms.values())
        if len(current) != len(self._account_forms) or any(
            a is not b for a, b in zip(current, self._account_forms)
        ):
            self._account = compile_account(self.forms)
            self._account_forms = current
        return self._account

    def account(
        self, env: Dict[str, int], processors: int, proc: int
    ) -> AccessCounts:
        """Exact counts for one processor — a pure form evaluation."""
        eval_env = dict(env)
        eval_env[self.procs_name] = processors
        eval_env[self.proc_name] = proc
        fused = self._fused()
        if fused is not None:
            try:
                values = fused(eval_env)
            except KeyError as error:
                raise SymbolicUnsupported(
                    f"unbound symbol {error.args[0]!r} at evaluation"
                )
            return AccessCounts(**dict(zip(fused.fields, values)))
        return AccessCounts(
            **{
                name: form.evaluate_fast(eval_env)
                for name, form in self.forms.items()
            }
        )

    def term_counts(self) -> Dict[str, int]:
        """Per-field form sizes (for diagnostics and the benchmark)."""
        return {name: form.term_count() for name, form in self.forms.items()}

    def estimate_cost(self, env: Dict[str, int], processors: int) -> int:
        """Estimated flat-op count to evaluate all fields for one processor.

        Concrete bounds (``BoundedSum`` extents) are evaluated under the
        given parameter binding; bounds that still mention an enclosing
        loop variable fall back to a nominal extent.  ``simulate``'s auto
        tier selection uses this to demote a derivable-but-expensive form
        (residual loops over large extents) to the next tier; a forced
        ``symbolic`` engine is never demoted.

        When the fused evaluator compiled, the estimate walks its cost
        tree (:func:`~repro.linalg.sympoly.planned_cost`), mirroring what
        the runtime will actually execute: fused loops are costed once —
        not once per field — and a level with a residue-class plan costs
        O(classes) with the *concrete* ``lcm`` of its moduli, so banded
        forms whose wrapped levels collapse to one class promote
        honestly instead of being demoted by a worst-case loop model.
        """
        eval_env = dict(env)
        eval_env[self.procs_name] = processors
        eval_env[self.proc_name] = 0
        hint = self._make_hint(eval_env)
        fused = self._fused()
        if fused is not None:
            return planned_cost(fused.cost_tree, hint)
        return sum(eval_cost(form, hint) for form in self.forms.values())
