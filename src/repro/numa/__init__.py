"""NUMA machine models and the simulator (the paper's evaluation substrate)."""

from repro.numa.machine import (
    MachineConfig,
    butterfly_gp1000,
    ipsc860,
    uniform_memory,
)
from repro.numa.simulator import (
    AccessCounts,
    ProcessorResult,
    SimulationResult,
    sequential_time,
    simulate,
)
from repro.numa.symbolic import SymbolicEngine

__all__ = [
    "AccessCounts",
    "MachineConfig",
    "ProcessorResult",
    "SimulationResult",
    "SymbolicEngine",
    "butterfly_gp1000",
    "ipsc860",
    "sequential_time",
    "simulate",
    "uniform_memory",
]
