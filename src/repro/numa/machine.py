"""NUMA machine models.

The paper's target is the BBN Butterfly GP-1000: local references cost
about 0.6 us, remote references about 6.6 us even without contention, and
block transfers cost about 8 us of startup plus 0.31 us per byte
(Section 8).  The Intel iPSC/i860 preset uses the Section 1 numbers: 70 us
message startup and about 1 us per transferred double.

The compute cost per executed statement calibrates the speedup curves'
absolute scale; the published GP-1000 application studies put a
floating-point multiply-add with local operands in the few-microsecond
range, which is the default here.

An optional contention model (Agarwal-style, discussed in Sections 1
and 8) inflates remote latency with network load; it is off by default and
exercised by the ABL1 ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineConfig:
    """Cost parameters of a NUMA machine (all times in microseconds)."""

    name: str
    local_access_us: float
    remote_access_us: float
    block_startup_us: float
    block_per_byte_us: float
    compute_per_statement_us: float = 2.0
    guard_cost_us: float = 0.6
    sync_cost_us: float = 20.0
    contention_coefficient: float = 0.0

    def block_transfer_us(self, num_bytes: int) -> float:
        """Cost of one block transfer of ``num_bytes`` bytes."""
        return self.block_startup_us + self.block_per_byte_us * num_bytes

    def block_breakeven_elements(self, element_bytes: int = 8) -> float:
        """Elements above which one block transfer beats per-element
        remote accesses (amortization argument of Section 1)."""
        per_element_block = self.block_per_byte_us * element_bytes
        if self.remote_access_us <= per_element_block:
            return float("inf")
        return self.block_startup_us / (self.remote_access_us - per_element_block)

    def with_contention(self, coefficient: float) -> "MachineConfig":
        """A copy with the contention coefficient set."""
        return replace(self, contention_coefficient=coefficient)


def butterfly_gp1000(**overrides) -> MachineConfig:
    """The paper's evaluation machine (BBN Butterfly GP-1000, Section 8)."""
    config = MachineConfig(
        name="BBN Butterfly GP-1000",
        local_access_us=0.6,
        remote_access_us=6.6,
        block_startup_us=8.0,
        block_per_byte_us=0.31,
        # MC68020 + 68881 at 16 MHz: a double-precision multiply-add with
        # address arithmetic lands around 10 us per executed statement.
        compute_per_statement_us=10.0,
    )
    return replace(config, **overrides) if overrides else config


def ipsc860(**overrides) -> MachineConfig:
    """Intel iPSC/i860 (Section 1): message startup 70 us, ~1 us per
    transferred double once the pipeline is set up.  Remote scalar access
    means a full small-message round, dominated by startup."""
    config = MachineConfig(
        name="Intel iPSC/i860",
        local_access_us=0.2,
        remote_access_us=70.0,
        block_startup_us=70.0,
        block_per_byte_us=0.125,
        compute_per_statement_us=0.5,
    )
    return replace(config, **overrides) if overrides else config


def uniform_memory(**overrides) -> MachineConfig:
    """A UMA reference machine: remote costs equal local costs.  Useful as a
    control in ablations — access normalization should not matter here."""
    config = MachineConfig(
        name="uniform memory",
        local_access_us=0.6,
        remote_access_us=0.6,
        block_startup_us=0.0,
        block_per_byte_us=0.075,
    )
    return replace(config, **overrides) if overrides else config
