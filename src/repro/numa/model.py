"""Closed-form performance model (the TR's "simple performance model").

Section 8 of the paper refers to a simple analytical model explaining the
GEMM and SYR2K speedup curves.  For GEMM the three code variants have
regular enough structure that every event count has a closed form; this
module computes those counts *exactly* (integer arithmetic, worst
processor), which lets the benchmark harness sweep paper-scale problems
(400x400, P = 1..28) instantly.  The model is cross-validated against the
event-exact simulator in the test suite.

Variants (matching Figure 4's curve labels):

* ``gemm``  — untransformed ``i`` loop distributed round-robin;
* ``gemmT`` — access-normalized, remote accesses one element at a time;
* ``gemmB`` — access-normalized with block transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import SimulationError
from repro.numa.machine import MachineConfig, butterfly_gp1000
from repro.numa.simulator import AccessCounts, _time_us

GEMM_VARIANTS = ("gemm", "gemmT", "gemmB")


def _count_residues(low: int, high: int, modulus: int, target: int) -> int:
    """#{x in [low, high] : x === target (mod modulus)}."""
    if high < low:
        return 0
    first = low + ((target - low) % modulus)
    if first > high:
        return 0
    return (high - first) // modulus + 1


@dataclass(frozen=True)
class ModelPoint:
    """Predicted counts and time for the worst (slowest) processor."""

    variant: str
    processors: int
    counts: AccessCounts
    time_us: float


def gemm_counts(
    n: int, processors: int, proc: int, variant: str, element_bytes: int = 8
) -> AccessCounts:
    """Exact event counts for one processor of one GEMM variant.

    Loops run over ``0 .. n-1`` (matching :func:`repro.blas.gemm_program`)
    and all three arrays have a wrapped column distribution.
    """
    if variant not in GEMM_VARIANTS:
        raise SimulationError(f"unknown GEMM variant {variant!r}")
    p, cap = proc, processors
    outer = _count_residues(0, n - 1, cap, p)  # distributed-loop iterations
    mine = _count_residues(0, n - 1, cap, p)   # columns this processor owns
    counts = AccessCounts()
    counts.iterations = outer * n * n
    counts.statements = outer * n * n

    if variant == "gemm":
        # Original loops (i distributed): C[i,j] (write+read, local iff
        # j===p), A[i,k] (local iff k===p), B[k,j] (local iff j===p).
        local_j = 3 * outer * n * mine      # two C accesses + one B access
        local_k = outer * n * mine          # one A access
        counts.local = local_j + local_k
        counts.remote = 4 * outer * n * n - counts.local
        return counts

    # Normalized loops u, v, w over 1..n: C[w,u] and B[v,u] local,
    # A[w,v] local iff v === p (mod P).
    if variant == "gemmT":
        counts.local = outer * (3 * n * n + n * mine)
        counts.remote = outer * n * (n - mine)
        return counts

    # gemmB: one block transfer of column v (n elements) per non-local v.
    counts.local = outer * 4 * n * n
    counts.block_transfers = outer * (n - mine)
    counts.block_bytes = counts.block_transfers * n * element_bytes
    return counts


def gemm_model(
    n: int,
    processors: int,
    variant: str,
    machine: Optional[MachineConfig] = None,
) -> ModelPoint:
    """Predicted makespan of a GEMM variant: the slowest processor's time.

    Applies the machine's contention model the same way the simulator does
    (one-shot inflation from aggregate remote traffic).
    """
    machine = machine or butterfly_gp1000()
    per_proc = [
        gemm_counts(n, processors, p, variant) for p in range(processors)
    ]
    multiplier = 1.0
    if machine.contention_coefficient > 0 and processors > 1:
        base = [_time_us(c, machine, 1.0) for c in per_proc]
        makespan = max(base) or 1.0
        remote_traffic = sum(
            c.remote * machine.remote_access_us
            + c.block_bytes * machine.block_per_byte_us
            for c in per_proc
        )
        utilization = remote_traffic / (processors * makespan)
        multiplier = 1.0 + machine.contention_coefficient * (processors - 1) * utilization
    times = [_time_us(c, machine, multiplier) for c in per_proc]
    worst = max(range(processors), key=lambda i: times[i])
    return ModelPoint(
        variant=variant,
        processors=processors,
        counts=per_proc[worst],
        time_us=times[worst],
    )


def gemm_speedup_series(
    n: int,
    processor_counts: Iterable[int],
    machine: Optional[MachineConfig] = None,
) -> Dict[str, List[float]]:
    """Speedup curves for all three GEMM variants (Figure 4's series)."""
    machine = machine or butterfly_gp1000()
    sequential = gemm_model(n, 1, "gemmB", machine).time_us
    series: Dict[str, List[float]] = {v: [] for v in GEMM_VARIANTS}
    for processors in processor_counts:
        for variant in GEMM_VARIANTS:
            point = gemm_model(n, processors, variant, machine)
            series[variant].append(sequential / point.time_us)
    return series
