"""User-specified data distributions (FORTRAN-D style, Section 2.1)."""

from repro.distributions.base import Distribution, Replicated, validate_indices
from repro.distributions.standard import (
    Block2D,
    BlockCyclic,
    Blocked,
    Wrapped,
    blocked_column,
    blocked_row,
    wrapped_column,
    wrapped_row,
)

__all__ = [
    "Block2D",
    "BlockCyclic",
    "Blocked",
    "Distribution",
    "Replicated",
    "Wrapped",
    "blocked_column",
    "blocked_row",
    "validate_indices",
    "wrapped_column",
    "wrapped_row",
]
