"""Data distributions (Definition 2.1 of the paper).

A distribution function maps array indices to a processor number in
``0 .. P-1``.  An array dimension is a *distribution dimension* when it is
used by the distribution function.  The locality analysis and the ownership
code generator only need two things from a distribution: the owner of a
concrete element, and which dimensions drive ownership.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import DistributionError
from repro.ir.affine import AffineExpr
from repro.ir.stmt import ModEq


class Distribution:
    """Base class of data distributions."""

    def distribution_dims(self) -> Tuple[int, ...]:
        """The array dimensions used by the distribution function."""
        raise NotImplementedError

    def owner(self, indices: Sequence[int], processors: int, shape: Sequence[int]) -> int:
        """The processor owning element ``indices`` of an array of ``shape``."""
        raise NotImplementedError

    def ownership_guard(
        self,
        subscripts: Sequence[AffineExpr],
        processors: AffineExpr,
        proc: AffineExpr,
    ) -> ModEq:
        """A symbolic ``expr mod P == p`` ownership test, when expressible.

        Only cyclic (wrapped) distributions have a pure modular guard; other
        distributions raise :class:`DistributionError` — the ownership-rule
        baseline in the paper is likewise presented for wrapped mappings.
        """
        raise DistributionError(
            f"{type(self).__name__} has no modular ownership guard"
        )

    def describe(self) -> str:
        """A short human-readable description."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}: {self.describe()}>"


def validate_indices(indices: Sequence[int], shape: Sequence[int]) -> None:
    """Bounds-check element indices against an array shape."""
    if len(indices) != len(shape):
        raise DistributionError(
            f"element has {len(indices)} indices but the array has rank {len(shape)}"
        )
    for axis, (index, extent) in enumerate(zip(indices, shape)):
        if not 0 <= index < extent:
            raise DistributionError(
                f"index {index} out of range [0, {extent}) in dimension {axis}"
            )


class Replicated(Distribution):
    """Every processor holds a full copy; all accesses are local."""

    def distribution_dims(self) -> Tuple[int, ...]:
        return ()

    def owner(self, indices: Sequence[int], processors: int, shape: Sequence[int]) -> Optional[int]:
        validate_indices(indices, shape)
        return None  # No single owner: local everywhere.

    def describe(self) -> str:
        return "replicated"
