"""The standard distributions the paper's compiler supports (Section 2.1):

wrapped and blocked column/row distributions, plus 2-D blocks.  The wrapped
column distribution of a two-dimensional array is the paper's running
example: ``W2(i, j) = j mod P``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.distributions.base import Distribution, validate_indices
from repro.errors import DistributionError
from repro.ir.affine import AffineExpr
from repro.ir.stmt import ModEq


def _block_size(extent: int, processors: int) -> int:
    return -(-extent // processors)  # ceil division


class Wrapped(Distribution):
    """Round-robin (cyclic) distribution along one dimension.

    ``owner(indices) = indices[dim] mod P``: with ``dim=1`` on a 2-D array
    this is the paper's wrapped *column* distribution (processor 0 gets
    columns 0, P, 2P, ...), with ``dim=0`` the wrapped row distribution.
    """

    def __init__(self, dim: int):
        if dim < 0:
            raise DistributionError("distribution dimension must be non-negative")
        self.dim = dim

    def distribution_dims(self) -> Tuple[int, ...]:
        return (self.dim,)

    def owner(self, indices: Sequence[int], processors: int, shape: Sequence[int]) -> int:
        validate_indices(indices, shape)
        return indices[self.dim] % processors

    def ownership_guard(
        self,
        subscripts: Sequence[AffineExpr],
        processors: AffineExpr,
        proc: AffineExpr,
    ) -> ModEq:
        if self.dim >= len(subscripts):
            raise DistributionError(
                f"distribution dimension {self.dim} exceeds reference rank {len(subscripts)}"
            )
        return ModEq(subscripts[self.dim], processors, proc)

    def describe(self) -> str:
        kind = {0: "row", 1: "column"}.get(self.dim, f"dim {self.dim}")
        return f"wrapped {kind}"


class Blocked(Distribution):
    """Contiguous-block distribution along one dimension.

    Processor ``p`` owns indices ``p*S .. (p+1)*S - 1`` along the
    distribution dimension, where ``S = ceil(extent / P)``.
    """

    def __init__(self, dim: int):
        if dim < 0:
            raise DistributionError("distribution dimension must be non-negative")
        self.dim = dim

    def distribution_dims(self) -> Tuple[int, ...]:
        return (self.dim,)

    def owner(self, indices: Sequence[int], processors: int, shape: Sequence[int]) -> int:
        validate_indices(indices, shape)
        return indices[self.dim] // _block_size(shape[self.dim], processors)

    def block_size(self, processors: int, shape: Sequence[int]) -> int:
        """The per-processor block extent ``S``."""
        return _block_size(shape[self.dim], processors)

    def describe(self) -> str:
        kind = {0: "row", 1: "column"}.get(self.dim, f"dim {self.dim}")
        return f"blocked {kind}"


class BlockCyclic(Distribution):
    """Block-cyclic distribution: blocks of ``block`` indices dealt
    round-robin (``owner = (index // block) mod P``).

    The FORTRAN-D family's third standard mapping, degenerating to
    :class:`Wrapped` at ``block=1``.  Aligning the tile size of a tiled
    schedule with ``block`` restores the locality that element-wrapped
    distributions lose under tiling (see the ABL7 tiling ablation).
    """

    def __init__(self, dim: int, block: int):
        if dim < 0:
            raise DistributionError("distribution dimension must be non-negative")
        if block <= 0:
            raise DistributionError("block size must be positive")
        self.dim = dim
        self.block = block

    def distribution_dims(self) -> Tuple[int, ...]:
        return (self.dim,)

    def owner(self, indices: Sequence[int], processors: int, shape: Sequence[int]) -> int:
        validate_indices(indices, shape)
        return (indices[self.dim] // self.block) % processors

    def describe(self) -> str:
        kind = {0: "row", 1: "column"}.get(self.dim, f"dim {self.dim}")
        return f"block-cyclic({self.block}) {kind}"


class Block2D(Distribution):
    """Rectangular sub-blocks on a 2-D processor grid (Section 2.1).

    The paper mentions 2-D blocks but does not evaluate them; the class is
    provided so the locality machinery is complete.  The processor grid is
    ``rows x cols`` and the owner of ``(i, j)`` is
    ``(i // Si) * cols + (j // Sj)``.
    """

    def __init__(self, grid_rows: int, grid_cols: int):
        if grid_rows <= 0 or grid_cols <= 0:
            raise DistributionError("processor grid extents must be positive")
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols

    def distribution_dims(self) -> Tuple[int, ...]:
        return (0, 1)

    def owner(self, indices: Sequence[int], processors: int, shape: Sequence[int]) -> int:
        validate_indices(indices, shape)
        if self.grid_rows * self.grid_cols != processors:
            raise DistributionError(
                f"grid {self.grid_rows}x{self.grid_cols} does not match P={processors}"
            )
        if len(shape) < 2:
            raise DistributionError("Block2D requires a rank >= 2 array")
        row_block = _block_size(shape[0], self.grid_rows)
        col_block = _block_size(shape[1], self.grid_cols)
        return (indices[0] // row_block) * self.grid_cols + (indices[1] // col_block)

    def describe(self) -> str:
        return f"2-D blocks on a {self.grid_rows}x{self.grid_cols} grid"


def wrapped_column() -> Wrapped:
    """The paper's default: columns dealt round-robin (``j mod P``)."""
    return Wrapped(1)


def wrapped_row() -> Wrapped:
    """Rows dealt round-robin (``i mod P``)."""
    return Wrapped(0)


def blocked_column() -> Blocked:
    """Contiguous column blocks."""
    return Blocked(1)


def blocked_row() -> Blocked:
    """Contiguous row blocks."""
    return Blocked(0)
