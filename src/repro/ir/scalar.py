"""Scalar (loop-body) expression trees.

Loop bodies compute with array elements, scalar parameters and affine index
expressions.  The tree is intentionally minimal — just enough to express the
BLAS kernels the paper evaluates and the worked examples in its text — but
fully executable, which is what lets every transformation in this library be
checked semantically against the original program.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Mapping, Tuple, Union

from repro.errors import IRError
from repro.ir.affine import AffineExpr

Number = Union[int, float, Fraction]


class ScalarExpr:
    """Base class of scalar expression nodes."""

    __slots__ = ()

    def references(self) -> Tuple["ArrayRef", ...]:
        """All array references in the subtree, left to right."""
        raise NotImplementedError

    def substitute_indices(self, bindings: Mapping[str, AffineExpr]) -> "ScalarExpr":
        """Rewrite every embedded affine expression through ``bindings``."""
        raise NotImplementedError


@dataclass(frozen=True)
class ArrayRef:
    """A subscripted array reference ``name[sub_0, sub_1, ...]``."""

    array: str
    subscripts: Tuple[AffineExpr, ...]

    @staticmethod
    def make(array: str, *subscripts: Union[AffineExpr, str, int]) -> "ArrayRef":
        """Build a reference, parsing string subscripts for convenience."""
        converted = tuple(
            sub
            if isinstance(sub, AffineExpr)
            else (AffineExpr.constant(sub) if isinstance(sub, int) else AffineExpr.parse(sub))
            for sub in subscripts
        )
        return ArrayRef(array, converted)

    @property
    def rank(self) -> int:
        """Number of subscripts."""
        return len(self.subscripts)

    def substitute_indices(self, bindings: Mapping[str, AffineExpr]) -> "ArrayRef":
        """Rewrite the subscripts through ``bindings``."""
        return ArrayRef(self.array, tuple(sub.substitute(bindings) for sub in self.subscripts))

    def index_tuple(self, env: Mapping[str, Number]) -> Tuple[int, ...]:
        """Concrete integer subscripts under an index assignment."""
        return tuple(sub.evaluate_int(env) for sub in self.subscripts)

    def __str__(self) -> str:
        inner = ", ".join(str(sub) for sub in self.subscripts)
        return f"{self.array}[{inner}]"


@dataclass(frozen=True)
class Const(ScalarExpr):
    """A numeric literal."""

    value: Fraction

    @staticmethod
    def of(value: Number) -> "Const":
        return Const(Fraction(value) if not isinstance(value, float) else Fraction(value))

    def references(self) -> Tuple[ArrayRef, ...]:
        return ()

    def substitute_indices(self, bindings: Mapping[str, AffineExpr]) -> "Const":
        return self

    def __str__(self) -> str:
        if self.value.denominator == 1:
            return str(self.value.numerator)
        return f"{self.value.numerator}/{self.value.denominator}"


@dataclass(frozen=True)
class Param(ScalarExpr):
    """A scalar parameter such as ``alpha`` in SYR2K."""

    name: str

    def references(self) -> Tuple[ArrayRef, ...]:
        return ()

    def substitute_indices(self, bindings: Mapping[str, AffineExpr]) -> "Param":
        return self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IndexValue(ScalarExpr):
    """The value of an affine expression in the loop indices (e.g. ``A[2i] = i``)."""

    expr: AffineExpr

    def references(self) -> Tuple[ArrayRef, ...]:
        return ()

    def substitute_indices(self, bindings: Mapping[str, AffineExpr]) -> "IndexValue":
        return IndexValue(self.expr.substitute(bindings))

    def __str__(self) -> str:
        text = str(self.expr)
        return f"({text})" if ("+" in text[1:] or "-" in text[1:]) else text


@dataclass(frozen=True)
class Load(ScalarExpr):
    """The value of an array element."""

    ref: ArrayRef

    def references(self) -> Tuple[ArrayRef, ...]:
        return (self.ref,)

    def substitute_indices(self, bindings: Mapping[str, AffineExpr]) -> "Load":
        return Load(self.ref.substitute_indices(bindings))

    def __str__(self) -> str:
        return str(self.ref)


_OPERATORS: Mapping[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class BinOp(ScalarExpr):
    """A binary arithmetic operation."""

    op: str
    left: ScalarExpr
    right: ScalarExpr

    def __post_init__(self):
        if self.op not in _OPERATORS:
            raise IRError(f"unsupported operator {self.op!r}")

    def references(self) -> Tuple[ArrayRef, ...]:
        return self.left.references() + self.right.references()

    def substitute_indices(self, bindings: Mapping[str, AffineExpr]) -> "BinOp":
        return BinOp(
            self.op,
            self.left.substitute_indices(bindings),
            self.right.substitute_indices(bindings),
        )

    def apply(self, left_value: float, right_value: float) -> float:
        """Evaluate the operator on concrete operands."""
        return _OPERATORS[self.op](left_value, right_value)

    def __str__(self) -> str:
        left = str(self.left)
        right = str(self.right)
        if isinstance(self.left, BinOp) and self.op in "*/" and self.left.op in "+-":
            left = f"({left})"
        if isinstance(self.right, BinOp) and (
            (self.op in "*/" and self.right.op in "+-") or self.op in "-/"
        ):
            right = f"({right})"
        elif (
            self.op in "*/"
            and isinstance(self.right, IndexValue)
            and ("*" in right or "/" in right)
        ):
            # A scaled index value ("2*j") on the right of * or / must keep
            # its grouping, or reparsing reassociates "i * 2*j" as "(i*2)*j".
            right = f"({right})"
        return f"{left} {self.op} {right}"
