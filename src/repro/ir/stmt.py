"""Loop-body statements.

Three statement forms are enough for the whole paper:

* :class:`Assign` — an array assignment, the only statement in source
  programs;
* :class:`IfThen` — a guarded statement, used by the ownership-rule
  baseline code generator (`§2.1`);
* :class:`BlockRead` — a ``read A[*, v]`` block-transfer pseudo-op inserted
  by the NUMA code generator (`§7`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple, Union

from repro.ir.affine import AffineExpr
from repro.ir.scalar import ArrayRef, ScalarExpr

Number = Union[int, float]


class Statement:
    """Base class of loop-body statements."""

    __slots__ = ()

    def substitute_indices(self, bindings: Mapping[str, AffineExpr]) -> "Statement":
        """Rewrite every affine expression through ``bindings``."""
        raise NotImplementedError

    def array_refs(self) -> Tuple[Tuple[ArrayRef, bool], ...]:
        """All ``(reference, is_write)`` pairs in the statement."""
        raise NotImplementedError


@dataclass(frozen=True)
class Assign(Statement):
    """``lhs = rhs`` where ``lhs`` is an array reference."""

    lhs: ArrayRef
    rhs: ScalarExpr

    def substitute_indices(self, bindings: Mapping[str, AffineExpr]) -> "Assign":
        return Assign(
            self.lhs.substitute_indices(bindings), self.rhs.substitute_indices(bindings)
        )

    def array_refs(self) -> Tuple[Tuple[ArrayRef, bool], ...]:
        reads = tuple((ref, False) for ref in self.rhs.references())
        return ((self.lhs, True),) + reads

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"


@dataclass(frozen=True)
class ModEq:
    """The guard condition ``expr mod modulus == target``.

    This is exactly the shape of ownership tests for wrapped distributions:
    processor ``p`` owns column ``j - i`` when ``(j - i) mod P == p``.
    """

    expr: AffineExpr
    modulus: AffineExpr
    target: AffineExpr

    def substitute_indices(self, bindings: Mapping[str, AffineExpr]) -> "ModEq":
        return ModEq(
            self.expr.substitute(bindings),
            self.modulus.substitute(bindings),
            self.target.substitute(bindings),
        )

    def evaluate(self, env: Mapping[str, Number]) -> bool:
        """Evaluate the guard under a concrete environment."""
        modulus = self.modulus.evaluate_int(env)
        return self.expr.evaluate_int(env) % modulus == self.target.evaluate_int(env) % modulus

    def __str__(self) -> str:
        return f"({self.expr}) mod {self.modulus} == {self.target}"


@dataclass(frozen=True)
class IfThen(Statement):
    """A statement guarded by one or more ``ModEq`` conditions (conjunction)."""

    conditions: Tuple[ModEq, ...]
    body: Statement
    disjunctive: bool = False

    def substitute_indices(self, bindings: Mapping[str, AffineExpr]) -> "IfThen":
        return IfThen(
            tuple(cond.substitute_indices(bindings) for cond in self.conditions),
            self.body.substitute_indices(bindings),
            self.disjunctive,
        )

    def array_refs(self) -> Tuple[Tuple[ArrayRef, bool], ...]:
        return self.body.array_refs()

    def evaluate_guard(self, env: Mapping[str, Number]) -> bool:
        """True when the guarded body should execute."""
        if self.disjunctive:
            return any(cond.evaluate(env) for cond in self.conditions)
        return all(cond.evaluate(env) for cond in self.conditions)

    def __str__(self) -> str:
        joiner = " or " if self.disjunctive else " and "
        guard = joiner.join(str(cond) for cond in self.conditions)
        return f"if {guard}: {self.body}"


@dataclass(frozen=True)
class BlockRead(Statement):
    """``read A[*, v, ...]`` — fetch a whole slice with one block transfer.

    ``pattern`` has one entry per array dimension: ``None`` marks a wildcard
    dimension transferred in bulk, an affine expression pins the dimension.
    """

    array: str
    pattern: Tuple[Optional[AffineExpr], ...]

    def substitute_indices(self, bindings: Mapping[str, AffineExpr]) -> "BlockRead":
        return BlockRead(
            self.array,
            tuple(p.substitute(bindings) if p is not None else None for p in self.pattern),
        )

    def array_refs(self) -> Tuple[Tuple[ArrayRef, bool], ...]:
        return ()

    def fixed_values(self, env: Mapping[str, Number]) -> Tuple[Optional[int], ...]:
        """The pattern with affine entries evaluated (wildcards stay ``None``)."""
        return tuple(
            p.evaluate_int(env) if p is not None else None for p in self.pattern
        )

    def __str__(self) -> str:
        inner = ", ".join("*" if p is None else str(p) for p in self.pattern)
        return f"read {self.array}[{inner}]"
