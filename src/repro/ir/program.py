"""Whole-program container: arrays, distributions, parameters and the nest."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.errors import IRError
from repro.ir.affine import AffineExpr
from repro.ir.loop import LoopNest

ExprLike = Union[AffineExpr, str, int]


@dataclass(frozen=True)
class ArrayDecl:
    """An array declaration with symbolic extents.

    ``extents[d]`` is an affine expression in the program parameters giving
    the size of dimension ``d``; valid indices are ``0 .. extent-1``.
    ``element_bytes`` feeds the block-transfer cost model (the BLAS programs
    use 8-byte double precision, matching the paper's Butterfly numbers).
    """

    name: str
    extents: Tuple[AffineExpr, ...]
    element_bytes: int = 8

    @staticmethod
    def make(name: str, *extents: ExprLike, element_bytes: int = 8) -> "ArrayDecl":
        converted = tuple(
            e if isinstance(e, AffineExpr)
            else (AffineExpr.constant(e) if isinstance(e, int) else AffineExpr.parse(e))
            for e in extents
        )
        return ArrayDecl(name, converted, element_bytes)

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.extents)

    def shape(self, params: Mapping[str, int]) -> Tuple[int, ...]:
        """Concrete shape under parameter bindings."""
        return tuple(extent.evaluate_int(params) for extent in self.extents)

    def __str__(self) -> str:
        dims = ", ".join(str(e) for e in self.extents)
        return f"{self.name}({dims})"


@dataclass(frozen=True)
class Program:
    """A loop nest together with its array declarations and distributions.

    ``distributions`` maps array names to distribution objects (see
    :mod:`repro.distributions`); arrays without an entry are treated as
    replicated.  ``params`` holds default values for symbolic parameters —
    callers may override them at execution/simulation time.
    ``assumptions`` are parameter facts (``"N >= 2*b"``) declared with the
    program; the transformation driver uses them to simplify generated
    loop bounds.
    """

    nest: LoopNest
    arrays: Tuple[ArrayDecl, ...] = ()
    distributions: Mapping[str, object] = field(default_factory=dict)
    params: Mapping[str, int] = field(default_factory=dict)
    name: str = "program"
    assumptions: Tuple[str, ...] = ()

    def array(self, name: str) -> ArrayDecl:
        """Look up an array declaration by name."""
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise IRError(f"array {name!r} is not declared in program {self.name!r}")

    def has_array(self, name: str) -> bool:
        """True when ``name`` is declared."""
        return any(decl.name == name for decl in self.arrays)

    def distribution(self, name: str) -> Optional[object]:
        """The distribution of ``name`` or ``None`` when replicated/undistributed."""
        return self.distributions.get(name)

    def bound_params(self, overrides: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Default parameters merged with ``overrides``."""
        merged = dict(self.params)
        if overrides:
            merged.update(overrides)
        return merged

    def with_nest(self, nest: LoopNest, name: Optional[str] = None) -> "Program":
        """A copy of the program with a different loop nest."""
        return Program(
            nest=nest,
            arrays=self.arrays,
            distributions=self.distributions,
            params=self.params,
            name=name or self.name,
            assumptions=self.assumptions,
        )

    def with_params(self, **overrides: int) -> "Program":
        """A copy with updated default parameters."""
        merged = dict(self.params)
        merged.update(overrides)
        return Program(
            nest=self.nest,
            arrays=self.arrays,
            distributions=self.distributions,
            params=merged,
            name=self.name,
            assumptions=self.assumptions,
        )
