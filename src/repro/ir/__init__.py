"""Loop-nest intermediate representation.

The IR is the contract between the front end, the access-normalization pass
and the NUMA code generator: perfectly nested affine loops over named index
variables, with array assignments in the body, plus the guard and
block-transfer statements that code generation introduces.
"""

from repro.ir.affine import AffineExpr
from repro.ir.builder import affine, make_loop, make_nest, make_program, parse_assignment
from repro.ir.exprparse import bind_indices, parse_affine, parse_scalar, to_affine
from repro.ir.interp import (
    allocate_arrays,
    arrays_equal,
    evaluate_scalar,
    execute,
    execute_statement,
    run_fresh,
)
from repro.ir.loop import Loop, LoopNest
from repro.ir.printer import render_nest
from repro.ir.program import ArrayDecl, Program
from repro.ir.scalar import ArrayRef, BinOp, Const, IndexValue, Load, Param, ScalarExpr
from repro.ir.stmt import Assign, BlockRead, IfThen, ModEq, Statement
from repro.ir.validate import validate_nest, validate_program

__all__ = [
    "AffineExpr",
    "ArrayDecl",
    "ArrayRef",
    "Assign",
    "BinOp",
    "BlockRead",
    "Const",
    "IfThen",
    "IndexValue",
    "Load",
    "Loop",
    "LoopNest",
    "ModEq",
    "Param",
    "Program",
    "ScalarExpr",
    "Statement",
    "affine",
    "allocate_arrays",
    "arrays_equal",
    "bind_indices",
    "evaluate_scalar",
    "execute",
    "execute_statement",
    "make_loop",
    "make_nest",
    "make_program",
    "parse_affine",
    "parse_assignment",
    "parse_scalar",
    "render_nest",
    "run_fresh",
    "to_affine",
    "validate_nest",
    "validate_program",
]
