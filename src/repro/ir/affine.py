"""Affine expressions over loop indices and symbolic parameters.

An :class:`AffineExpr` is a linear combination of named variables plus a
constant, with exact rational coefficients.  Loop indices and symbolic size
parameters (``N``, ``b``, the processor count ``P`` ...) are both just
variable names; which names are loop indices is decided by the enclosing
loop nest.

Rational coefficients matter: rewriting a subscript through a non-unimodular
transformation produces expressions like ``(2v - u)/6`` whose coefficients
are fractions even though the value is integral at every lattice point.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

Number = Union[int, Fraction]


class AffineExpr:
    """An immutable affine expression ``sum(coeff_v * v) + const``."""

    __slots__ = ("_coeffs", "const")

    def __init__(self, coeffs: Mapping[str, Number] = (), const: Number = 0):
        cleaned: Dict[str, Fraction] = {}
        items = coeffs.items() if isinstance(coeffs, Mapping) else coeffs
        for name, value in items:
            value = Fraction(value)
            if value:
                cleaned[name] = cleaned.get(name, Fraction(0)) + value
        self._coeffs: Tuple[Tuple[str, Fraction], ...] = tuple(
            sorted((k, v) for k, v in cleaned.items() if v)
        )
        self.const = Fraction(const)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def var(name: str) -> "AffineExpr":
        """The expression consisting of a single variable."""
        return AffineExpr({name: 1})

    @staticmethod
    def constant(value: Number) -> "AffineExpr":
        """A constant expression."""
        return AffineExpr({}, value)

    @staticmethod
    def from_coeffs(
        names: Sequence[str], coefficients: Sequence[Number], const: Number = 0
    ) -> "AffineExpr":
        """Build from parallel sequences of names and coefficients."""
        return AffineExpr(dict(zip(names, coefficients)), const)

    @staticmethod
    def parse(text: str) -> "AffineExpr":
        """Parse an affine expression such as ``"i + 2*j - 1"`` or ``"(2v-u)/6"``."""
        from repro.ir.exprparse import parse_affine

        return parse_affine(text)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def coeffs(self) -> Dict[str, Fraction]:
        """The non-zero coefficients as a fresh dict."""
        return dict(self._coeffs)

    def coeff(self, name: str) -> Fraction:
        """The coefficient of ``name`` (0 when absent)."""
        for key, value in self._coeffs:
            if key == name:
                return value
        return Fraction(0)

    def variables(self) -> Tuple[str, ...]:
        """Names with non-zero coefficient, sorted."""
        return tuple(name for name, _ in self._coeffs)

    def is_constant(self) -> bool:
        """True when no variable appears."""
        return not self._coeffs

    def is_single_variable(self) -> bool:
        """True for expressions of the exact form ``v`` (coefficient 1, no const)."""
        return len(self._coeffs) == 1 and self._coeffs[0][1] == 1 and self.const == 0

    def depends_on(self, names: Iterable[str]) -> bool:
        """True when any of ``names`` has a non-zero coefficient."""
        wanted = set(names)
        return any(name in wanted for name, _ in self._coeffs)

    def coefficient_vector(self, names: Sequence[str]) -> Tuple[Fraction, ...]:
        """Coefficients in the order of ``names`` (missing names give 0)."""
        return tuple(self.coeff(name) for name in names)

    def is_integral(self) -> bool:
        """True when all coefficients and the constant are integers."""
        return self.const.denominator == 1 and all(
            value.denominator == 1 for _, value in self._coeffs
        )

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def __add__(self, other: Union["AffineExpr", Number]) -> "AffineExpr":
        other = _coerce(other)
        merged = dict(self._coeffs)
        for name, value in other._coeffs:
            merged[name] = merged.get(name, Fraction(0)) + value
        return AffineExpr(merged, self.const + other.const)

    def __radd__(self, other: Number) -> "AffineExpr":
        return self + other

    def __sub__(self, other: Union["AffineExpr", Number]) -> "AffineExpr":
        return self + (-_coerce(other))

    def __rsub__(self, other: Number) -> "AffineExpr":
        return _coerce(other) - self

    def __neg__(self) -> "AffineExpr":
        return self * -1

    def __mul__(self, factor: Number) -> "AffineExpr":
        factor = Fraction(factor)
        return AffineExpr(
            {name: value * factor for name, value in self._coeffs}, self.const * factor
        )

    def __rmul__(self, factor: Number) -> "AffineExpr":
        return self * factor

    def __truediv__(self, divisor: Number) -> "AffineExpr":
        divisor = Fraction(divisor)
        if divisor == 0:
            raise ZeroDivisionError("affine expression divided by zero")
        return self * (Fraction(1) / divisor)

    def substitute(self, bindings: Mapping[str, "AffineExpr"]) -> "AffineExpr":
        """Replace variables with affine expressions (simultaneously)."""
        result = AffineExpr({}, self.const)
        for name, value in self._coeffs:
            replacement = bindings.get(name)
            if replacement is None:
                result = result + AffineExpr({name: value})
            else:
                result = result + replacement * value
        return result

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        """The exact value under a variable assignment.

        Raises ``KeyError`` when a variable is unbound.
        """
        total = self.const
        for name, value in self._coeffs:
            total += value * Fraction(env[name])
        return total

    def evaluate_int(self, env: Mapping[str, Number]) -> int:
        """Evaluate and require an integer result."""
        value = self.evaluate(env)
        if value.denominator != 1:
            raise ValueError(f"expression {self} evaluated to non-integer {value}")
        return int(value)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = AffineExpr.constant(other)
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self._coeffs == other._coeffs and self.const == other.const

    def __hash__(self) -> int:
        return hash((self._coeffs, self.const))

    def __repr__(self) -> str:
        return f"AffineExpr({str(self)!r})"

    def __str__(self) -> str:
        parts = []
        ordered = [term for term in self._coeffs if term[1] > 0] + [
            term for term in self._coeffs if term[1] < 0
        ]
        for name, value in ordered:
            parts.append(_format_term(value, name, first=not parts))
        if self.const or not parts:
            parts.append(_format_term(self.const, "", first=not parts))
        return "".join(parts)


def _coerce(value: Union[AffineExpr, Number]) -> AffineExpr:
    if isinstance(value, AffineExpr):
        return value
    return AffineExpr.constant(value)


def _format_term(value: Fraction, name: str, first: bool) -> str:
    sign = "-" if value < 0 else ("" if first else "+")
    magnitude = abs(value)
    if not name:
        body = _format_fraction(magnitude)
    elif magnitude == 1:
        body = name
    else:
        body = f"{_format_fraction(magnitude)}*{name}"
    return f"{sign}{body}"


def _format_fraction(value: Fraction) -> str:
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"
