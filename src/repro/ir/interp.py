"""Reference interpreter for programs.

This is the semantic ground truth of the library: every loop transformation
and every generated node program is validated by executing it here and
comparing array contents against the original program.  Clarity therefore
beats speed; the NUMA simulator has its own faster accounting paths.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.errors import IRError
from repro.ir.program import Program
from repro.ir.scalar import BinOp, Const, IndexValue, Load, Param, ScalarExpr
from repro.ir.stmt import Assign, BlockRead, IfThen, Statement

Arrays = Dict[str, np.ndarray]


def allocate_arrays(
    program: Program,
    params: Optional[Mapping[str, int]] = None,
    *,
    init: str = "random",
    seed: int = 0,
) -> Arrays:
    """Allocate numpy arrays for every declared array.

    ``init`` is ``"random"`` (reproducible uniform values), ``"zeros"``,
    ``"index"`` (each element set to a distinct value derived from its flat
    position — handy for debugging) or ``"smallint"`` (small random integers
    stored as floats; sums and products of these stay exactly representable,
    which lets differential tests compare array contents bit for bit).
    """
    bound = program.bound_params(params)
    rng = np.random.default_rng(seed)
    arrays: Arrays = {}
    for decl in program.arrays:
        shape = decl.shape(bound)
        if init == "random":
            arrays[decl.name] = rng.uniform(-1.0, 1.0, size=shape)
        elif init == "smallint":
            arrays[decl.name] = rng.integers(-4, 5, size=shape).astype(float)
        elif init == "zeros":
            arrays[decl.name] = np.zeros(shape)
        elif init == "index":
            arrays[decl.name] = np.arange(np.prod(shape), dtype=float).reshape(shape)
        else:
            raise ValueError(f"unknown init mode {init!r}")
    return arrays


def evaluate_scalar(expr: ScalarExpr, env: Mapping[str, float], arrays: Arrays) -> float:
    """Evaluate a scalar expression tree under ``env``."""
    if isinstance(expr, Const):
        return float(expr.value)
    if isinstance(expr, Param):
        try:
            return float(env[expr.name])
        except KeyError:
            raise IRError(f"unbound symbol {expr.name!r} in loop body") from None
    if isinstance(expr, IndexValue):
        value = expr.expr.evaluate(env)
        return float(value)
    if isinstance(expr, Load):
        return float(arrays[expr.ref.array][expr.ref.index_tuple(env)])
    if isinstance(expr, BinOp):
        left = evaluate_scalar(expr.left, env, arrays)
        right = evaluate_scalar(expr.right, env, arrays)
        return expr.apply(left, right)
    raise IRError(f"cannot evaluate expression node {expr!r}")


def execute_statement(statement: Statement, env: Mapping[str, float], arrays: Arrays) -> None:
    """Execute one statement under a concrete environment."""
    if isinstance(statement, Assign):
        value = evaluate_scalar(statement.rhs, env, arrays)
        arrays[statement.lhs.array][statement.lhs.index_tuple(env)] = value
        return
    if isinstance(statement, IfThen):
        if statement.evaluate_guard(env):
            execute_statement(statement.body, env, arrays)
        return
    if isinstance(statement, BlockRead):
        return  # Data movement only; arrays are globally visible here.
    raise IRError(f"cannot execute statement {statement!r}")


def execute(
    program: Program,
    arrays: Arrays,
    params: Optional[Mapping[str, int]] = None,
) -> Arrays:
    """Run the program's loop nest in place over ``arrays`` and return them.

    Per-level prologue statements (block transfers inserted by the NUMA code
    generator) execute once per iteration of their loop, before the inner
    loops — semantically no-ops here, but kept in the walk so generated node
    programs are runnable unchanged.
    """
    bound = program.bound_params(params)
    _execute_level(program.nest, 0, dict(bound), arrays)
    return arrays


def _execute_level(nest, level: int, env: Dict[str, int], arrays: Arrays) -> None:
    if level == nest.depth:
        for statement in nest.body:
            execute_statement(statement, env, arrays)
        return
    loop = nest.loops[level]
    for value in loop.iter_values(env):
        env[loop.index] = value
        for statement in loop.prologue:
            execute_statement(statement, env, arrays)
        _execute_level(nest, level + 1, env, arrays)
    env.pop(loop.index, None)


def run_fresh(
    program: Program,
    params: Optional[Mapping[str, int]] = None,
    *,
    seed: int = 0,
) -> Arrays:
    """Allocate arrays, execute, and return the result (convenience)."""
    arrays = allocate_arrays(program, params, seed=seed)
    return execute(program, arrays, params)


def arrays_equal(left: Arrays, right: Arrays, *, tol: float = 1e-9) -> bool:
    """True when both dicts hold the same arrays with equal contents."""
    if left.keys() != right.keys():
        return False
    return all(np.allclose(left[name], right[name], atol=tol) for name in left)
