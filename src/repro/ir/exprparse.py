"""A small expression grammar shared by the builder API and the DSL front end.

The grammar covers everything appearing in the paper's programs::

    expr   := term (('+'|'-') term)*
    term   := factor (('*'|'/') factor)*
    factor := ('-'|'+')* atom
    atom   := NUMBER | NUMBER IDENT | IDENT | IDENT '[' expr {',' expr} ']'
            | '(' expr ')'

``NUMBER IDENT`` supports the paper's implicit-multiplication style
(``2i + 4j``).  Parsing produces a :class:`~repro.ir.scalar.ScalarExpr`
tree; :func:`to_affine` converts affine trees to
:class:`~repro.ir.affine.AffineExpr`, and :func:`bind_indices` collapses
index-only subtrees so that loop transformations can rewrite them.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Iterable, List, NamedTuple, Optional, Set

from repro.errors import NonAffineError, ParseError
from repro.ir.affine import AffineExpr
from repro.ir.scalar import ArrayRef, BinOp, Const, IndexValue, Load, Param, ScalarExpr


class Token(NamedTuple):
    """A lexical token with its position (for error messages)."""

    kind: str
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)|(?P<op>[-+*/(),\[\]]))"
)


def tokenize(text: str) -> List[Token]:
    """Tokenize an expression string; raises :class:`ParseError` on junk."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected character {remainder[0]!r} in expression", column=pos)
        if match.group("num"):
            tokens.append(Token("num", match.group("num"), match.start("num")))
        elif match.group("ident"):
            tokens.append(Token("ident", match.group("ident"), match.start("ident")))
        else:
            tokens.append(Token("op", match.group("op"), match.start("op")))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[Token], source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0

    def peek(self) -> Optional[Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of expression in {self.source!r}")
        self.index += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.advance()
        if token.text != text:
            raise ParseError(
                f"expected {text!r} but found {token.text!r} in {self.source!r}",
                column=token.pos,
            )
        return token

    def parse_expr(self) -> ScalarExpr:
        node = self.parse_term()
        while True:
            token = self.peek()
            if token and token.text in ("+", "-"):
                self.advance()
                node = BinOp(token.text, node, self.parse_term())
            else:
                return node

    def parse_term(self) -> ScalarExpr:
        node = self.parse_factor()
        while True:
            token = self.peek()
            if token and token.text in ("*", "/"):
                self.advance()
                node = BinOp(token.text, node, self.parse_factor())
            else:
                return node

    def parse_factor(self) -> ScalarExpr:
        token = self.peek()
        if token and token.text == "-":
            self.advance()
            return BinOp("-", Const.of(0), self.parse_factor())
        if token and token.text == "+":
            self.advance()
            return self.parse_factor()
        return self.parse_atom()

    def parse_atom(self) -> ScalarExpr:
        token = self.advance()
        if token.kind == "num":
            value: ScalarExpr = Const.of(int(token.text))
            follow = self.peek()
            if follow and follow.kind == "ident":
                # Implicit multiplication: "2i" means 2 * i.
                self.advance()
                value = BinOp("*", value, self._identifier(follow))
            return value
        if token.kind == "ident":
            return self._identifier(token)
        if token.text == "(":
            inner = self.parse_expr()
            self.expect(")")
            return inner
        raise ParseError(f"unexpected token {token.text!r} in {self.source!r}", column=token.pos)

    def _identifier(self, token: Token) -> ScalarExpr:
        follow = self.peek()
        if follow and follow.text == "[":
            self.advance()
            subscripts = [self.parse_expr()]
            while self.peek() and self.peek().text == ",":
                self.advance()
                subscripts.append(self.parse_expr())
            self.expect("]")
            affine_subs = tuple(to_affine(sub) for sub in subscripts)
            return Load(ArrayRef(token.text, affine_subs))
        return Param(token.text)


def parse_scalar(text: str) -> ScalarExpr:
    """Parse an expression string into a scalar expression tree."""
    parser = _Parser(tokenize(text), text)
    node = parser.parse_expr()
    leftover = parser.peek()
    if leftover is not None:
        raise ParseError(
            f"trailing input {leftover.text!r} in {text!r}", column=leftover.pos
        )
    return node


def to_affine(expr: ScalarExpr) -> AffineExpr:
    """Convert an affine scalar tree to an :class:`AffineExpr`.

    Raises :class:`NonAffineError` for array loads, products of variables or
    division by a non-constant.
    """
    if isinstance(expr, Const):
        return AffineExpr.constant(expr.value)
    if isinstance(expr, Param):
        return AffineExpr.var(expr.name)
    if isinstance(expr, IndexValue):
        return expr.expr
    if isinstance(expr, Load):
        raise NonAffineError(f"array reference {expr} is not affine")
    if isinstance(expr, BinOp):
        if expr.op == "+":
            return to_affine(expr.left) + to_affine(expr.right)
        if expr.op == "-":
            return to_affine(expr.left) - to_affine(expr.right)
        left = to_affine(expr.left)
        right = to_affine(expr.right)
        if expr.op == "*":
            if left.is_constant():
                return right * left.const
            if right.is_constant():
                return left * right.const
            raise NonAffineError(f"product of variables in {expr} is not affine")
        if expr.op == "/":
            if right.is_constant() and right.const != 0:
                return left / right.const
            raise NonAffineError(f"division by non-constant in {expr} is not affine")
    raise NonAffineError(f"cannot convert {expr!r} to an affine expression")


def parse_affine(text: str) -> AffineExpr:
    """Parse a string directly into an affine expression."""
    return to_affine(parse_scalar(text))


def bind_indices(expr: ScalarExpr, index_names: Iterable[str]) -> ScalarExpr:
    """Collapse index-dependent affine subtrees into :class:`IndexValue` nodes.

    After parsing, a bare index variable in the loop body is a
    :class:`Param` node, which loop transformations would not rewrite.  This
    pass finds maximal load-free affine subtrees that mention a loop index
    and replaces them by :class:`IndexValue`, making the body closed under
    index substitution.
    """
    names: Set[str] = set(index_names)

    def rewrite(node: ScalarExpr) -> ScalarExpr:
        affine = _try_affine(node)
        if affine is not None and any(v in names for v in affine.variables()):
            return IndexValue(affine)
        if isinstance(node, BinOp):
            return BinOp(node.op, rewrite(node.left), rewrite(node.right))
        return node

    return rewrite(expr)


def _try_affine(node: ScalarExpr) -> Optional[AffineExpr]:
    try:
        return to_affine(node)
    except NonAffineError:
        return None
