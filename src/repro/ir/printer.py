"""Pseudo-code rendering of loop nests, in the paper's display style."""

from __future__ import annotations

from typing import List

from repro.ir.loop import LoopNest
from repro.ir.stmt import Statement


def render_nest(nest: LoopNest, indent: str = "    ") -> str:
    """Render a loop nest as indented pseudo-code.

    The output mirrors the paper's figures: one ``for`` line per level,
    statements at the innermost indentation.
    """
    lines: List[str] = []
    for depth, loop in enumerate(nest.loops):
        lines.append(indent * depth + str(loop))
        for statement in loop.prologue:
            lines.extend(_render_statement(statement, indent * (depth + 1), indent))
    body_indent = indent * nest.depth
    for statement in nest.body:
        lines.extend(_render_statement(statement, body_indent, indent))
    return "\n".join(lines)


def _render_statement(statement: Statement, prefix: str, indent: str) -> List[str]:
    from repro.ir.stmt import IfThen

    if isinstance(statement, IfThen):
        joiner = " or " if statement.disjunctive else " and "
        guard = joiner.join(str(cond) for cond in statement.conditions)
        lines = [f"{prefix}if {guard}:"]
        lines.extend(_render_statement(statement.body, prefix + indent, indent))
        return lines
    return [prefix + str(statement)]
