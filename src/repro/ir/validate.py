"""Structural validation of loop nests and programs."""

from __future__ import annotations

from typing import List, Set

from repro.errors import IRError
from repro.ir.loop import LoopNest
from repro.ir.program import Program


def validate_nest(nest: LoopNest, params: Set[str] = frozenset()) -> None:
    """Check the structural invariants of a loop nest.

    * index names are distinct;
    * each bound references only outer indices and parameters;
    * every subscript references only indices and parameters.

    Raises :class:`IRError` with a descriptive message on the first failure.
    Unknown free symbols are allowed when ``params`` is empty (they are
    treated as implicit parameters); when ``params`` is non-empty they are
    errors.
    """
    seen: List[str] = []
    for loop in nest.loops:
        if loop.index in seen:
            raise IRError(f"duplicate loop index {loop.index!r}")
        allowed = set(seen) | set(params)
        for expr in loop.lower + loop.upper:
            for name in expr.variables():
                if name in seen:
                    continue
                if params and name not in params:
                    raise IRError(
                        f"bound of loop {loop.index!r} references unknown symbol {name!r}"
                    )
                if name == loop.index or name in _inner_indices(nest, loop.index):
                    raise IRError(
                        f"bound of loop {loop.index!r} references non-outer index {name!r}"
                    )
        if loop.align is not None:
            for name in loop.align.variables():
                if name == loop.index or name in _inner_indices(nest, loop.index):
                    raise IRError(
                        f"alignment of loop {loop.index!r} references non-outer index {name!r}"
                    )
        del allowed
        seen.append(loop.index)

    index_set = set(seen)
    for ref, _ in nest.array_refs():
        for sub in ref.subscripts:
            for name in sub.variables():
                if name in index_set:
                    continue
                if params and name not in params:
                    raise IRError(
                        f"subscript of {ref.array!r} references unknown symbol {name!r}"
                    )


def _inner_indices(nest: LoopNest, index: str) -> Set[str]:
    names = list(nest.indices)
    position = names.index(index)
    return set(names[position + 1 :])


def validate_program(program: Program) -> None:
    """Validate a whole program: nest structure, declarations, ranks."""
    params = set(program.params)
    validate_nest(program.nest, params if params else frozenset())
    for ref, _ in program.nest.array_refs():
        if not program.has_array(ref.array):
            raise IRError(f"array {ref.array!r} used but not declared")
        decl = program.array(ref.array)
        if decl.rank != ref.rank:
            raise IRError(
                f"array {ref.array!r} declared rank {decl.rank} but referenced "
                f"with {ref.rank} subscripts"
            )
    for name in program.distributions:
        if not program.has_array(name):
            raise IRError(f"distribution given for undeclared array {name!r}")
