"""Structural validation of loop nests and programs."""

from __future__ import annotations

from typing import FrozenSet, List, Set

from repro.errors import IRError
from repro.ir.loop import LoopNest
from repro.ir.program import Program


def validate_nest(
    nest: LoopNest,
    params: Set[str] = frozenset(),
    *,
    foreign_indices: FrozenSet[str] = frozenset(),
) -> None:
    """Check the structural invariants of a loop nest.

    * index names are distinct (and disjoint from ``foreign_indices``);
    * each bound and alignment references only outer indices and
      parameters — never the loop's own index, an inner index, or an
      index of another nest;
    * every subscript references only this nest's indices and parameters.

    Raises :class:`IRError` with a descriptive message on the first
    failure.  Unknown free symbols are allowed when ``params`` is empty
    (they are treated as implicit parameters); when ``params`` is
    non-empty they are errors.  ``foreign_indices`` names loop indices of
    *other* nests in the same compilation: referencing one from a bound,
    alignment, or subscript is always an error, regardless of ``params``
    (an implicit parameter must not capture another nest's iterator).
    """
    index_set = set(nest.indices)
    seen: List[str] = []
    for loop in nest.loops:
        if loop.index in seen:
            raise IRError(f"duplicate loop index {loop.index!r}")
        if loop.index in foreign_indices:
            raise IRError(
                f"loop index {loop.index!r} collides with a loop index of "
                "another nest"
            )
        allowed = set(seen) | set(params)
        for kind, exprs in (
            ("bound", loop.lower + loop.upper),
            ("alignment", (loop.align,) if loop.align is not None else ()),
        ):
            for expr in exprs:
                for name in expr.variables():
                    if name in allowed:
                        continue
                    if name == loop.index or name in index_set:
                        raise IRError(
                            f"{kind} of loop {loop.index!r} references "
                            f"non-outer index {name!r}"
                        )
                    if name in foreign_indices:
                        raise IRError(
                            f"{kind} of loop {loop.index!r} references index "
                            f"{name!r} of another nest"
                        )
                    if params:
                        raise IRError(
                            f"{kind} of loop {loop.index!r} references "
                            f"unknown symbol {name!r}"
                        )
        seen.append(loop.index)

    for ref, _ in nest.array_refs():
        for sub in ref.subscripts:
            for name in sub.variables():
                if name in index_set:
                    continue
                if name in foreign_indices:
                    raise IRError(
                        f"subscript of {ref.array!r} references index "
                        f"{name!r} of another nest"
                    )
                if params and name not in params:
                    raise IRError(
                        f"subscript of {ref.array!r} references unknown "
                        f"symbol {name!r}"
                    )


def validate_program(
    program: Program, *, foreign_indices: FrozenSet[str] = frozenset()
) -> None:
    """Validate a whole program: nest structure, declarations, ranks."""
    params = set(program.params)
    validate_nest(
        program.nest,
        params if params else frozenset(),
        foreign_indices=foreign_indices,
    )
    for ref, _ in program.nest.array_refs():
        if not program.has_array(ref.array):
            raise IRError(f"array {ref.array!r} used but not declared")
        decl = program.array(ref.array)
        if decl.rank != ref.rank:
            raise IRError(
                f"array {ref.array!r} declared rank {decl.rank} but referenced "
                f"with {ref.rank} subscripts"
            )
    for name in program.distributions:
        if not program.has_array(name):
            raise IRError(f"distribution given for undeclared array {name!r}")
