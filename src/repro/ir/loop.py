"""Loops and loop nests.

A :class:`Loop` iterates an index over ``max(lower...) .. min(upper...)``
with a positive integer step.  Two stepping disciplines exist:

* *anchored* (``align is None``): the first iteration is the effective lower
  bound itself — the semantics of a source-program ``for i = lb, ub, s``;
* *aligned* (``align`` set): iterations satisfy
  ``i === align (mod step)`` — the semantics required when scanning the image
  lattice of a non-unimodular transformation, and also of SPMD wrapped
  distribution (``i === p (mod P)``).

Bounds are affine expressions that may have rational coefficients (they come
from Fourier-Motzkin elimination); effective bounds take ``ceil`` of lower
and ``floor`` of upper values.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import IRError
from repro.ir.affine import AffineExpr
from repro.ir.scalar import ArrayRef
from repro.ir.stmt import Statement
from repro.linalg.lattice import first_aligned_at_least

Number = Union[int, Fraction]
ExprLike = Union[AffineExpr, str, int]


def _as_affine(value: ExprLike) -> AffineExpr:
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, int):
        return AffineExpr.constant(value)
    return AffineExpr.parse(value)


def _ceil(value: Fraction) -> int:
    return -((-value.numerator) // value.denominator)


def _floor(value: Fraction) -> int:
    return value.numerator // value.denominator


@dataclass(frozen=True)
class Loop:
    """One level of a loop nest.

    ``prologue`` statements execute once per iteration of this loop, before
    control enters the inner loops — the hook the NUMA code generator uses
    to hoist ``read A[*, v]`` block transfers to the right level.
    """

    index: str
    lower: Tuple[AffineExpr, ...]
    upper: Tuple[AffineExpr, ...]
    step: int = 1
    align: Optional[AffineExpr] = None
    prologue: Tuple[Statement, ...] = ()

    @staticmethod
    def make(
        index: str,
        lower: Union[ExprLike, Sequence[ExprLike]],
        upper: Union[ExprLike, Sequence[ExprLike]],
        step: int = 1,
        align: Optional[ExprLike] = None,
        prologue: Sequence[Statement] = (),
    ) -> "Loop":
        """Build a loop, accepting strings/ints/affine expressions for bounds."""
        lower_exprs = _bound_tuple(lower)
        upper_exprs = _bound_tuple(upper)
        if step <= 0:
            raise IRError(f"loop {index!r} must have a positive step, got {step}")
        align_expr = _as_affine(align) if align is not None else None
        return Loop(index, lower_exprs, upper_exprs, step, align_expr, tuple(prologue))

    def with_prologue(self, prologue: Sequence[Statement]) -> "Loop":
        """A copy of this loop with the given prologue statements."""
        return Loop(self.index, self.lower, self.upper, self.step, self.align,
                    tuple(prologue))

    def lower_value(self, env: Mapping[str, Number]) -> int:
        """The effective (integer) lower bound under ``env``."""
        return max(_ceil(expr.evaluate(env)) for expr in self.lower)

    def upper_value(self, env: Mapping[str, Number]) -> int:
        """The effective (integer) upper bound under ``env``."""
        return min(_floor(expr.evaluate(env)) for expr in self.upper)

    def first_iteration(self, env: Mapping[str, Number]) -> int:
        """The first value the index takes (may exceed the upper bound)."""
        low = self.lower_value(env)
        if self.align is None:
            return low
        offset = self.align.evaluate_int(env) % self.step
        return first_aligned_at_least(low, offset, self.step)

    def iter_values(self, env: Mapping[str, Number]) -> Iterator[int]:
        """All values of the index for fixed outer environment."""
        high = self.upper_value(env)
        value = self.first_iteration(env)
        while value <= high:
            yield value
            value += self.step

    def trip_count(self, env: Mapping[str, Number]) -> int:
        """Number of iterations under ``env`` (0 when empty)."""
        high = self.upper_value(env)
        first = self.first_iteration(env)
        if first > high:
            return 0
        return (high - first) // self.step + 1

    def __str__(self) -> str:
        lower = _format_bound(self.lower, "max")
        upper = _format_bound(self.upper, "min")
        suffix = ""
        if self.step != 1:
            suffix = f", step {self.step}"
        if self.align is not None:
            suffix += f"  /* {self.index} === {self.align} (mod {self.step}) */"
        return f"for {self.index} = {lower}, {upper}{suffix}"


def _bound_tuple(value: Union[ExprLike, Sequence[ExprLike]]) -> Tuple[AffineExpr, ...]:
    if isinstance(value, (AffineExpr, str, int)):
        return (_as_affine(value),)
    exprs = tuple(_as_affine(v) for v in value)
    if not exprs:
        raise IRError("a loop bound needs at least one expression")
    return exprs


def _format_bound(exprs: Tuple[AffineExpr, ...], combiner: str) -> str:
    if len(exprs) == 1:
        return str(exprs[0])
    inner = ", ".join(str(e) for e in exprs)
    return f"{combiner}({inner})"


@dataclass(frozen=True)
class LoopNest:
    """A perfectly nested loop with a straight-line body."""

    loops: Tuple[Loop, ...]
    body: Tuple[Statement, ...]

    @property
    def depth(self) -> int:
        """Nesting depth."""
        return len(self.loops)

    @property
    def indices(self) -> Tuple[str, ...]:
        """Loop index names, outermost first."""
        return tuple(loop.index for loop in self.loops)

    def array_refs(self) -> List[Tuple[ArrayRef, bool]]:
        """Every ``(reference, is_write)`` in the body, in statement order."""
        refs: List[Tuple[ArrayRef, bool]] = []
        for statement in self.body:
            refs.extend(statement.array_refs())
        return refs

    def array_names(self) -> List[str]:
        """Names of all arrays referenced, in first-appearance order."""
        seen: List[str] = []
        for ref, _ in self.array_refs():
            if ref.array not in seen:
                seen.append(ref.array)
        return seen

    def free_variables(self) -> Tuple[str, ...]:
        """Symbols used in bounds/subscripts that are not loop indices."""
        bound = set(self.indices)
        free: List[str] = []

        def note(expr: AffineExpr) -> None:
            for name in expr.variables():
                if name not in bound and name not in free:
                    free.append(name)

        for loop in self.loops:
            for expr in loop.lower + loop.upper:
                note(expr)
            if loop.align is not None:
                note(loop.align)
        for ref, _ in self.array_refs():
            for sub in ref.subscripts:
                note(sub)
        return tuple(free)

    def iterate(self, params: Mapping[str, int]) -> Iterator[Dict[str, int]]:
        """Enumerate the iteration space in lexicographic order.

        Yields one environment dict per iteration containing the parameters
        and the current index values.  The dict is reused between iterations
        for speed; copy it if you need to retain it.
        """
        env: Dict[str, int] = dict(params)
        yield from self._iterate_level(0, env)

    def _iterate_level(self, level: int, env: Dict[str, int]) -> Iterator[Dict[str, int]]:
        if level == self.depth:
            yield env
            return
        loop = self.loops[level]
        for value in loop.iter_values(env):
            env[loop.index] = value
            yield from self._iterate_level(level + 1, env)
        env.pop(loop.index, None)

    def iteration_count(self, params: Mapping[str, int]) -> int:
        """Total number of iterations (full enumeration; exact)."""
        return sum(1 for _ in self.iterate(params))

    def with_body(self, body: Sequence[Statement]) -> "LoopNest":
        """A copy of the nest with a different body."""
        return LoopNest(self.loops, tuple(body))

    def with_loops(self, loops: Sequence[Loop]) -> "LoopNest":
        """A copy of the nest with different loops."""
        return LoopNest(tuple(loops), self.body)

    def __str__(self) -> str:
        from repro.ir.printer import render_nest

        return render_nest(self)
