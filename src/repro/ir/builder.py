"""Convenience builders for constructing loop nests programmatically.

The DSL front end (:mod:`repro.lang`) is the friendlier way to write whole
programs; this module is the programmatic equivalent used heavily in tests
and in the BLAS workload definitions::

    nest = make_nest(
        loops=[("i", 0, "N1-1"), ("j", "i", "i+b-1"), ("k", 0, "N2-1")],
        body=["B[i, j-i] = B[i, j-i] + A[i, j+k]"],
    )
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ParseError
from repro.ir.affine import AffineExpr
from repro.ir.exprparse import bind_indices, parse_scalar
from repro.ir.loop import ExprLike, Loop, LoopNest
from repro.ir.program import ArrayDecl, Program
from repro.ir.scalar import Load
from repro.ir.stmt import Assign, Statement

LoopSpec = Union[
    Tuple[str, ExprLike, ExprLike],
    Tuple[str, ExprLike, ExprLike, int],
    Loop,
]


def parse_assignment(text: str, index_names: Sequence[str]) -> Assign:
    """Parse ``"B[i, j] = B[i, j] + A[i, k]"`` into an :class:`Assign`.

    Bare loop indices on the right-hand side are bound as index values so
    that subsequent loop transformations rewrite them correctly.
    """
    if text.count("=") != 1:
        raise ParseError(f"an assignment needs exactly one '=': {text!r}")
    lhs_text, rhs_text = text.split("=")
    lhs = parse_scalar(lhs_text.strip())
    if not isinstance(lhs, Load):
        raise ParseError(f"assignment target must be an array reference: {lhs_text!r}")
    rhs = bind_indices(parse_scalar(rhs_text.strip()), index_names)
    return Assign(lhs.ref, rhs)


def make_loop(spec: LoopSpec) -> Loop:
    """Build one :class:`Loop` from a loop spec tuple.

    A spec is ``(index, lower, upper)`` or ``(index, lower, upper, step)``
    with string/int/affine bounds (``"max(...)"``/``"min(...)"`` strings are
    split into bound lists); an existing :class:`Loop` passes through.  This
    is the single conversion point shared by :func:`make_nest` and the fuzz
    program generator.
    """
    if isinstance(spec, Loop):
        return spec
    index, lower, upper = spec[0], spec[1], spec[2]
    step = spec[3] if len(spec) > 3 else 1
    return Loop.make(index, _split_bound(lower), _split_bound(upper), step)


def make_nest(
    loops: Sequence[LoopSpec],
    body: Sequence[Union[str, Statement]],
) -> LoopNest:
    """Build a loop nest from loop specs and statement strings."""
    built_loops: List[Loop] = [make_loop(spec) for spec in loops]
    index_names = [loop.index for loop in built_loops]
    statements: List[Statement] = []
    for item in body:
        if isinstance(item, Statement):
            statements.append(item)
        else:
            statements.append(parse_assignment(item, index_names))
    return LoopNest(tuple(built_loops), tuple(statements))


def _split_bound(bound: ExprLike) -> Union[ExprLike, List[str]]:
    """Support ``"max(a, b, c)"`` / ``"min(a, b)"`` bound strings."""
    if isinstance(bound, str):
        stripped = bound.strip()
        lowered = stripped.lower()
        if lowered.startswith(("max(", "min(")) and stripped.endswith(")"):
            inner = stripped[4:-1]
            return _split_top_level(inner)
    return bound


def _split_top_level(text: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    current = []
    for char in text:
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    parts.append("".join(current).strip())
    return parts


def make_program(
    loops: Sequence[LoopSpec],
    body: Sequence[Union[str, Statement]],
    arrays: Sequence[Union[ArrayDecl, Tuple]] = (),
    distributions: Optional[Mapping[str, object]] = None,
    params: Optional[Mapping[str, int]] = None,
    name: str = "program",
) -> Program:
    """Build a whole program in one call (see :func:`make_nest`)."""
    decls = tuple(
        decl if isinstance(decl, ArrayDecl) else ArrayDecl.make(decl[0], *decl[1:])
        for decl in arrays
    )
    return Program(
        nest=make_nest(loops, body),
        arrays=decls,
        distributions=dict(distributions or {}),
        params=dict(params or {}),
        name=name,
    )


def affine(text: Union[str, int, AffineExpr]) -> AffineExpr:
    """Shorthand to build an affine expression from a string or int."""
    if isinstance(text, AffineExpr):
        return text
    if isinstance(text, int):
        return AffineExpr.constant(text)
    return AffineExpr.parse(text)
