"""The front-end mini-language.

The paper's compiler accepts FORTRAN-77 with data-distribution
declarations.  Our equivalent is a small indentation-structured language in
the exact display style of the paper's figures::

    program gemm
    param N = 400
    real C(N, N) distribute (*, wrapped)
    real A(N, N) distribute (*, wrapped)
    real B(N, N) distribute (*, wrapped)

    for i = 0, N-1
        for j = 0, N-1
            for k = 0, N-1
                C[i, j] = C[i, j] + A[i, k] * B[k, j]

Rules:

* ``param NAME [= INT]`` declares a symbolic size parameter;
* ``assume FACT`` records a parameter fact (``assume N >= 2*b``) used to
  simplify generated loop bounds;
* ``real NAME(e1, e2, ...)`` declares an array with affine extents, with an
  optional ``distribute (spec, ...)`` clause whose per-dimension specs are
  ``*`` (not distributed), ``wrapped`` or ``block``/``blocked``;
* ``for IDX = LOW, HIGH [, step S]`` opens a loop; bounds may use
  ``max(...)``/``min(...)``;
* assignments are array assignments; the nest must be *perfect* (statements
  only at the innermost level), which is what the restructuring theory
  requires;
* nesting is by indentation (spaces only).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.distributions import BlockCyclic, Blocked, Distribution, Wrapped
from repro.errors import ParseError, SemanticError
from repro.ir.builder import _split_top_level, parse_assignment
from repro.ir.loop import Loop, LoopNest
from repro.ir.program import ArrayDecl, Program
from repro.ir.validate import validate_program

_FOR_RE = re.compile(
    r"^for\s+(?P<index>[A-Za-z_]\w*)\s*=\s*(?P<rest>.+)$"
)
_PARAM_RE = re.compile(
    r"^param\s+(?P<name>[A-Za-z_]\w*)\s*(?:=\s*(?P<value>-?\d+))?$"
)
_ARRAY_HEAD_RE = re.compile(r"^real\s+(?P<name>[A-Za-z_]\w*)\s*\(")


def _balanced(text: str, start: int) -> Optional[int]:
    """Index just past the ')' closing the '(' at ``start`` (None if none)."""
    depth = 0
    for position in range(start, len(text)):
        if text[position] == "(":
            depth += 1
        elif text[position] == ")":
            depth -= 1
            if depth == 0:
                return position + 1
    return None


def _match_array(text: str):
    """Parse ``real NAME(extents...) [distribute (spec...)]`` manually.

    A regex cannot do this because distribution specs may nest parentheses
    (``cyclic(4)``) and extents may contain parenthesized expressions.
    Returns ``(name, extents_text, dist_text_or_None)`` or ``None``.
    """
    head = _ARRAY_HEAD_RE.match(text)
    if not head:
        return None
    open_paren = text.index("(", head.start())
    close = _balanced(text, open_paren)
    if close is None:
        return None
    extents = text[open_paren + 1 : close - 1]
    rest = text[close:].strip()
    if not rest:
        return head.group("name"), extents, None
    if not rest.startswith("distribute"):
        return None
    rest = rest[len("distribute"):].strip()
    if not rest.startswith("("):
        return None
    dist_close = _balanced(rest, 0)
    if dist_close is None or rest[dist_close:].strip():
        return None
    return head.group("name"), extents, rest[1 : dist_close - 1]
_PROGRAM_RE = re.compile(r"^program\s+(?P<name>[\w.-]+)$")
_ASSUME_RE = re.compile(r"^assume\s+(?P<fact>.+)$")


@dataclass
class _Line:
    number: int
    indent: int
    text: str


def _logical_lines(source: str) -> List[_Line]:
    lines: List[_Line] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        without_comment = raw.split("#", 1)[0].split("!", 1)[0]
        stripped = without_comment.strip()
        if not stripped:
            continue
        if "\t" in without_comment[: len(without_comment) - len(without_comment.lstrip())]:
            raise ParseError("indent with spaces, not tabs", line=number)
        indent = len(without_comment) - len(without_comment.lstrip(" "))
        lines.append(_Line(number=number, indent=indent, text=stripped))
    return lines


_BLOCK_CYCLIC_RE = re.compile(r"^(?:block)?cyclic\((?P<size>\d+)\)$")


def _parse_distribution(spec: str, line: int) -> Optional[Distribution]:
    parts = [part.strip().lower() for part in spec.split(",")]
    chosen: Optional[Tuple[int, str]] = None
    for dim, part in enumerate(parts):
        if part in ("*", ""):
            continue
        if (
            part not in ("wrapped", "block", "blocked", "cyclic")
            and not _BLOCK_CYCLIC_RE.match(part)
        ):
            raise ParseError(
                f"unknown distribution spec {part!r} "
                "(use *, wrapped, block or cyclic(B))",
                line=line,
            )
        if chosen is not None:
            raise ParseError(
                "at most one distribution dimension is supported here",
                line=line,
            )
        chosen = (dim, part)
    if chosen is None:
        return None
    dim, kind = chosen
    match = _BLOCK_CYCLIC_RE.match(kind)
    if match:
        return BlockCyclic(dim, int(match.group("size")))
    if kind in ("wrapped", "cyclic"):
        return Wrapped(dim)
    return Blocked(dim)


def _parse_for(line: _Line) -> Loop:
    match = _FOR_RE.match(line.text)
    if not match:
        raise ParseError(f"malformed for statement: {line.text!r}", line=line.number)
    rest = match.group("rest")
    pieces = _split_top_level(rest)
    step = 1
    if len(pieces) == 3:
        step_text = pieces[2].strip()
        if not step_text.lower().startswith("step"):
            raise ParseError(
                f"expected 'step S' as third clause, got {step_text!r}",
                line=line.number,
            )
        try:
            step = int(step_text[4:].strip())
        except ValueError as error:
            raise ParseError(
                f"loop step must be an integer literal: {step_text!r}",
                line=line.number,
            ) from error
        pieces = pieces[:2]
    if len(pieces) != 2:
        raise ParseError(
            f"for statement needs 'for i = low, high': {line.text!r}",
            line=line.number,
        )
    lower = _bounds(pieces[0], line.number)
    upper = _bounds(pieces[1], line.number)
    try:
        return Loop.make(match.group("index"), lower, upper, step=step)
    except Exception as error:  # invalid bound expressions
        raise ParseError(str(error), line=line.number) from error


def _bounds(text: str, line: int):
    stripped = text.strip()
    lowered = stripped.lower()
    if lowered.startswith(("max(", "min(")) and stripped.endswith(")"):
        return _split_top_level(stripped[4:-1])
    return stripped


def parse_program(source: str, *, name: str = "program") -> Program:
    """Parse DSL source into a validated :class:`~repro.ir.Program`."""
    lines = _logical_lines(source)
    if not lines:
        raise ParseError("empty program")

    program_name = name
    params: Dict[str, int] = {}
    arrays: List[ArrayDecl] = []
    distributions: Dict[str, Distribution] = {}
    assumptions: List[str] = []

    position = 0
    # Header section: program / param / assume / real declarations.
    while position < len(lines):
        line = lines[position]
        match = _PROGRAM_RE.match(line.text)
        if match:
            program_name = match.group("name")
            position += 1
            continue
        match = _ASSUME_RE.match(line.text)
        if match:
            fact = match.group("fact").strip()
            if ">=" not in fact and "<=" not in fact:
                raise ParseError(
                    f"assume needs a '>=' or '<=' fact, got {fact!r}",
                    line=line.number,
                )
            assumptions.append(fact)
            position += 1
            continue
        match = _PARAM_RE.match(line.text)
        if match:
            if match.group("value") is not None:
                params[match.group("name")] = int(match.group("value"))
            else:
                params.setdefault(match.group("name"), 0)
            position += 1
            continue
        array_match = _match_array(line.text)
        if array_match is not None:
            array_name, extents_text, dist_text = array_match
            extents = [
                part.strip() for part in _split_top_level(extents_text)
            ]
            if not extents or extents == [""]:
                raise ParseError(
                    f"array {array_name!r} needs at least one extent",
                    line=line.number,
                )
            try:
                decl = ArrayDecl.make(array_name, *extents)
            except Exception as error:
                raise ParseError(str(error), line=line.number) from error
            arrays.append(decl)
            if dist_text is not None:
                distribution = _parse_distribution(dist_text, line.number)
                if distribution is not None:
                    distributions[decl.name] = distribution
            position += 1
            continue
        break  # first non-declaration line: the loop nest begins

    loops, body_lines = _parse_nest(lines[position:])
    if not loops:
        raise ParseError("program has no loop nest")
    index_names = [loop.index for loop in loops]
    body = []
    for line in body_lines:
        try:
            body.append(parse_assignment(line.text, index_names))
        except ParseError as error:
            raise ParseError(str(error), line=line.number) from None
    if not body:
        raise ParseError("loop nest has an empty body")

    program = Program(
        nest=LoopNest(tuple(loops), tuple(body)),
        arrays=tuple(arrays),
        distributions=distributions,
        params=params,
        name=program_name,
        assumptions=tuple(assumptions),
    )
    try:
        validate_program(program)
    except Exception as error:
        raise SemanticError(str(error)) from error
    return program


def _parse_nest(lines: List[_Line]) -> Tuple[List[Loop], List[_Line]]:
    """Parse a perfectly nested loop chain plus its innermost body."""
    loops: List[Loop] = []
    position = 0
    current_indent = lines[0].indent if lines else 0
    while position < len(lines) and lines[position].text.startswith("for"):
        line = lines[position]
        if line.indent != current_indent and loops:
            raise ParseError(
                "loop nesting must increase indentation consistently",
                line=line.number,
            )
        loops.append(_parse_for(line))
        position += 1
        if position < len(lines):
            next_indent = lines[position].indent
            if next_indent <= line.indent:
                raise ParseError(
                    "loop body must be indented past its for statement",
                    line=lines[position].number,
                )
            current_indent = next_indent
    body = lines[position:]
    for line in body:
        if line.indent != current_indent:
            raise ParseError(
                "all body statements must share one indentation level "
                "(the nest must be perfect)",
                line=line.number,
            )
        if line.text.startswith("for"):
            raise ParseError(
                "imperfect nest: a for statement follows body statements",
                line=line.number,
            )
    return loops, body
