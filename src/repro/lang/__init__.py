"""Front-end DSL: FORTRAN-D-style programs with distribution declarations."""

from repro.lang.parser import parse_program

__all__ = ["parse_program"]
