"""Vectorization application of access normalization (Section 9)."""

from repro.vector.driver import vector_priority, vectorize
from repro.vector.stride import (
    StrideInfo,
    VectorCostModel,
    dimension_strides,
    reference_stride,
    stride_report,
    vector_loop_cycles,
)

__all__ = [
    "StrideInfo",
    "vector_priority",
    "vectorize",
    "VectorCostModel",
    "dimension_strides",
    "reference_stride",
    "stride_report",
    "vector_loop_cycles",
]
