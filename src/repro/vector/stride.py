"""Vectorization application of access normalization (Section 9).

Vector machines such as the CRAY-1/2 require constant-stride vector loads
and stores, and even machines with hardware gather (Fujitsu FACOM) run
faster with small constant strides because address generation is cheaper.
Access normalization helps by making the innermost-loop subscript *normal*
in an array's fastest-varying dimension, turning large-stride or
column-crossing access patterns into unit-stride streams.

For column-major (FORTRAN) storage, the memory stride of a reference per
step of the innermost loop is ``sum_d coeff(sub_d, w) * dimstride_d`` where
``dimstride_0 = 1`` and ``dimstride_{d+1} = dimstride_d * extent_d``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ir.program import Program
from repro.ir.scalar import ArrayRef


@dataclass(frozen=True)
class StrideInfo:
    """Innermost-loop memory stride of one reference."""

    ref: ArrayRef
    is_write: bool
    stride: Optional[int]  # None: not an integer (non-vectorizable as-is)

    @property
    def is_unit(self) -> bool:
        """Contiguous access — the best case for vector load units."""
        return self.stride == 1

    @property
    def is_scalar(self) -> bool:
        """Invariant in the vector loop (kept in a register)."""
        return self.stride == 0


def dimension_strides(shape: Sequence[int]) -> List[int]:
    """Column-major strides for a concrete array shape."""
    strides = [1]
    for extent in shape[:-1]:
        strides.append(strides[-1] * extent)
    return strides


def reference_stride(
    ref: ArrayRef, index: str, shape: Sequence[int]
) -> Optional[int]:
    """Memory stride (elements) of ``ref`` per unit step of loop ``index``."""
    strides = dimension_strides(shape)
    total = Fraction(0)
    for dim, subscript in enumerate(ref.subscripts):
        total += subscript.coeff(index) * strides[dim]
    if total.denominator != 1:
        return None
    return int(total)


def stride_report(
    program: Program, params: Optional[Mapping[str, int]] = None
) -> List[StrideInfo]:
    """Innermost-loop strides of every reference in a program."""
    nest = program.nest
    if nest.depth == 0:
        return []
    innermost = nest.indices[-1]
    bound = program.bound_params(params)
    shapes: Dict[str, Tuple[int, ...]] = {
        decl.name: decl.shape(bound) for decl in program.arrays
    }
    report = []
    for ref, is_write in nest.array_refs():
        shape = shapes.get(ref.array)
        stride = (
            reference_stride(ref, innermost, shape) if shape is not None else None
        )
        report.append(StrideInfo(ref=ref, is_write=is_write, stride=stride))
    return report


@dataclass(frozen=True)
class VectorCostModel:
    """A simple CRAY-style vector execution cost model (times in cycles).

    One chime processes up to ``vector_length`` elements; unit-stride
    streams pay ``unit_cost`` per element, larger constant strides pay
    ``strided_cost`` (memory-bank conflicts), and gathers pay
    ``gather_cost`` (per-element address generation).
    """

    vector_length: int = 64
    startup_cycles: float = 50.0
    unit_cost: float = 1.0
    strided_cost: float = 2.0
    gather_cost: float = 6.0

    def stream_cycles(self, elements: int, stride: Optional[int]) -> float:
        """Cycles to move ``elements`` elements at the given stride."""
        if elements <= 0:
            return 0.0
        chunks = -(-elements // self.vector_length)
        if stride is None:
            per_element = self.gather_cost
        elif stride in (0, 1):
            per_element = self.unit_cost
        else:
            per_element = self.strided_cost
        return chunks * self.startup_cycles + elements * per_element


def vector_loop_cycles(
    program: Program,
    elements: int,
    params: Optional[Mapping[str, int]] = None,
    model: Optional[VectorCostModel] = None,
) -> float:
    """Cycles per innermost-loop vector sweep of ``elements`` iterations."""
    model = model or VectorCostModel()
    total = 0.0
    for info in stride_report(program, params):
        total += model.stream_cycles(elements, info.stride)
    return total
