"""Access normalization targeted at vector machines (Section 9).

For a NUMA machine the data access matrix ranks distribution-dimension
subscripts first so the *outermost* loop matches the data layout.  For a
vector machine the goal is dual: the *innermost* loop should advance the
fastest-varying (column-major dimension 0) subscripts with constant —
ideally unit — stride.  :func:`vectorize` reuses the whole normalization
machinery with a stride-oriented row ranking: subscripts from the slower
dimensions are pinned to the front (outer loops) so a dimension-0
subscript lands innermost.
"""

from __future__ import annotations

from typing import List

from repro.core.normalize import NormalizationResult, access_normalize
from repro.ir.loop import LoopNest
from repro.ir.program import Program


def vector_priority(nest: LoopNest) -> List[str]:
    """Row ranking for vector targets: slow-dimension subscripts first.

    Returns the subscript expressions of all dimensions *other than* 0, by
    occurrence count — pinning them to the outer loops leaves the
    dimension-0 (unit-stride) subscripts to become the innermost loops.
    """
    counts = {}
    order = []
    indices = nest.indices
    for ref, _ in nest.array_refs():
        for dim, subscript in enumerate(ref.subscripts):
            if dim == 0:
                continue
            coeffs = subscript.coefficient_vector(indices)
            if all(c == 0 for c in coeffs):
                continue
            key = str(subscript)
            if key not in counts:
                counts[key] = 0
                order.append(key)
            counts[key] += 1
    return sorted(order, key=lambda key: (-counts[key], order.index(key)))


def vectorize(program: Program, **kwargs) -> NormalizationResult:
    """Normalize a program for constant innermost stride.

    A thin wrapper over :func:`repro.core.access_normalize` with the
    stride-oriented ranking of :func:`vector_priority`; all other keyword
    arguments pass through.
    """
    return access_normalize(
        program, priority=vector_priority(program.nest), **kwargs
    )
