"""Wire protocol of the compilation service.

The service speaks JSON over HTTP/1.1 (stdlib only, ``Connection:
close`` per request).  Endpoints:

* ``GET  /healthz``      — liveness + drain state;
* ``GET  /metricsz``     — metrics snapshot (stage timers, cache and
  queue counters) as JSON;
* ``POST /v1/compile``   — run access normalization, return the CLI
  artifacts (``result.stdout`` is byte-identical to ``repro compile``);
* ``POST /v1/analyze``   — static analysis over inline sources
  (byte-identical to ``repro analyze``);
* ``POST /v1/simulate``  — one simulation cell; concurrent identical
  requests are coalesced into a single execution;
* ``POST /v1/sweep``     — a full speedup sweep (byte-identical to
  ``repro simulate``);
* ``POST /v1/solve``     — an analytic crossover question answered from
  the symbolic per-program forms (byte-identical to ``repro solve``).

Success responses are ``{"ok": true, "op": ..., "result": ...,
"exit_code": ..., "elapsed_ms": ...}``; failures are ``{"ok": false,
"error": {"code": ..., "message": ...}}`` with the HTTP status from
:data:`ERROR_STATUS`.  A full request queue answers 429 with a
``Retry-After`` header; a draining server answers 503.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ReproError

#: Protocol revision served in ``/healthz`` and checked by nothing yet —
#: bump on incompatible changes so clients can detect drift.
PROTOCOL_VERSION = 1

#: The ops accepted under ``POST /v1/<op>``.
OPS = ("compile", "analyze", "simulate", "sweep", "solve", "tune")

#: Default TCP port (an unassigned high port).
DEFAULT_PORT = 8753

#: error code -> HTTP status.
ERROR_STATUS: Dict[str, int] = {
    "bad_request": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "compile_error": 422,
    "queue_full": 429,
    "internal": 500,
    "bad_gateway": 502,
    "draining": 503,
    "timeout": 504,
}

#: HTTP reason phrases for the statuses the server emits.
REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ServiceError(ReproError):
    """A request the service (or the client) could not complete.

    ``code`` is one of the :data:`ERROR_STATUS` keys; ``retry_after``
    carries the server's backoff hint on 429.  ``str(error)`` is just the
    human message so the CLI's generic ``error: ...`` rendering matches
    the direct path.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "internal",
        status: Optional[int] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.status = status if status is not None else ERROR_STATUS.get(code, 500)
        self.retry_after = retry_after


def error_payload(code: str, message: str) -> Dict[str, object]:
    """The body of a failure response."""
    return {"ok": False, "error": {"code": code, "message": message}}


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to run a daemon.

    ``queue_limit`` bounds admitted-but-unfinished requests (beyond it the
    server answers 429), ``timeout_s`` is the per-request execution
    timeout, ``batch_window_s`` is how long the micro-batcher waits to
    coalesce concurrent requests, and ``jobs`` is the process-pool width
    handed to the runtime's :func:`~repro.runtime.executor.run_tasks`.
    ``cache_dir``/``cache_max_entries`` configure the shared simulation
    cache's disk store (defaulting to ``REPRO_CACHE_DIR`` /
    ``REPRO_CACHE_MAX_ENTRIES``).
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    jobs: int = 1
    queue_limit: int = 64
    timeout_s: float = 60.0
    batch_window_s: float = 0.01
    drain_grace_s: float = 30.0
    cache_dir: Optional[str] = None
    cache_max_entries: Optional[int] = None
    log_requests: bool = True
    extra: Dict[str, object] = field(default_factory=dict)
