"""``repro serve`` and ``repro submit`` — the service's CLI surface.

``serve`` runs the daemon in the foreground (SIGTERM/SIGINT drain
gracefully).  ``submit`` mirrors the direct subcommands — ``repro submit
compile ...`` accepts exactly the arguments of ``repro compile ...`` —
and round-trips them through a running daemon; because both paths
execute the same :mod:`repro.service.jobs` functions, the printed output
is byte-identical to the direct CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.service.client import ServiceClient, default_host, default_port
from repro.service.jobs import (
    analyze_payload,
    compile_payload,
    solve_payload,
    sweep_payload,
)
from repro.service.protocol import ServiceConfig


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import run_server

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_limit=args.queue_limit,
        timeout_s=args.timeout,
        batch_window_s=args.batch_window,
        drain_grace_s=args.drain_grace,
        cache_dir=args.cache_dir,
        cache_max_entries=args.cache_max_entries,
        log_requests=not args.quiet,
    )
    return run_server(config)


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.service.fleet import FleetConfig, run_fleet

    config = FleetConfig(
        host=args.host,
        port=args.port,
        replicas=args.replicas,
        jobs=args.jobs,
        queue_limit=args.queue_limit,
        timeout_s=args.timeout,
        batch_window_s=args.batch_window,
        drain_grace_s=args.drain_grace,
        cache_dir=args.cache_dir,
        cache_max_entries=args.cache_max_entries,
        log_dir=args.log_dir,
        state_file=args.state_file,
        health_interval_s=args.health_interval,
        log_requests=not args.quiet,
    )
    return run_fleet(config)


def cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient(
        args.host, args.port, timeout=args.client_timeout,
        retries=args.retries,
    )
    subcommand = args.subcommand
    if subcommand == "health":
        print(json.dumps(client.health(), indent=2, sort_keys=True))
        return 0
    if subcommand == "metrics":
        print(json.dumps(client.metrics(), indent=2, sort_keys=True))
        return 0
    if subcommand == "compile":
        response = client.compile(compile_payload(args))
    elif subcommand == "analyze":
        if getattr(args, "list_passes", False):
            # Pure registry metadata: answer locally, no round trip.
            from repro.analysis.cli import render_pass_list

            print(render_pass_list())
            return 0
        if not args.files:
            print(
                "error: no input files (or use --list-passes)",
                file=sys.stderr,
            )
            return 2
        response = client.analyze(analyze_payload(args))
    elif subcommand == "simulate":
        # The CLI's `simulate` is a full speedup sweep -> the sweep op.
        response = client.sweep(sweep_payload(args))
    elif subcommand == "solve":
        response = client.solve(solve_payload(args))
    elif subcommand == "tune":
        from repro.service.jobs import tune_payload

        response = client.tune(tune_payload(args))
    else:  # pragma: no cover - argparse enforces choices
        raise AssertionError(f"unknown submit subcommand {subcommand!r}")
    result = response.get("result") or {}
    stdout = result.get("stdout", "")
    stderr = result.get("stderr", "")
    if stderr:
        print(stderr, file=sys.stderr)
    if stdout:
        print(stdout)
    return int(response.get("exit_code", 0))


def add_serve_parser(
    sub: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "serve",
        help="run the compilation service daemon (compile/analyze/"
        "simulate/sweep/solve over JSON HTTP)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=default_port(),
        help="TCP port (0 binds an ephemeral port; default %(default)s)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool width for batched CPU-bound work "
        "(0 = all cores)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=64,
        help="max admitted-but-unfinished requests before answering 429 "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-request execution timeout in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.01,
        help="micro-batch coalescing window in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=30.0,
        help="max seconds to wait for in-flight requests on shutdown",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="on-disk simulation cache directory (default: REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--cache-max-entries", type=int, default=None,
        help="cap on disk-cache entries, oldest evicted first",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress structured request logs on stderr",
    )
    parser.set_defaults(func=cmd_serve)
    return parser


def add_fleet_parser(
    sub: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "fleet",
        help="run N serve replicas behind a consistent-hash router "
        "(identical requests always hit the warm replica)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=default_port(),
        help="router TCP port clients connect to (0 binds an ephemeral "
        "port; default %(default)s)",
    )
    parser.add_argument(
        "--replicas", type=int, default=3,
        help="number of serve replica processes (default %(default)s)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool width per replica (0 = all cores)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=64,
        help="per-replica admission queue capacity (default %(default)s)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-request execution timeout in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.01,
        help="per-replica micro-batch window in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=30.0,
        help="max seconds for each drain stage on shutdown",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="shared on-disk simulation cache for every replica "
        "(default: REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--cache-max-entries", type=int, default=None,
        help="cap on shared disk-cache entries, oldest evicted first",
    )
    parser.add_argument(
        "--log-dir", default=None,
        help="directory for replica log files (default: a fresh tempdir)",
    )
    parser.add_argument(
        "--state-file", default=None,
        help="write the running topology (router port, replica pids/"
        "ports/logs) to this JSON file once the router is up",
    )
    parser.add_argument(
        "--health-interval", type=float, default=1.0,
        help="seconds between replica health probes (default %(default)s)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-request router logs on stderr "
        "(lifecycle events always print)",
    )
    parser.set_defaults(func=cmd_fleet)
    return parser


def add_submit_parser(
    sub: "argparse._SubParsersAction[argparse.ArgumentParser]",
    *,
    common: argparse.ArgumentParser,
    machine: argparse.ArgumentParser,
) -> argparse.ArgumentParser:
    # Deferred import: repro.cli imports this module inside build_parser,
    # so repro.cli is fully initialized by the time this runs.
    from repro.analysis.cli import add_analyze_options
    from repro.cli import (
        add_compile_options,
        add_simulate_options,
        add_solve_options,
    )

    parser = sub.add_parser(
        "submit",
        help="run a subcommand through a running compilation service "
        "(byte-identical output to the direct CLI)",
    )
    connection = argparse.ArgumentParser(add_help=False)
    connection.add_argument(
        "--host", default=default_host(),
        help="service host (default: REPRO_SERVICE_HOST or 127.0.0.1)",
    )
    connection.add_argument(
        "--port", type=int, default=default_port(),
        help="service port (default: REPRO_SERVICE_PORT or 8753)",
    )
    connection.add_argument(
        "--client-timeout", type=float, default=120.0,
        help="client-side HTTP timeout in seconds (default %(default)s)",
    )
    connection.add_argument(
        "--retries", type=int, default=0,
        help="retry 429/503/unreachable responses this many times with "
        "exponential backoff honoring Retry-After (default: no retries)",
    )
    subsub = parser.add_subparsers(dest="subcommand", required=True)

    compile_cmd = subsub.add_parser(
        "compile", parents=[connection, common],
        help="as 'repro compile', served",
    )
    add_compile_options(compile_cmd)

    analyze_cmd = subsub.add_parser(
        "analyze", parents=[connection], help="as 'repro analyze', served"
    )
    add_analyze_options(analyze_cmd)

    simulate_cmd = subsub.add_parser(
        "simulate", parents=[connection, common, machine],
        help="as 'repro simulate', served",
    )
    add_simulate_options(simulate_cmd)

    solve_cmd = subsub.add_parser(
        "solve", parents=[connection, common, machine],
        help="as 'repro solve', served",
    )
    add_solve_options(solve_cmd)

    from repro.tune.cli import add_tune_options

    tune_cmd = subsub.add_parser(
        "tune", parents=[connection, common, machine],
        help="as 'repro tune', served",
    )
    add_tune_options(tune_cmd)

    subsub.add_parser(
        "health", parents=[connection], help="print the /healthz document"
    )
    subsub.add_parser(
        "metrics", parents=[connection], help="print the /metricsz document"
    )
    parser.set_defaults(func=cmd_submit)
    return parser


__all__: Sequence[str] = (
    "add_fleet_parser",
    "add_serve_parser",
    "add_submit_parser",
    "cmd_fleet",
    "cmd_serve",
    "cmd_submit",
)
