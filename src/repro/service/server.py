"""The asyncio JSON-over-HTTP compilation daemon.

Single event-loop thread; CPU-bound work runs on a small thread
executor, which in turn fans batches out over the runtime's
``multiprocessing`` pool (:func:`~repro.runtime.executor.run_tasks`)
when ``jobs > 1``.  Request lifecycle:

1. *admission* — a bounded gate; a full server answers 429 with
   ``Retry-After`` instead of queueing unboundedly;
2. *batching* — admitted requests join the micro-batcher's current
   window; identical in-flight ``simulate`` requests share one future;
3. *execution* — the batch runs on the executor; ``simulate`` cells go
   through one :func:`~repro.runtime.executor.run_grid` call (fingerprint
   dedup + shared cache), the rest through :func:`execute_job` workers;
4. *timeout* — each waiter is bounded by ``timeout_s``
   (``asyncio.shield`` keeps a shared computation alive for the other
   waiters; the timed-out client gets 504);
5. *drain* — on SIGTERM/SIGINT the listener closes, new work is refused
   with 503, and shutdown waits for every admitted request to be
   answered before the process exits.

Each handled request emits one structured JSON log line on stderr.
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Mapping, Optional, Tuple

from repro.runtime import Metrics, SimulationCache, set_shared_cache, shared_cache
from repro.service.batching import MicroBatcher
from repro.service.jobs import execute_batch
from repro.service.protocol import (
    ERROR_STATUS,
    OPS,
    PROTOCOL_VERSION,
    REASONS,
    ServiceConfig,
    error_payload,
)
from repro.service.queueing import AdmissionQueue

_HeaderMap = Dict[str, str]


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, _HeaderMap, bytes]:
    """Parse one HTTP/1.1 request: ``(method, path, headers, body)``."""
    line = await reader.readline()
    if not line:
        raise ValueError("empty request")
    parts = line.decode("latin-1").strip().split()
    if len(parts) < 2:
        raise ValueError(f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: _HeaderMap = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ValueError("invalid Content-Length")
    if length < 0 or length > 64 * 1024 * 1024:
        raise ValueError(f"unreasonable Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return method, target.split("?", 1)[0], headers, body


class CompilationServer:
    """One daemon instance: sockets, queue, batcher, caches, metrics."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = Metrics()
        if self.config.cache_dir:
            self.cache: SimulationCache = set_shared_cache(
                SimulationCache(
                    store_dir=self.config.cache_dir,
                    disk_max_entries=self.config.cache_max_entries,
                )
            )
        else:
            self.cache = shared_cache()
        self.admission = AdmissionQueue(self.config.queue_limit)
        self.batcher = MicroBatcher(
            self._run_batch,
            window_s=self.config.batch_window_s,
            metrics=self.metrics,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="repro-service"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._open_connections = 0
        self._connections_idle: Optional[asyncio.Event] = None
        self._draining = False
        self._started_monotonic: Optional[float] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (``config.port`` 0 → ephemeral)."""
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockets = self._server.sockets or ()
        self.port = sockets[0].getsockname()[1] if sockets else self.config.port
        self._started_monotonic = time.monotonic()
        self._log(
            "listening",
            host=self.config.host,
            port=self.port,
            jobs=self.config.jobs,
            queue_limit=self.config.queue_limit,
        )

    def request_stop(self) -> None:
        """Ask the serve loop to begin graceful drain (signal-safe-ish:
        must run on the event loop; use ``call_soon_threadsafe`` from
        other threads)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Run until SIGTERM/SIGINT (or :meth:`request_stop`), then drain."""
        if self._server is None:
            await self.start()
        assert self._stop_event is not None
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self._stop_event.set)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread or unsupported platform
        await self._stop_event.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, release pools."""
        if self._draining:
            return
        self._draining = True
        self._log("drain_begin", in_flight=self.admission.depth)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            # First every admitted op, then every open connection (an op
            # releases its admission slot just before its response bytes
            # are written, so both gates matter for zero-drop drains).
            await asyncio.wait_for(
                self.admission.join(), timeout=self.config.drain_grace_s
            )
            await asyncio.wait_for(
                self._connections_drained(), timeout=self.config.drain_grace_s
            )
            dropped = 0
        except asyncio.TimeoutError:  # pragma: no cover - pathological jobs
            dropped = self.admission.depth + self._open_connections
            self._log("drain_grace_exceeded", still_in_flight=dropped)
        self._executor.shutdown(wait=True)
        self._log("drain_complete", dropped=dropped)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _connection_event(self) -> asyncio.Event:
        if self._connections_idle is None:
            self._connections_idle = asyncio.Event()
            if self._open_connections == 0:
                self._connections_idle.set()
        return self._connections_idle

    async def _connections_drained(self) -> None:
        if self._open_connections == 0:
            return
        await self._connection_event().wait()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.perf_counter()
        method = path = "-"
        status = 500
        self._open_connections += 1
        self._connection_event().clear()
        try:
            try:
                method, path, _, body = await asyncio.wait_for(
                    _read_request(reader), timeout=10.0
                )
            except (
                ValueError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                ConnectionError,
            ) as error:
                status = 400
                await self._respond(
                    writer, 400, error_payload("bad_request", str(error))
                )
                return
            status, payload, extra_headers = await self._dispatch(
                method, path, body
            )
            await self._respond(writer, status, payload, extra_headers)
        except ConnectionError:
            pass  # client went away mid-response
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1e3
            self._log(
                "request",
                method=method,
                path=path,
                status=status,
                elapsed_ms=round(elapsed_ms, 3),
                queue_depth=self.admission.depth,
            )
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - already answered
                pass
            self._open_connections -= 1
            if self._open_connections == 0:
                self._connection_event().set()

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object], _HeaderMap]:
        if path == "/healthz":
            if method != "GET":
                return 405, error_payload("method_not_allowed", "use GET"), {}
            return 200, self._health_payload(), {}
        if path == "/metricsz":
            if method != "GET":
                return 405, error_payload("method_not_allowed", "use GET"), {}
            return 200, self._metrics_payload(), {}
        if not path.startswith("/v1/"):
            return 404, error_payload("not_found", f"no route {path!r}"), {}
        op = path[len("/v1/"):]
        if op not in OPS:
            return 404, error_payload(
                "not_found", f"unknown op {op!r}: expected one of {list(OPS)}"
            ), {}
        if method != "POST":
            return 405, error_payload("method_not_allowed", "use POST"), {}
        if self._draining:
            return 503, error_payload(
                "draining", "server is draining; retry against another instance"
            ), {"Retry-After": "1"}
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, error_payload(
                "bad_request", f"request body is not valid JSON: {error}"
            ), {}
        if not isinstance(payload, dict):
            return 400, error_payload(
                "bad_request", "request body must be a JSON object"
            ), {}
        return await self._handle_op(op, payload)

    async def _handle_op(
        self, op: str, payload: Dict[str, object]
    ) -> Tuple[int, Dict[str, object], _HeaderMap]:
        if not self.admission.try_acquire():
            self.metrics.count("service.rejected")
            retry_after = self.admission.retry_after_s()
            return 429, error_payload(
                "queue_full",
                f"admission queue is full "
                f"(capacity {self.admission.capacity}); retry later",
            ), {"Retry-After": str(retry_after)}
        self.metrics.count("service.requests")
        self.metrics.count(f"service.requests.{op}")
        started = time.perf_counter()
        timeout_s = self._request_timeout(payload)
        try:
            future = self.batcher.submit(op, payload)
            outcome = await asyncio.wait_for(
                asyncio.shield(future), timeout=timeout_s
            )
        except asyncio.TimeoutError:
            self.metrics.count("service.timeouts")
            return 504, error_payload(
                "timeout",
                f"request exceeded the {timeout_s:g}s execution timeout",
            ), {}
        except Exception as error:  # noqa: BLE001 - batch runner failure
            self.metrics.count("service.errors")
            return 500, error_payload("internal", str(error)), {}
        finally:
            self.admission.release()
        elapsed_ms = round((time.perf_counter() - started) * 1e3, 3)
        if outcome.get("ok"):
            return 200, {
                "ok": True,
                "op": op,
                "result": outcome.get("result", {}),
                "exit_code": outcome.get("exit_code", 0),
                "elapsed_ms": elapsed_ms,
            }, {}
        error_info = outcome.get("error") or {}
        code = str(error_info.get("code", "internal"))  # type: ignore[union-attr]
        self.metrics.count("service.errors")
        return ERROR_STATUS.get(code, 500), {
            "ok": False,
            "op": op,
            "error": error_info,
            "exit_code": outcome.get("exit_code", 1),
            "elapsed_ms": elapsed_ms,
        }, {}

    def _request_timeout(self, payload: Mapping[str, object]) -> float:
        """Per-request timeout: ``timeout_s`` in the payload, capped by
        the server-wide limit."""
        requested = payload.get("timeout_s")
        if requested is None:
            return self.config.timeout_s
        try:
            value = float(requested)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return self.config.timeout_s
        if value <= 0:
            return self.config.timeout_s
        return min(value, self.config.timeout_s)

    async def _run_batch(
        self, items: List[Tuple[str, Mapping[str, object]]]
    ) -> List[Dict[str, object]]:
        """Execute one micro-batch on the thread executor."""
        self.metrics.count("service.batches")
        self.metrics.count("service.batched_requests", len(items))
        loop = asyncio.get_running_loop()
        runner = functools.partial(
            execute_batch, items, jobs=self.config.jobs, cache=self.cache
        )
        results, snapshot = await loop.run_in_executor(self._executor, runner)
        self.metrics.merge(snapshot)
        return results

    # ------------------------------------------------------------------
    # introspection endpoints
    # ------------------------------------------------------------------
    def _uptime_s(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def _health_payload(self) -> Dict[str, object]:
        return {
            "status": "draining" if self._draining else "ok",
            "version": PROTOCOL_VERSION,
            "uptime_s": round(self._uptime_s(), 3),
            "queue_depth": self.admission.depth,
        }

    def _metrics_payload(self) -> Dict[str, object]:
        return {
            "service": {
                "version": PROTOCOL_VERSION,
                "uptime_s": round(self._uptime_s(), 3),
                "draining": self._draining,
                "jobs": self.config.jobs,
                "batch_window_s": self.config.batch_window_s,
                "inflight_keys": self.batcher.inflight_keys,
                "queue": {
                    "depth": self.admission.depth,
                    "capacity": self.admission.capacity,
                    "admitted_total": self.admission.admitted_total,
                    "rejected_total": self.admission.rejected_total,
                },
            },
            "metrics": self.metrics.to_dict(),
            "cache": {
                "memory_entries": len(self.cache),
                "memory_max_entries": self.cache.max_entries,
                "disk_entries": self.cache.disk_entries(),
                "disk_max_entries": self.cache.disk_max_entries,
                "store_dir": self.cache.store_dir,
            },
        }

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Mapping[str, object],
        extra_headers: Optional[_HeaderMap] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    #: Events printed even under ``--quiet`` (the documented contract:
    #: quiet disables *request* logs, lifecycle events always print —
    #: the fleet launcher reads replica ports from ``listening``).
    _LIFECYCLE_EVENTS = frozenset(
        {"listening", "drain_begin", "drain_complete", "drain_grace_exceeded"}
    )

    def _log(self, event: str, **fields: object) -> None:
        if not self.config.log_requests and event not in self._LIFECYCLE_EVENTS:
            return
        record: Dict[str, object] = {"ts": round(time.time(), 3), "event": event}
        record.update(fields)
        print(json.dumps(record, sort_keys=True), file=sys.stderr, flush=True)


def run_server(config: Optional[ServiceConfig] = None) -> int:
    """Blocking entry point for ``repro serve``."""
    server = CompilationServer(config)

    async def _main() -> None:
        await server.start()
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - direct ^C without handler
        pass
    return 0


class ServerThread:
    """A daemon running on a background thread (tests and embedding).

    Usage::

        with ServerThread(ServiceConfig(port=0)) as handle:
            client = ServiceClient(port=handle.port)
            ...

    ``port=0`` binds an ephemeral port; read it back from ``.port``.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig(port=0)
        self.server: Optional[CompilationServer] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = CompilationServer(self.config)
        try:
            await self.server.start()
        except Exception as error:  # noqa: BLE001 - surfaced to start()
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        # Signal handlers only work on the main thread; the embedder stops
        # us via request_stop() instead.
        await self.server.serve_forever(install_signals=False)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
