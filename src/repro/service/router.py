"""The fleet router: consistent-hash request routing over serve replicas.

A single ``repro serve`` daemon amortizes toolchain startup across
requests; the router amortizes *warmth* across a fleet.  Every
``/v1/*`` request is keyed by a content fingerprint — the canonical JSON
of its payload, the serving-side analogue of the
:func:`~repro.runtime.cache.cell_key` fingerprints the simulation cache
uses — and consistent-hashed onto one of N replica daemons, so identical
compiles and simulates always land on the replica whose in-memory
caches (simulation LRU, compiled kernels, symbolic forms) are already
warm for that program.  This is the paper's a-priori canonicalization
argument applied to serving: normalize the request first, and identical
work converges on the same place.

Layers on top of routing:

* **cross-replica in-flight dedup** — identical concurrent requests
  (any op: every job function is pure) share one forwarded execution
  via a fingerprint-keyed future map, so a thundering herd asking one
  question costs one backend request;
* **health checking** — a background probe marks replicas dead/alive;
  routing skips dead replicas by walking the ring's preference order;
* **retry-on-next-replica** — a backend that dies mid-request (refused
  connection, reset, truncated response) is marked dead and the request
  is retried on the next replica in ring order; job functions are pure,
  so the retry is always safe;
* **fleet-wide aggregation** — ``GET /metricsz`` fans out to every live
  replica and serves the summed counters/timers next to per-replica
  snapshots and the router's own stats; ``GET /healthz`` reports fleet
  degradation.

Requests whose body is not a JSON object (and therefore cannot be
fingerprinted) fall back to round-robin over the live replicas.  The
router never interprets or rewrites response bodies — byte-identity
with the direct CLI is preserved because the bytes pass through
untouched (an ``X-Repro-Replica`` response header names the replica
that answered, for observability and routing tests).
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runtime import Metrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    REASONS,
    error_payload,
)
from repro.service.server import _read_request

_HeaderMap = Dict[str, str]

#: One fully-read backend response: ``(status, headers, body_bytes)``.
_Response = Tuple[int, _HeaderMap, bytes]


# ----------------------------------------------------------------------
# request fingerprints
# ----------------------------------------------------------------------
def request_fingerprint(op: str, body: bytes) -> Optional[str]:
    """A stable content fingerprint for one ``POST /v1/<op>`` request.

    Canonical JSON (sorted keys) of the payload minus ``timeout_s`` —
    exactly the identity the micro-batcher's in-flight dedup uses —
    hashed together with the op.  Returns ``None`` when the body is not
    a JSON object, in which case the request is unfingerprintable and
    the router falls back to round-robin.
    """
    try:
        payload = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    key_fields = {k: v for k, v in payload.items() if k != "timeout_s"}
    canonical = json.dumps(key_fields, sort_keys=True, default=str)
    digest = hashlib.sha256(f"{op}\n{canonical}".encode("utf-8"))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# the consistent-hash ring
# ----------------------------------------------------------------------
def _ring_hash(text: str) -> int:
    """A 64-bit point on the ring.

    SHA-256 based, never Python's builtin ``hash`` — the builtin is
    salted per process, and the whole point of the ring is that every
    router process (and every test) maps the same fingerprint to the
    same replica.
    """
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring with virtual nodes.

    Each node contributes ``vnodes`` points; a key is owned by the first
    point clockwise from its own hash.  Adding or removing one node
    therefore only remaps the keys that node owned (~1/N of the space),
    never reshuffles the rest — the property the routing tests pin.
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = 64) -> None:
        if not nodes:
            raise ValueError("hash ring needs at least one node")
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.nodes = sorted(set(nodes))
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for index in range(vnodes):
                points.append((_ring_hash(f"{node}#{index}"), node))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def preference(self, key: str) -> List[str]:
        """Every node, ordered by ring distance from ``key``.

        ``preference(key)[0]`` is the owner; the tail is the failover
        order a router walks when replicas are down.
        """
        start = bisect.bisect_right(self._hashes, _ring_hash(key))
        ordered: List[str] = []
        seen = set()
        for offset in range(len(self._points)):
            _, node = self._points[(start + offset) % len(self._points)]
            if node not in seen:
                seen.add(node)
                ordered.append(node)
                if len(ordered) == len(self.nodes):
                    break
        return ordered

    def lookup(self, key: str) -> str:
        """The node that owns ``key``."""
        return self.preference(key)[0]


# ----------------------------------------------------------------------
# router configuration
# ----------------------------------------------------------------------
@dataclass
class RouterConfig:
    """Everything ``repro fleet``'s router needs.

    ``replicas`` are ``host:port`` backend addresses.  ``vnodes`` sets
    ring granularity, ``health_interval_s`` the probe cadence,
    ``forward_timeout_s`` the per-attempt backend budget (the probe uses
    ``probe_timeout_s``).
    """

    host: str = "127.0.0.1"
    port: int = 0
    replicas: Sequence[str] = field(default_factory=tuple)
    vnodes: int = 64
    health_interval_s: float = 1.0
    forward_timeout_s: float = 120.0
    probe_timeout_s: float = 5.0
    drain_grace_s: float = 30.0
    log_requests: bool = True


# ----------------------------------------------------------------------
# raw HTTP forwarding
# ----------------------------------------------------------------------
async def _http_roundtrip(
    addr: str,
    method: str,
    path: str,
    body: bytes = b"",
    timeout: float = 120.0,
) -> _Response:
    """One ``Connection: close`` HTTP exchange with a backend replica."""
    host, _, port_text = addr.rpartition(":")
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, int(port_text)), timeout=timeout
    )
    try:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {addr}",
            "Accept: application/json",
            "Connection: close",
        ]
        if body:
            lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

        async def _read_response() -> _Response:
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(
                    f"malformed status line from {addr}: {status_line!r}"
                )
            status = int(parts[1])
            headers: _HeaderMap = {}
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, sep, value = raw.decode("latin-1").partition(":")
                if sep:
                    headers[name.strip().lower()] = value.strip()
            length_text = headers.get("content-length")
            if length_text is not None:
                payload = await reader.readexactly(int(length_text))
            else:
                payload = await reader.read()
            return status, headers, payload

        return await asyncio.wait_for(_read_response(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # noqa: BLE001 - connection already torn down
            pass


#: Transport failures that make an attempt retryable on the next replica.
_RETRYABLE = (
    ConnectionError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
    OSError,
)


class FleetRouter:
    """The asyncio routing daemon in front of N ``repro serve`` replicas."""

    def __init__(self, config: RouterConfig) -> None:
        if not config.replicas:
            raise ValueError("router needs at least one replica address")
        self.config = config
        self.metrics = Metrics()
        self.ring = HashRing(list(config.replicas), vnodes=config.vnodes)
        self._alive: Dict[str, bool] = {
            addr: True for addr in self.ring.nodes
        }
        self._inflight: Dict[str, "asyncio.Future[_Response]"] = {}
        self._rr_counter = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._health_task: Optional[asyncio.Task] = None
        self._open_connections = 0
        self._connections_idle: Optional[asyncio.Event] = None
        self._draining = False
        self._started_monotonic: Optional[float] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockets = self._server.sockets or ()
        self.port = sockets[0].getsockname()[1] if sockets else self.config.port
        self._started_monotonic = time.monotonic()
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop()
        )
        self._log(
            "router_listening",
            host=self.config.host,
            port=self.port,
            replicas=list(self.ring.nodes),
        )

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self, install_signals: bool = True) -> None:
        if self._server is None:
            await self.start()
        assert self._stop_event is not None
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self._stop_event.set)
                except (NotImplementedError, RuntimeError):
                    pass
        await self._stop_event.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        if self._draining:
            return
        self._draining = True
        self._log("drain_begin", in_flight=self._open_connections)
        if self._health_task is not None:
            self._health_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(
                self._connections_drained(), timeout=self.config.drain_grace_s
            )
            dropped = 0
        except asyncio.TimeoutError:  # pragma: no cover - pathological
            dropped = self._open_connections
            self._log("drain_grace_exceeded", still_in_flight=dropped)
        self._log("drain_complete", dropped=dropped)

    # ------------------------------------------------------------------
    # replica health
    # ------------------------------------------------------------------
    def alive_replicas(self) -> List[str]:
        return [addr for addr in self.ring.nodes if self._alive[addr]]

    def _mark(self, addr: str, alive: bool, reason: str) -> None:
        if self._alive[addr] == alive:
            return
        self._alive[addr] = alive
        self.metrics.count(
            "router.replica_up" if alive else "router.replica_down"
        )
        self._log("replica_up" if alive else "replica_down",
                  replica=addr, reason=reason)

    async def _probe(self, addr: str) -> None:
        try:
            status, _, body = await _http_roundtrip(
                addr, "GET", "/healthz", timeout=self.config.probe_timeout_s
            )
            document = json.loads(body.decode("utf-8"))
            healthy = status == 200 and document.get("status") == "ok"
        except Exception:  # noqa: BLE001 - any probe failure means down
            healthy = False
        self._mark(addr, healthy, "probe")

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            self.metrics.count("router.health_sweeps")
            await asyncio.gather(
                *(self._probe(addr) for addr in self.ring.nodes),
                return_exceptions=True,
            )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _connection_event(self) -> asyncio.Event:
        if self._connections_idle is None:
            self._connections_idle = asyncio.Event()
            if self._open_connections == 0:
                self._connections_idle.set()
        return self._connections_idle

    async def _connections_drained(self) -> None:
        if self._open_connections == 0:
            return
        await self._connection_event().wait()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.perf_counter()
        method = path = "-"
        status = 500
        self._open_connections += 1
        self._connection_event().clear()
        try:
            try:
                method, path, _, body = await asyncio.wait_for(
                    _read_request(reader), timeout=10.0
                )
            except (
                ValueError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                ConnectionError,
            ) as error:
                status = 400
                await self._respond_json(
                    writer, 400, error_payload("bad_request", str(error))
                )
                return
            status, headers, payload = await self._dispatch(method, path, body)
            await self._respond_raw(writer, status, headers, payload)
        except ConnectionError:
            pass  # client went away mid-response
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1e3
            self._log(
                "route",
                method=method,
                path=path,
                status=status,
                elapsed_ms=round(elapsed_ms, 3),
            )
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - already answered
                pass
            self._open_connections -= 1
            if self._open_connections == 0:
                self._connection_event().set()

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> _Response:
        if path == "/healthz":
            return self._json_response(200, self._health_payload())
        if path == "/metricsz":
            return self._json_response(200, await self._metrics_payload())
        if not path.startswith("/v1/"):
            return self._json_response(
                404, error_payload("not_found", f"no route {path!r}")
            )
        if method != "POST":
            return self._json_response(
                405, error_payload("method_not_allowed", "use POST")
            )
        if self._draining:
            return self._json_response(
                503,
                error_payload("draining", "router is draining"),
                {"Retry-After": "1"},
            )
        self.metrics.count("router.requests")
        op = path[len("/v1/"):]
        fingerprint = request_fingerprint(op, body)
        if fingerprint is None:
            self.metrics.count("router.fallback_roundrobin")
            return await self._route(None, method, path, body)
        existing = self._inflight.get(fingerprint)
        if existing is not None and not existing.done():
            # Identical concurrent request: join the in-flight forward.
            self.metrics.count("router.dedup_inflight")
            return await asyncio.shield(existing)
        future: "asyncio.Future[_Response]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[fingerprint] = future
        try:
            response = await self._route(fingerprint, method, path, body)
            future.set_result(response)
            return response
        except BaseException as error:
            future.set_exception(error)
            # The exception is re-raised below; mark it retrieved so a
            # waiterless future does not warn at GC time.
            future.exception()
            raise
        finally:
            if self._inflight.get(fingerprint) is future:
                del self._inflight[fingerprint]

    def _candidate_order(self, fingerprint: Optional[str]) -> List[str]:
        """Replicas to try, best first: ring preference for fingerprinted
        requests, round-robin rotation otherwise; live replicas always
        come before dead-marked ones (a dead mark may be stale, so dead
        replicas remain a last resort rather than being unroutable)."""
        if fingerprint is not None:
            ordered = self.ring.preference(fingerprint)
        else:
            nodes = self.ring.nodes
            self._rr_counter = (self._rr_counter + 1) % len(nodes)
            ordered = list(
                nodes[self._rr_counter:] + nodes[: self._rr_counter]
            )
        return sorted(ordered, key=lambda addr: not self._alive[addr])

    async def _route(
        self,
        fingerprint: Optional[str],
        method: str,
        path: str,
        body: bytes,
    ) -> _Response:
        """Forward to the preferred replica, failing over along the ring."""
        attempts = 0
        last_503: Optional[_Response] = None
        for addr in self._candidate_order(fingerprint):
            attempts += 1
            try:
                status, headers, payload = await _http_roundtrip(
                    addr, method, path, body,
                    timeout=self.config.forward_timeout_s,
                )
            except _RETRYABLE as error:
                self._mark(addr, False, f"{type(error).__name__}: {error}")
                self.metrics.count("router.retries")
                continue
            if status == 503:
                # Draining replica: alive but refusing work — spill to
                # the next replica in preference order.  Remembered so a
                # fully-draining fleet answers 503, not 502.
                last_503 = (status, dict(headers), payload)
                self.metrics.count("router.retries")
                continue
            self._mark(addr, True, "request")
            if attempts > 1:
                self.metrics.count("router.failovers")
            out_headers = {
                "Content-Type": headers.get(
                    "content-type", "application/json"
                ),
                "X-Repro-Replica": addr,
            }
            retry_after = headers.get("retry-after")
            if retry_after:
                out_headers["Retry-After"] = retry_after
            return status, out_headers, payload
        if last_503 is not None:
            status, headers, payload = last_503
            return status, {
                "Content-Type": headers.get(
                    "content-type", "application/json"
                ),
                "Retry-After": headers.get("retry-after", "1"),
            }, payload
        self.metrics.count("router.unroutable")
        return self._json_response(
            502,
            error_payload(
                "bad_gateway",
                f"no replica answered after {attempts} attempt(s); "
                f"replicas: {list(self.ring.nodes)}",
            ),
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _uptime_s(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def _health_payload(self) -> Dict[str, object]:
        alive = self.alive_replicas()
        if self._draining:
            status = "draining"
        elif len(alive) == len(self.ring.nodes):
            status = "ok"
        elif alive:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "role": "router",
            "version": PROTOCOL_VERSION,
            "uptime_s": round(self._uptime_s(), 3),
            "replicas": [
                {"addr": addr, "alive": self._alive[addr]}
                for addr in self.ring.nodes
            ],
        }

    async def _metrics_payload(self) -> Dict[str, object]:
        """Fleet-wide aggregation: summed counters/timers over every live
        replica, per-replica snapshots, and the router's own stats."""
        aggregate = Metrics()
        replicas: Dict[str, object] = {}

        async def _collect(addr: str) -> None:
            try:
                status, _, body = await _http_roundtrip(
                    addr, "GET", "/metricsz",
                    timeout=self.config.probe_timeout_s,
                )
                document = json.loads(body.decode("utf-8"))
                if status != 200 or not isinstance(document, dict):
                    raise ValueError(f"metricsz answered {status}")
            except Exception as error:  # noqa: BLE001 - reported per replica
                replicas[addr] = {"ok": False, "error": str(error)}
                return
            replicas[addr] = {"ok": True, "document": document}
            snapshot = document.get("metrics")
            if isinstance(snapshot, dict):
                aggregate.merge(snapshot)

        await asyncio.gather(
            *(_collect(addr) for addr in self.alive_replicas())
        )
        return {
            "router": {
                "version": PROTOCOL_VERSION,
                "uptime_s": round(self._uptime_s(), 3),
                "draining": self._draining,
                "replicas": [
                    {"addr": addr, "alive": self._alive[addr]}
                    for addr in self.ring.nodes
                ],
                "inflight_keys": len(self._inflight),
                "metrics": self.metrics.to_dict(),
            },
            # Same shape a single replica serves, so clients (and the
            # load harness) read fleet counters with one code path.
            "metrics": aggregate.to_dict(),
            "replicas": {
                addr: replicas.get(addr, {"ok": False, "error": "down"})
                for addr in self.ring.nodes
            },
        }

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _json_response(
        self,
        status: int,
        payload: Mapping[str, object],
        extra_headers: Optional[_HeaderMap] = None,
    ) -> _Response:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        headers = {"Content-Type": "application/json"}
        headers.update(extra_headers or {})
        return status, headers, body

    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Mapping[str, object],
    ) -> None:
        code, headers, body = self._json_response(status, payload)
        await self._respond_raw(writer, code, headers, body)

    async def _respond_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        headers: _HeaderMap,
        body: bytes,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    def _log(self, event: str, **fields: object) -> None:
        lifecycle = event in (
            "router_listening",
            "drain_begin",
            "drain_complete",
            "drain_grace_exceeded",
            "replica_up",
            "replica_down",
        )
        if not self.config.log_requests and not lifecycle:
            return
        record: Dict[str, object] = {"ts": round(time.time(), 3), "event": event}
        record.update(fields)
        print(json.dumps(record, sort_keys=True), file=sys.stderr, flush=True)


def run_router(config: RouterConfig) -> int:
    """Blocking entry point (used by ``repro fleet``'s foreground loop)."""
    router = FleetRouter(config)

    async def _main() -> None:
        await router.start()
        await router.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - direct ^C
        pass
    return 0


class RouterThread:
    """A router running on a background thread (tests and embedding)."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.router: Optional[FleetRouter] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.router is not None and self.router.port is not None
        return self.router.port

    def start(self) -> "RouterThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-router-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("router thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"router failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self.router is not None:
            try:
                self._loop.call_soon_threadsafe(self.router.request_stop)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.router = FleetRouter(self.config)
        try:
            await self.router.start()
        except Exception as error:  # noqa: BLE001 - surfaced to start()
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        await self.router.serve_forever(install_signals=False)

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
