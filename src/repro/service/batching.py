"""Micro-batching with in-flight deduplication.

Requests arriving within one ``window_s`` tick are coalesced into a
single batch and executed together: the batch runner pushes every
``simulate`` cell through one :func:`~repro.runtime.executor.run_grid`
call (whose fingerprint keys collapse identical cells) and fans the rest
out over the runtime's process pool.  This is the paper's amortization
argument applied to the toolchain — many small requests share one
startup, the way many elements share one block transfer.

On top of the window, identical concurrent ``simulate`` *requests* are
deduplicated before batching even begins: the canonical JSON of the
payload keys a map of in-flight futures, so N clients asking the same
question while the answer is being computed all await one future and one
execution.  (Across non-overlapping requests the shared
:class:`~repro.runtime.cache.SimulationCache` provides the same
guarantee via ``cache_hits``.)
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable, Dict, List, Mapping, Optional, Tuple

from repro.runtime.metrics import Metrics
from repro.service.protocol import ServiceError

#: One batch item: ``(op, payload, future-to-resolve)``.
_Item = Tuple[str, Mapping[str, object], "asyncio.Future[Dict[str, object]]"]

#: The runner executes a batch of ``(op, payload)`` and returns one
#: response dict per item, in order.
BatchRunner = Callable[
    [List[Tuple[str, Mapping[str, object]]]],
    Awaitable[List[Dict[str, object]]],
]


class MicroBatcher:
    """Coalesce concurrent requests into shared batch executions."""

    def __init__(
        self,
        runner: BatchRunner,
        *,
        window_s: float = 0.01,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self._runner = runner
        self._window = max(0.0, window_s)
        self._metrics = metrics if metrics is not None else Metrics()
        self._pending: List[_Item] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._inflight: Dict[str, "asyncio.Future[Dict[str, object]]"] = {}
        self._running: int = 0

    @property
    def inflight_keys(self) -> int:
        """Distinct simulate requests currently being computed."""
        return len(self._inflight)

    @property
    def busy(self) -> bool:
        """True while any batch is pending or executing."""
        return bool(self._pending) or self._running > 0

    def submit(
        self, op: str, payload: Mapping[str, object]
    ) -> "asyncio.Future[Dict[str, object]]":
        """Enqueue one request; returns the (possibly shared) result future.

        Must be called from the event loop.  Callers that enforce
        timeouts must wrap the future in :func:`asyncio.shield` — the
        future may be shared with other waiters, and cancelling it
        directly would cancel them too.
        """
        loop = asyncio.get_running_loop()
        key: Optional[str] = None
        if op == "simulate":
            # timeout_s is client flow control, not part of the question
            # being asked — waiters with different timeouts still share
            # one execution.
            key_fields = {
                k: v for k, v in payload.items() if k != "timeout_s"
            }
            key = json.dumps(key_fields, sort_keys=True, default=str)
            existing = self._inflight.get(key)
            if existing is not None and not existing.done():
                self._metrics.count("service.dedup_inflight")
                return existing
        future: "asyncio.Future[Dict[str, object]]" = loop.create_future()
        if key is not None:
            self._inflight[key] = future
            future.add_done_callback(
                lambda done, k=key: self._forget(k, done)
            )
        self._pending.append((op, payload, future))
        if self._timer is None:
            self._timer = loop.call_later(self._window, self._flush, loop)
        return future

    def _forget(
        self, key: str, future: "asyncio.Future[Dict[str, object]]"
    ) -> None:
        if self._inflight.get(key) is future:
            del self._inflight[key]

    def _flush(self, loop: asyncio.AbstractEventLoop) -> None:
        self._timer = None
        batch, self._pending = self._pending, []
        if batch:
            self._running += 1
            loop.create_task(self._run(batch))

    async def _run(self, batch: List[_Item]) -> None:
        try:
            results = await self._runner(
                [(op, payload) for op, payload, _ in batch]
            )
            if len(results) != len(batch):  # pragma: no cover - defensive
                raise ServiceError(
                    f"batch runner returned {len(results)} results "
                    f"for {len(batch)} items"
                )
        except Exception as error:  # noqa: BLE001 - fail every waiter, not the loop
            for _, _, future in batch:
                if not future.done():
                    future.set_exception(
                        ServiceError(
                            f"batch execution failed: "
                            f"{type(error).__name__}: {error}"
                        )
                    )
            return
        finally:
            self._running -= 1
        for (_, _, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)
