"""The compilation service: a long-lived daemon over the compile pipeline.

Every CLI entry point (``repro compile/analyze/simulate``) is a cold
start: it re-imports the package, re-parses the program and re-derives
the transformation pipeline per invocation.  The paper's block-transfer
argument (Section 1: amortize the 70 us iPSC message startup over many
elements) applies to the toolchain itself — this package amortizes the
per-request startup over a process lifetime by serving the pipeline from
a warm asyncio daemon with shared caches.

Layers:

* :mod:`repro.service.protocol` — wire shapes, config, error taxonomy;
* :mod:`repro.service.jobs` — pure job execution shared with the direct
  CLI (which is what makes served output byte-identical to ``repro``);
* :mod:`repro.service.queueing` — bounded admission with backpressure;
* :mod:`repro.service.batching` — micro-batching + in-flight dedup;
* :mod:`repro.service.server` — the asyncio JSON-over-HTTP daemon;
* :mod:`repro.service.router` — the consistent-hash fleet router
  (cross-replica dedup, health checks, retry-on-next-replica);
* :mod:`repro.service.fleet` — the ``repro fleet`` replica launcher;
* :mod:`repro.service.client` — a thin synchronous client with optional
  bounded retry/backoff;
* :mod:`repro.service.cli` — ``repro serve``, ``repro fleet`` and
  ``repro submit``.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import ServiceConfig, ServiceError
from repro.service.router import HashRing, RouterConfig, request_fingerprint

__all__ = [
    "HashRing",
    "RouterConfig",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "request_fingerprint",
]
