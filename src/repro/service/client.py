"""A thin synchronous client for the compilation service.

Stdlib ``http.client`` only; one connection per request (the server
closes connections after answering).  Failures surface as
:class:`~repro.service.protocol.ServiceError` carrying the server's
error code and, for 429, the ``Retry-After`` hint.

Transient failures — 429 ``queue_full``, 503 ``draining``, and
transport-level unreachability — can be retried transparently: pass
``retries=N`` and the client sleeps between attempts with exponential
backoff plus jitter, honoring the server's ``Retry-After`` hint as a
lower bound (a saturated admission queue tells clients exactly how long
to back off; ignoring it just feeds the stampede).  The default is no
retries, preserving the original fail-fast contract.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import socket
import time
from typing import Any, Dict, Mapping, Optional

from repro.service.protocol import DEFAULT_PORT, OPS, ServiceError

#: Error codes worth retrying: the request was never executed, so a
#: later attempt cannot double-apply anything (every job is pure anyway).
RETRYABLE_CODES = frozenset({"queue_full", "draining", "unreachable"})

#: Environment overrides consulted for defaults (so ``repro submit`` in a
#: shell session does not need ``--host/--port`` every time).
HOST_ENV = "REPRO_SERVICE_HOST"
PORT_ENV = "REPRO_SERVICE_PORT"


def default_host() -> str:
    return os.environ.get(HOST_ENV, "127.0.0.1")


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """The ``Retry-After`` header as seconds, or None.

    RFC 9110 also allows an HTTP-date here (proxies rewrite the header
    that way); the client only uses the hint for numeric backoff, so
    anything non-numeric degrades to "no hint" instead of a crash.
    """
    if not value:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


def default_port() -> int:
    raw = os.environ.get(PORT_ENV)
    try:
        return int(raw) if raw else DEFAULT_PORT
    except ValueError:
        return DEFAULT_PORT


class ServiceClient:
    """Round-trip JSON requests to a running ``repro serve`` daemon."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        *,
        timeout: float = 120.0,
        retries: int = 0,
        backoff_base_s: float = 0.1,
        backoff_max_s: float = 10.0,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host if host is not None else default_host()
        self.port = port if port is not None else default_port()
        self.timeout = timeout
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _backoff_s(self, attempt: int, retry_after: Optional[float]) -> float:
        """Sleep before retry ``attempt`` (0-based): exponential backoff
        with full jitter, floored by the server's ``Retry-After`` hint."""
        backoff = min(
            self.backoff_max_s, self.backoff_base_s * (2.0 ** attempt)
        )
        delay = backoff * (0.5 + random.random() / 2.0)
        if retry_after is not None:
            delay = max(delay, retry_after)
        return min(delay, self.backoff_max_s)

    def _roundtrip(
        self, method: str, path: str, body: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """One request with up to ``self.retries`` retries on transient
        failures (429 queue_full / 503 draining / unreachable)."""
        for attempt in range(self.retries + 1):
            try:
                return self._roundtrip_once(method, path, body)
            except ServiceError as error:
                if (
                    attempt >= self.retries
                    or error.code not in RETRYABLE_CODES
                ):
                    raise
                time.sleep(self._backoff_s(attempt, error.retry_after))
        raise AssertionError("unreachable")  # pragma: no cover

    def _roundtrip_once(
        self, method: str, path: str, body: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        payload = None
        headers = {"Accept": "application/json", "Connection": "close"}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
            retry_after = response.getheader("Retry-After")
        except (ConnectionError, socket.timeout, OSError) as error:
            raise ServiceError(
                f"cannot reach compilation service at "
                f"{self.host}:{self.port}: {error}",
                code="unreachable",
                status=0,
            )
        finally:
            connection.close()
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServiceError(
                f"service returned non-JSON response (HTTP {status})",
                code="bad_response",
                status=status,
            )
        if status != 200:
            error_info = (
                document.get("error", {}) if isinstance(document, dict) else {}
            )
            raise ServiceError(
                str(error_info.get("message", f"HTTP {status}")),
                code=str(error_info.get("code", "internal")),
                status=status,
                retry_after=_parse_retry_after(retry_after),
            )
        if not isinstance(document, dict):
            raise ServiceError(
                "service returned a non-object JSON response",
                code="bad_response",
                status=status,
            )
        return document

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._roundtrip("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metricsz``."""
        return self._roundtrip("GET", "/metricsz")

    def submit(self, op: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """``POST /v1/<op>`` and return the full response document."""
        if op not in OPS:
            raise ServiceError(
                f"unknown op {op!r}: expected one of {list(OPS)}",
                code="bad_request",
            )
        return self._roundtrip("POST", f"/v1/{op}", payload)

    # Convenience wrappers mirroring the endpoint names.
    def compile(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        return self.submit("compile", payload)

    def analyze(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        return self.submit("analyze", payload)

    def simulate(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        return self.submit("simulate", payload)

    def sweep(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        return self.submit("sweep", payload)

    def solve(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        return self.submit("solve", payload)

    def tune(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        return self.submit("tune", payload)
