"""Bounded admission with backpressure for the compilation service.

The daemon admits at most ``capacity`` requests at a time; beyond that
it sheds load immediately (HTTP 429 + ``Retry-After``) instead of
queueing unboundedly — a full queue that keeps accepting work only turns
overload into timeouts.  :meth:`AdmissionQueue.join` is what graceful
drain waits on: it resolves when every admitted request has been
answered.
"""

from __future__ import annotations

import asyncio
from typing import Optional


class AdmissionQueue:
    """A counting admission gate for the single event-loop thread.

    All methods must be called from the event loop; there is no locking
    because there is no cross-thread access (workers never touch this).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.admitted_total = 0
        self.rejected_total = 0
        self._active = 0
        self._idle: Optional[asyncio.Event] = None

    @property
    def depth(self) -> int:
        """Requests currently admitted and not yet answered."""
        return self._active

    def _idle_event(self) -> asyncio.Event:
        # Created lazily so the queue can be constructed off-loop.
        if self._idle is None:
            self._idle = asyncio.Event()
            if self._active == 0:
                self._idle.set()
        return self._idle

    def try_acquire(self) -> bool:
        """Admit one request, or refuse (caller answers 429)."""
        if self._active >= self.capacity:
            self.rejected_total += 1
            return False
        self._active += 1
        self.admitted_total += 1
        self._idle_event().clear()
        return True

    def release(self) -> None:
        """A previously admitted request has been answered."""
        if self._active <= 0:  # pragma: no cover - defensive
            raise RuntimeError("release() without a matching try_acquire()")
        self._active -= 1
        if self._active == 0:
            self._idle_event().set()

    def retry_after_s(self) -> int:
        """The backoff hint sent with 429 responses."""
        return 1

    async def join(self) -> None:
        """Wait until no admitted request remains in flight."""
        if self._active == 0:
            return
        await self._idle_event().wait()
