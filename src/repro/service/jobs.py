"""Pure job execution shared by the direct CLI and the compilation service.

Every endpoint of the daemon and the corresponding ``repro`` subcommand
call the *same* function in this module over the *same* payload dict, so
served output is byte-identical to the direct path by construction —
``repro submit compile --json`` and ``repro compile --json`` cannot
drift apart because there is only one implementation.

Payloads are plain JSON-compatible dicts (they cross both the HTTP wire
and the ``multiprocessing`` pickle boundary); :func:`execute_job` is the
top-level importable worker entry point the runtime's
:func:`~repro.runtime.executor.run_tasks` fans batches out with, and
:func:`execute_batch` is the blocking batch runner the daemon calls on
its executor thread.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.cli import analyze_texts
from repro.bench.harness import run_speedup_sweep, speedup_table
from repro.codegen import (
    emit_python,
    generate_ownership,
    generate_spmd,
    render_node_program,
)
from repro.core import access_normalize
from repro.errors import ReproError
from repro.ir import render_nest
from repro.ir.program import Program
from repro.lang import parse_program
from repro.numa import butterfly_gp1000, ipsc860, simulate, uniform_memory
from repro.numa.machine import MachineConfig
from repro.runtime import (
    Metrics,
    SimulationCache,
    SweepCell,
    run_grid,
    run_tasks,
)

#: Machine factories shared with the CLI's ``--machine`` choice.
MACHINES = {
    "butterfly": butterfly_gp1000,
    "ipsc860": ipsc860,
    "uniform": uniform_memory,
}

#: Simulation variants accepted by the ``simulate`` op.
VARIANTS = ("naive", "normalized", "normalized+bt")

_EMIT_CHOICES = ("report", "ir", "node", "python", "all")


# ----------------------------------------------------------------------
# payload construction (used by both `repro <cmd>` and `repro submit`)
# ----------------------------------------------------------------------
def _read_file(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def compile_payload(args) -> Dict[str, object]:
    """The ``compile`` payload for parsed CLI args (reads the source file)."""
    return {
        "source": _read_file(args.file),
        "name": args.file,
        "priority": args.priority,
        "assume": list(args.assume),
        "emit": args.emit,
        "schedule": args.schedule,
        "block_transfers": not args.no_block_transfers,
        "json": bool(getattr(args, "json", False)),
    }


def analyze_payload(args) -> Dict[str, object]:
    """The ``analyze`` payload for parsed CLI args (reads every input)."""
    return {
        "inputs": [
            {"name": path, "text": _read_file(path)} for path in args.files
        ],
        "json": bool(args.json),
        "fail_on": args.fail_on,
        "priority": args.priority,
        "assume": list(args.assume),
        "schedule": args.schedule,
        "assume_sync": bool(args.assume_sync),
        "passes": args.passes,
    }


def sweep_payload(args) -> Dict[str, object]:
    """The ``sweep`` payload for parsed ``repro simulate`` args."""
    return {
        "source": _read_file(args.file),
        "name": args.file,
        "priority": args.priority,
        "assume": list(args.assume),
        "machine": args.machine,
        "contention": args.contention,
        "processors": list(args.processors),
        "ownership": bool(args.ownership),
        "detail": bool(args.detail),
        "engine": getattr(args, "engine", "auto"),
    }


def _parse_candidate(text: str) -> Dict[str, str]:
    """``variant`` or ``variant/schedule`` -> a solve candidate spec."""
    variant, _, schedule = str(text).partition("/")
    return {"variant": variant, "schedule": schedule or "wrapped"}


def _parse_bindings(pairs) -> Optional[Dict[str, int]]:
    """Repeatable ``NAME=VALUE`` options -> a parameter dict."""
    if not pairs:
        return None
    params: Dict[str, int] = {}
    for pair in pairs:
        name, sep, value = str(pair).partition("=")
        if not sep or not name:
            raise ReproError(
                f"invalid parameter binding {pair!r}: expected NAME=VALUE"
            )
        try:
            params[name] = int(value)
        except ValueError:
            raise ReproError(
                f"invalid parameter binding {pair!r}: value must be an integer"
            )
    return params


def tune_payload(args) -> Dict[str, object]:
    """The ``tune`` payload for parsed ``repro tune`` args."""
    return {
        "source": _read_file(args.file),
        "name": args.file,
        "priority": args.priority,
        "assume": list(args.assume),
        "machine": args.machine,
        "contention": args.contention,
        "processors": list(args.processors),
        "params": _parse_bindings(args.param),
        "budget": args.budget,
        "top_k": args.top_k,
        "block_sizes": list(args.block_sizes),
        "allow_replicated": bool(args.allow_replicated),
        "json": bool(args.json),
    }


def solve_payload(args) -> Dict[str, object]:
    """The ``solve`` payload for parsed ``repro solve`` args."""
    return {
        "source": _read_file(args.file),
        "name": args.file,
        "priority": args.priority,
        "assume": list(args.assume),
        "machine": args.machine,
        "contention": args.contention,
        "params": _parse_bindings(args.param),
        "left": _parse_candidate(args.left),
        "right": _parse_candidate(args.right),
        "min_processors": args.min_processors,
        "max_processors": args.max_processors,
        "json": bool(args.json),
    }


# ----------------------------------------------------------------------
# payload interpretation
# ----------------------------------------------------------------------
def machine_from_payload(payload: Mapping[str, object]) -> MachineConfig:
    """Build the target machine named by ``payload``."""
    name = payload.get("machine", "butterfly")
    factory = MACHINES.get(str(name))
    if factory is None:
        raise ReproError(
            f"unknown machine {name!r}: expected one of {sorted(MACHINES)}"
        )
    contention = payload.get("contention")
    if contention is not None:
        return factory(contention_coefficient=float(contention))  # type: ignore[arg-type]
    return factory()


def _parse_source(payload: Mapping[str, object], metrics: Metrics) -> Program:
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ReproError("request needs a non-empty 'source' string")
    name = str(payload.get("name") or "<request>")
    with metrics.stage("parse"):
        return parse_program(source, name=name)


def _normalize(payload: Mapping[str, object], program: Program, metrics: Metrics):
    priority_text = payload.get("priority")
    priority = str(priority_text).split(",") if priority_text else None
    assume = tuple(str(fact) for fact in (payload.get("assume") or ()))
    with metrics.stage("normalize"):
        return access_normalize(
            program,
            priority=priority,
            assumptions=(tuple(program.assumptions) + assume) or None,
        )


def _normalize_processors(raw: object) -> List[int]:
    """Validate a processor-count list: positive ints, deduplicated, sorted."""
    if raw is None:
        raw = [1, 4, 8, 16, 28]
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ReproError(
            "'processors' must be a non-empty list of positive integers"
        )
    procs = []
    for item in raw:
        try:
            value = int(item)
        except (TypeError, ValueError):
            raise ReproError(f"invalid processor count {item!r}")
        if value <= 0:
            raise ReproError(f"processor counts must be positive, got {item!r}")
        procs.append(value)
    return sorted(set(procs))


def _engine_from_payload(payload: Mapping[str, object]) -> str:
    """Validate the accounting-engine choice of a simulate/sweep payload."""
    from repro.numa.simulator import ENGINES

    engine = str(payload.get("engine", "auto") or "auto")
    if engine not in ENGINES:
        choices = ", ".join(ENGINES)
        raise ReproError(
            f"unknown engine {engine!r}: expected one of: {choices}"
        )
    return engine


def _test_delay(payload: Mapping[str, object]) -> None:
    """Honor the ``delay_ms`` testing aid (used to exercise timeouts,
    queue backpressure and drain ordering deterministically)."""
    delay = payload.get("delay_ms")
    if delay:
        time.sleep(float(delay) / 1000.0)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# the jobs themselves
# ----------------------------------------------------------------------
def run_compile(
    payload: Mapping[str, object], *, metrics: Optional[Metrics] = None
) -> str:
    """``repro compile``'s stdout (sans trailing newline) for ``payload``."""
    metrics = metrics if metrics is not None else Metrics()
    program = _parse_source(payload, metrics)
    result = _normalize(payload, program, metrics)
    emit = str(payload.get("emit", "all"))
    if emit not in _EMIT_CHOICES:
        raise ReproError(
            f"unknown emit kind {emit!r}: expected one of {_EMIT_CHOICES}"
        )
    schedule = str(payload.get("schedule", "wrapped"))
    block_transfers = bool(payload.get("block_transfers", True))
    with metrics.stage("codegen"):
        node = generate_spmd(
            result.transformed,
            schedule=schedule,
            block_transfers=block_transfers,
        )
    sections: List[Tuple[str, str, str]] = []
    if emit in ("report", "all"):
        sections.append(
            ("report", "access normalization report", result.report())
        )
    if emit in ("ir", "all"):
        sections.append(
            ("ir", "transformed loop nest", render_nest(result.transformed.nest))
        )
    if emit in ("node", "all"):
        sections.append(("node", "SPMD node program", render_node_program(node)))
    if emit in ("python", "all"):
        sections.append(("python", "generated Python", emit_python(node.program)))
    if payload.get("json"):
        document = {
            "tool": "repro-compile",
            "program": program.name,
            "schedule": schedule,
            "block_transfers": block_transfers,
            "artifacts": {key: text for key, _, text in sections},
        }
        return json.dumps(document, indent=2, sort_keys=True)
    return "\n".join(
        f"=== {title} ===\n{text}" for _, title, text in sections
    )


def run_analyze(
    payload: Mapping[str, object], *, metrics: Optional[Metrics] = None
) -> Tuple[str, str, int]:
    """``repro analyze``'s ``(stdout, stderr, exit_code)`` for ``payload``."""
    metrics = metrics if metrics is not None else Metrics()
    raw_inputs = payload.get("inputs")
    if not isinstance(raw_inputs, (list, tuple)) or not raw_inputs:
        raise ReproError("analyze request needs a non-empty 'inputs' list")
    inputs: List[Tuple[str, str]] = []
    for item in raw_inputs:
        if not isinstance(item, Mapping) or "text" not in item:
            raise ReproError(
                "each analyze input must be an object with 'name' and 'text'"
            )
        inputs.append((str(item.get("name", "<request>")), str(item["text"])))
    priority_text = payload.get("priority")
    passes_text = payload.get("passes")
    with metrics.stage("analyze"):
        return analyze_texts(
            inputs,
            fail_on=str(payload.get("fail_on", "error")),
            priority=str(priority_text).split(",") if priority_text else None,
            assume=tuple(str(f) for f in (payload.get("assume") or ())),
            schedule=str(payload.get("schedule", "wrapped")),
            assume_sync=bool(payload.get("assume_sync", False)),
            as_json=bool(payload.get("json", False)),
            passes=str(passes_text).split(",") if passes_text else None,
        )


def run_sweep(
    payload: Mapping[str, object],
    *,
    jobs: int = 1,
    cache: Optional[SimulationCache] = None,
    metrics: Optional[Metrics] = None,
) -> Tuple[str, str]:
    """``repro simulate``'s ``(stdout, stderr)`` for ``payload``."""
    metrics = metrics if metrics is not None else Metrics()
    program = _parse_source(payload, metrics)
    result = _normalize(payload, program, metrics)
    machine = machine_from_payload(payload)
    err_lines: List[str] = []
    with metrics.stage("codegen"):
        nodes = {
            "naive": generate_spmd(program, block_transfers=False),
            "normalized": generate_spmd(result.transformed, block_transfers=False),
            "normalized+bt": generate_spmd(result.transformed),
        }
        if payload.get("ownership"):
            try:
                nodes["ownership"] = generate_ownership(program)
            except ReproError as error:
                err_lines.append(f"(skipping ownership baseline: {error})")
    procs = _normalize_processors(payload.get("processors"))
    engine = _engine_from_payload(payload)
    series = run_speedup_sweep(
        nodes, procs, machine=machine, baseline="normalized+bt",
        jobs=jobs, cache=cache, metrics=metrics, engine=engine,
    )
    lines = [f"machine: {machine.name}", speedup_table(procs, series)]
    if payload.get("detail"):
        outcome = simulate(
            nodes["normalized+bt"], processors=procs[-1], machine=machine,
            engine=engine,
        )
        lines.append(f"\nper-processor breakdown (normalized+bt, P={procs[-1]}):")
        lines.append(outcome.table())
    return "\n".join(lines), "\n".join(err_lines)


#: Candidate schedules accepted by the ``solve`` op.
_SCHEDULES = ("wrapped", "blocked")

#: Upper bound on the processor range a solve request may scan.  The
#: symbolic evaluation is cheap per cell, but the range still bounds
#: served work.
_SOLVE_MAX_PROCESSORS = 4096


def _candidate_node(
    spec: object,
    program: Program,
    normalized,
    metrics: Metrics,
) -> Tuple[str, object]:
    """Build the node program for one solve candidate spec."""
    if not isinstance(spec, Mapping):
        raise ReproError(
            "solve candidates must be objects with 'variant' and 'schedule'"
        )
    variant = str(spec.get("variant", "normalized"))
    if variant not in VARIANTS:
        raise ReproError(
            f"unknown variant {variant!r}: expected one of {VARIANTS}"
        )
    schedule = str(spec.get("schedule", "wrapped"))
    if schedule not in _SCHEDULES:
        raise ReproError(
            f"unknown schedule {schedule!r}: expected one of {_SCHEDULES}"
        )
    with metrics.stage("codegen"):
        if variant == "naive":
            node = generate_spmd(
                program, schedule=schedule, block_transfers=False
            )
        else:
            node = generate_spmd(
                normalized.transformed,
                schedule=schedule,
                block_transfers=(variant == "normalized+bt"),
            )
    return f"{variant}/{schedule}", node


def run_solve(
    payload: Mapping[str, object], *, metrics: Optional[Metrics] = None
) -> str:
    """``repro solve``'s stdout for ``payload``.

    Answers an analytic crossover question — "at what processor count
    does the *right* candidate start beating the *left* one?" — by
    deriving each candidate's symbolic accounting form once and
    evaluating it at every processor count in the requested range.  The
    whole scan therefore costs two derivations plus cheap per-cell
    evaluations, which is the point of the symbolic tier: the question
    covers hundreds of cells but only ever touches two programs.
    """
    metrics = metrics if metrics is not None else Metrics()
    program = _parse_source(payload, metrics)
    result = _normalize(payload, program, metrics)
    machine = machine_from_payload(payload)
    raw_params = payload.get("params") or None
    params = None
    if raw_params is not None:
        if not isinstance(raw_params, Mapping):
            raise ReproError("'params' must be an object of integer bindings")
        try:
            params = {str(k): int(v) for k, v in raw_params.items()}  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ReproError(
                "'params' must be an object of integer bindings"
            )
    try:
        low = int(payload.get("min_processors", 1))  # type: ignore[arg-type]
        high = int(payload.get("max_processors", 64))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ReproError("processor bounds must be integers")
    if low < 1 or high < low:
        raise ReproError(
            f"processor range must satisfy 1 <= min <= max, "
            f"got [{low}, {high}]"
        )
    if high > _SOLVE_MAX_PROCESSORS:
        raise ReproError(
            f"max_processors {high} exceeds the solve cap "
            f"{_SOLVE_MAX_PROCESSORS}"
        )
    left_label, left_node = _candidate_node(
        payload.get("left") or {"variant": "normalized", "schedule": "wrapped"},
        program, result, metrics,
    )
    right_label, right_node = _candidate_node(
        payload.get("right") or {"variant": "normalized", "schedule": "blocked"},
        program, result, metrics,
    )
    series: List[Tuple[int, float, float]] = []
    crossover: Optional[int] = None
    with metrics.stage("solve"):
        for procs in range(low, high + 1):
            left_time = simulate(
                left_node, processors=procs, params=params,
                machine=machine, engine="symbolic",
            ).total_time_us
            right_time = simulate(
                right_node, processors=procs, params=params,
                machine=machine, engine="symbolic",
            ).total_time_us
            series.append((procs, left_time, right_time))
            if crossover is None and right_time < left_time:
                crossover = procs

    if payload.get("json"):
        document = {
            "tool": "repro-solve",
            "program": program.name,
            "machine": machine.name,
            "params": params,
            "left": left_label,
            "right": right_label,
            "min_processors": low,
            "max_processors": high,
            "crossover": crossover,
            "series": [
                {"processors": p, "left_us": lt, "right_us": rt}
                for p, lt, rt in series
            ],
        }
        return json.dumps(document, indent=2, sort_keys=True)

    lines = [
        f"machine: {machine.name}",
        f"program: {program.name}"
        + (
            "  ("
            + ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
            + ")"
            if params
            else ""
        ),
        f"question: smallest P in [{low}, {high}] where {right_label} "
        f"beats {left_label}",
    ]
    if crossover is None:
        lines.append(
            f"answer: none — {right_label} never beats {left_label} "
            f"in [{low}, {high}]"
        )
    else:
        lines.append(f"answer: P = {crossover}")
    # Show powers of two plus the crossover neighborhood, not all cells.
    shown = {low, high}
    value = 1
    while value <= high:
        if value >= low:
            shown.add(value)
        value *= 2
    if crossover is not None:
        shown.update(p for p in (crossover - 1, crossover) if low <= p <= high)
    width = max(len(left_label), len(right_label), 12)
    lines.append("")
    lines.append(
        f"{'P':>6}  {left_label + ' (us)':>{width + 5}}  "
        f"{right_label + ' (us)':>{width + 5}}"
    )
    for procs, left_time, right_time in series:
        if procs not in shown:
            continue
        marker = "  <- crossover" if procs == crossover else ""
        lines.append(
            f"{procs:>6}  {left_time:>{width + 5}.1f}  "
            f"{right_time:>{width + 5}.1f}{marker}"
        )
    return "\n".join(lines)


def run_tune(
    payload: Mapping[str, object],
    *,
    jobs: int = 1,
    cache: Optional[SimulationCache] = None,
    metrics: Optional[Metrics] = None,
) -> str:
    """``repro tune``'s stdout for ``payload``.

    The CLI and the daemon's ``/v1/tune`` endpoint both call this
    function with the same payload dict, so served output is
    byte-identical to the direct CLI by construction.
    """
    from repro.tune.cli import render_json, render_text
    from repro.tune.search import tune_program
    from repro.tune.space import SearchSpace

    metrics = metrics if metrics is not None else Metrics()
    program = _parse_source(payload, metrics)
    machine = machine_from_payload(payload)
    procs = _normalize_processors(payload.get("processors") or [4, 16])

    raw_params = payload.get("params") or None
    params = None
    if raw_params is not None:
        if not isinstance(raw_params, Mapping):
            raise ReproError("'params' must be an object of integer bindings")
        try:
            params = {str(k): int(v) for k, v in raw_params.items()}  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ReproError("'params' must be an object of integer bindings")

    raw_budget = payload.get("budget", 400)
    budget: Optional[int]
    try:
        budget = None if raw_budget is None else int(raw_budget)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ReproError(f"invalid budget {raw_budget!r}")
    if budget is not None and budget <= 0:
        budget = None  # 0 (and the CLI's --budget 0) means unbounded

    try:
        top_k = int(payload.get("top_k", 5))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ReproError(f"invalid top_k {payload.get('top_k')!r}")
    if top_k <= 0:
        raise ReproError(f"top_k must be positive, got {top_k}")

    raw_blocks = payload.get("block_sizes")
    if raw_blocks is None:
        raw_blocks = [8]
    if not isinstance(raw_blocks, (list, tuple)):
        raise ReproError("'block_sizes' must be a list of positive integers")
    try:
        block_sizes = tuple(sorted({int(b) for b in raw_blocks}))
    except (TypeError, ValueError):
        raise ReproError("'block_sizes' must be a list of positive integers")

    space = SearchSpace(
        block_sizes=block_sizes,
        allow_replicated=bool(payload.get("allow_replicated")),
    )

    priority_text = payload.get("priority")
    priority = str(priority_text).split(",") if priority_text else None
    assume = tuple(str(fact) for fact in (payload.get("assume") or ()))

    result = tune_program(
        program,
        processors=tuple(procs),
        machine=machine,
        params=params,
        priority=priority,
        assumptions=(tuple(program.assumptions) + assume) or None,
        budget=budget,
        space=space,
        jobs=jobs,
        cache=cache,
        metrics=metrics,
    )
    if payload.get("json"):
        return render_json(result, top_k)
    return render_text(result, top_k)


def build_simulation_cell(
    payload: Mapping[str, object], metrics: Optional[Metrics] = None
) -> SweepCell:
    """Compile a ``simulate`` payload down to one sweep-grid cell.

    The cell is what the daemon's micro-batcher hands to
    :func:`~repro.runtime.executor.run_grid`, whose fingerprint keys
    (:func:`~repro.runtime.cache.cell_key`) then deduplicate identical
    cells within the batch and against the shared cache.
    """
    metrics = metrics if metrics is not None else Metrics()
    _test_delay(payload)
    program = _parse_source(payload, metrics)
    variant = str(payload.get("variant", "normalized+bt"))
    if variant not in VARIANTS:
        raise ReproError(
            f"unknown variant {variant!r}: expected one of {VARIANTS}"
        )
    try:
        processors = int(payload.get("processors", 1))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ReproError(
            f"invalid processor count {payload.get('processors')!r}"
        )
    if processors <= 0:
        raise ReproError(f"processor count must be positive, got {processors}")
    machine = machine_from_payload(payload)
    schedule = str(payload.get("schedule", "wrapped"))
    if variant == "naive":
        with metrics.stage("codegen"):
            node = generate_spmd(program, block_transfers=False)
    else:
        result = _normalize(payload, program, metrics)
        with metrics.stage("codegen"):
            node = generate_spmd(
                result.transformed,
                schedule=schedule,
                block_transfers=(variant == "normalized+bt"),
            )
    raw_params = payload.get("params") or None
    params = None
    if raw_params is not None:
        if not isinstance(raw_params, Mapping):
            raise ReproError("'params' must be an object of integer bindings")
        try:
            params = {str(k): int(v) for k, v in raw_params.items()}  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ReproError(
                "'params' must be an object of integer bindings"
            )
    return SweepCell(
        name=f"{program.name}@{variant}",
        node=node,
        processors=processors,
        params=params,
        machine=machine,
        engine=_engine_from_payload(payload),
    )


# ----------------------------------------------------------------------
# worker + batch entry points
# ----------------------------------------------------------------------
def _ok(result: Mapping[str, object], exit_code: int = 0) -> Dict[str, object]:
    return {"ok": True, "result": dict(result), "exit_code": exit_code}


def _failed(code: str, message: str) -> Dict[str, object]:
    return {
        "ok": False,
        "error": {"code": code, "message": message},
        "exit_code": 1,
    }


def execute_job(item: Tuple[str, Mapping[str, object]]) -> Dict[str, object]:
    """Run one non-simulate job; top-level and picklable for ``run_tasks``.

    Returns a response dict with a ``metrics`` snapshot attached: worker
    processes cannot mutate the daemon's :class:`Metrics`, so they ship a
    detached :meth:`Metrics.to_dict` snapshot back for the event loop to
    merge.
    """
    op, payload = item
    metrics = Metrics()
    try:
        _test_delay(payload)
        if op == "compile":
            stdout = run_compile(payload, metrics=metrics)
            response = _ok({"stdout": stdout, "stderr": ""})
        elif op == "analyze":
            stdout, stderr, code = run_analyze(payload, metrics=metrics)
            response = _ok({"stdout": stdout, "stderr": stderr}, exit_code=code)
        elif op == "sweep":
            stdout, stderr = run_sweep(payload, metrics=metrics)
            response = _ok({"stdout": stdout, "stderr": stderr})
        elif op == "solve":
            stdout = run_solve(payload, metrics=metrics)
            response = _ok({"stdout": stdout, "stderr": ""})
        elif op == "tune":
            stdout = run_tune(payload, metrics=metrics)
            response = _ok({"stdout": stdout, "stderr": ""})
        else:
            response = _failed("bad_request", f"unknown op {op!r}")
    except ReproError as error:
        response = _failed("compile_error", str(error))
    except Exception as error:  # noqa: BLE001 - workers must not crash batches
        response = _failed("internal", f"{type(error).__name__}: {error}")
    response["metrics"] = metrics.to_dict()
    return response


def execute_batch(
    items: Sequence[Tuple[str, Mapping[str, object]]],
    *,
    jobs: int = 1,
    cache: Optional[SimulationCache] = None,
) -> Tuple[List[Dict[str, object]], Dict[str, Dict[str, float]]]:
    """Run one micro-batch of mixed requests; blocking, executor-thread side.

    ``simulate`` items are compiled to sweep cells and pushed through one
    :func:`run_grid` call, so identical cells inside the batch collapse to
    a single execution (``dedup_hits``) and cells seen before come from
    the shared cache (``cache_hits``).  Everything else fans out over
    :func:`run_tasks` with :func:`execute_job`.  Returns per-item response
    dicts in input order plus one merged metrics snapshot.
    """
    metrics = Metrics()
    results: List[Optional[Dict[str, object]]] = [None] * len(items)

    cells: List[SweepCell] = []
    cell_slots: List[int] = []
    other_slots: List[int] = []
    for index, (op, payload) in enumerate(items):
        if op != "simulate":
            other_slots.append(index)
            continue
        try:
            cells.append(build_simulation_cell(payload, metrics))
            cell_slots.append(index)
        except ReproError as error:
            results[index] = _failed("compile_error", str(error))
        except Exception as error:  # noqa: BLE001
            results[index] = _failed(
                "internal", f"{type(error).__name__}: {error}"
            )

    if cells:
        outcomes = run_grid(
            cells, jobs=jobs, cache=cache, metrics=metrics, on_error="keep"
        )
        for slot, outcome in zip(cell_slots, outcomes):
            if isinstance(outcome, ReproError):
                results[slot] = _failed("compile_error", str(outcome))
            else:
                results[slot] = _ok({"simulation": outcome.to_dict()})

    if other_slots:
        outcomes = run_tasks(
            execute_job,
            [items[slot] for slot in other_slots],
            jobs=jobs,
            metrics=metrics,
        )
        for slot, outcome in zip(other_slots, outcomes):
            snapshot = outcome.pop("metrics", None)
            if snapshot:
                metrics.merge(snapshot)
            results[slot] = outcome

    finished = [
        result
        if result is not None
        else _failed("internal", "batch produced no result")
        for result in results
    ]
    return finished, metrics.to_dict()
