"""``repro fleet`` — N serve replicas behind one consistent-hash router.

The launcher spawns ``--replicas`` copies of ``repro serve`` as child
processes (each on an ephemeral port, learned from the ``listening``
lifecycle event in its log), points every replica at the same shared
disk-cache tier (``--cache-dir`` / ``REPRO_CACHE_DIR``), then runs the
:class:`~repro.service.router.FleetRouter` in the foreground on
``--port``.  Clients talk only to the router; identical requests are
consistent-hash routed to the replica whose in-memory caches are warm.

Shutdown is a two-stage graceful drain: SIGTERM (or SIGINT) first
drains the router — in-flight forwards finish, new work is refused —
then each replica receives SIGTERM and performs its own zero-drop drain
before the launcher exits.  ``--state-file`` writes a JSON description
of the running topology (router port, replica pids/ports/logs) that the
load harness and operators use to address or kill individual replicas.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.service.router import RouterConfig, run_router


@dataclass
class FleetConfig:
    """Everything ``repro fleet`` needs to run a replica fleet."""

    host: str = "127.0.0.1"
    port: int = 0
    replicas: int = 3
    jobs: int = 1
    queue_limit: int = 64
    timeout_s: float = 60.0
    batch_window_s: float = 0.01
    drain_grace_s: float = 30.0
    cache_dir: Optional[str] = None
    cache_max_entries: Optional[int] = None
    log_dir: Optional[str] = None
    state_file: Optional[str] = None
    health_interval_s: float = 1.0
    quiet_replicas: bool = True
    log_requests: bool = True
    extra_serve_args: Sequence[str] = field(default_factory=tuple)


class ReplicaProcess:
    """One spawned ``repro serve`` child and its log file."""

    def __init__(self, index: int, process: subprocess.Popen, log_path: str):
        self.index = index
        self.process = process
        self.log_path = log_path
        self.port: Optional[int] = None

    @property
    def pid(self) -> int:
        return self.process.pid

    def wait_for_port(self, timeout: float = 30.0) -> int:
        """Poll the replica's log for the ``listening`` event's port."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"replica {self.index} exited with code "
                    f"{self.process.returncode} before listening "
                    f"(see {self.log_path})"
                )
            try:
                with open(self.log_path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        if '"listening"' not in line:
                            continue
                        try:
                            record = json.loads(line)
                        except json.JSONDecodeError:
                            continue
                        if record.get("event") == "listening":
                            self.port = int(record["port"])
                            return self.port
            except OSError:
                pass
            time.sleep(0.05)
        raise RuntimeError(
            f"replica {self.index} never reported a listening port "
            f"(see {self.log_path})"
        )


def spawn_replicas(config: FleetConfig) -> List[ReplicaProcess]:
    """Start the serve children and wait until each reports its port."""
    log_dir = config.log_dir or tempfile.mkdtemp(prefix="repro-fleet-")
    os.makedirs(log_dir, exist_ok=True)
    replicas: List[ReplicaProcess] = []
    try:
        for index in range(config.replicas):
            argv = [
                sys.executable, "-m", "repro", "serve",
                "--host", config.host,
                "--port", "0",
                "--jobs", str(config.jobs),
                "--queue-limit", str(config.queue_limit),
                "--timeout", str(config.timeout_s),
                "--batch-window", str(config.batch_window_s),
                "--drain-grace", str(config.drain_grace_s),
            ]
            if config.cache_dir:
                argv += ["--cache-dir", config.cache_dir]
            if config.cache_max_entries is not None:
                argv += ["--cache-max-entries", str(config.cache_max_entries)]
            if config.quiet_replicas:
                argv.append("--quiet")
            argv += list(config.extra_serve_args)
            log_path = os.path.join(log_dir, f"replica-{index}.log")
            log_file = open(log_path, "w", encoding="utf-8")
            try:
                process = subprocess.Popen(
                    argv,
                    stdout=subprocess.DEVNULL,
                    stderr=log_file,
                )
            finally:
                # The child holds its own descriptor; the parent's copy
                # would otherwise leak one fd per replica.
                log_file.close()
            replicas.append(ReplicaProcess(index, process, log_path))
        for replica in replicas:
            replica.wait_for_port()
    except Exception:
        terminate_replicas(replicas, grace_s=5.0)
        raise
    return replicas


def terminate_replicas(
    replicas: Sequence[ReplicaProcess], grace_s: float = 30.0
) -> int:
    """SIGTERM every replica, wait for graceful drains; returns the
    number that had to be killed outright."""
    for replica in replicas:
        if replica.process.poll() is None:
            try:
                replica.process.send_signal(signal.SIGTERM)
            except ProcessLookupError:
                pass
    killed = 0
    deadline = time.monotonic() + grace_s
    for replica in replicas:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            replica.process.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            replica.process.kill()
            replica.process.wait()
            killed += 1
    return killed


def write_state_file(
    path: str,
    host: str,
    router_port: int,
    replicas: Sequence[ReplicaProcess],
) -> None:
    """Describe the running topology for harnesses and operators."""
    state: Dict[str, object] = {
        "schema": 1,
        "pid": os.getpid(),
        "router": {"host": host, "port": router_port},
        "replicas": [
            {
                "index": replica.index,
                "pid": replica.pid,
                "host": host,
                "port": replica.port,
                "log": replica.log_path,
            }
            for replica in replicas
        ],
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(state, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def run_fleet(config: FleetConfig) -> int:
    """Blocking entry point for ``repro fleet``."""
    replicas = spawn_replicas(config)
    addresses = [f"{config.host}:{replica.port}" for replica in replicas]
    router_config = RouterConfig(
        host=config.host,
        port=config.port,
        replicas=addresses,
        health_interval_s=config.health_interval_s,
        forward_timeout_s=max(config.timeout_s * 2.0, 30.0),
        drain_grace_s=config.drain_grace_s,
        log_requests=config.log_requests,
    )
    # run_router blocks until the router's own drain completes, so the
    # state file must be written by the router once it has bound.  Do it
    # with a tiny wrapper: start, write, then serve.
    import asyncio

    from repro.service.router import FleetRouter

    router = FleetRouter(router_config)

    async def _main() -> None:
        await router.start()
        if config.state_file:
            assert router.port is not None
            write_state_file(
                config.state_file, config.host, router.port, replicas
            )
        await router.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - direct ^C
        pass
    finally:
        killed = terminate_replicas(replicas, grace_s=config.drain_grace_s)
        if killed:
            print(
                f"fleet: {killed} replica(s) exceeded the drain grace and "
                "were killed",
                file=sys.stderr,
            )
    return 0


__all__ = [
    "FleetConfig",
    "ReplicaProcess",
    "run_fleet",
    "run_router",
    "spawn_replicas",
    "terminate_replicas",
    "write_state_file",
]
