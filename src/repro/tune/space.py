"""The transformation autotuner's search space.

The paper hand-picks one transformation ``T`` per kernel from the
access-normalization machinery and one data distribution per array.  The
tuner replaces both choices with enumeration:

* **Distribution assignments** — per array, every wrapped/blocked
  dimension choice (the :mod:`repro.core.autodist` menu), extended with
  block-cyclic distributions at configurable block sizes and, optionally,
  replication.
* **Transformation recipes** — candidate bases seeded from the data
  access matrix (Algorithm BasisMatrix row subsets, in both priority
  orders), plus skewed and scaled variants of the reduced basis, each
  repaired by Algorithm LegalBasis and completed to an invertible matrix
  by Algorithm LegalInvt.  The ``derived`` recipe is the paper's own
  pipeline (:func:`repro.core.normalize.derive_transformation_matrix`),
  so the hand-picked transformations are always *in* the space; the
  ``identity`` recipe keeps the untransformed nest as a candidate.

Recipes whose completion fails (LegalBasis drops every row, the padding
is singular, ...) are reported with a reason rather than silently
skipped — the driver records them as pruned candidates.

Nests with non-uniform dependences have no distance matrix to complete
against, so their recipe set degrades to ``derived`` (the conservative
direction-vector partial normalization) and ``identity``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, product
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.access_matrix import DataAccessMatrix
from repro.core.basis import basis_matrix
from repro.core.legal import legal_basis, legal_invertible
from repro.core.normalize import _derive_with_directions, derive_transformation_matrix
from repro.dependence.distance import Dependence, has_non_uniform
from repro.distributions import BlockCyclic, Blocked, Distribution, Wrapped
from repro.errors import LinalgError, ReproError, IllegalTransformationError
from repro.ir.program import Program
from repro.linalg.fraction_matrix import Matrix

#: Every recipe kind the enumerator understands, in enumeration order.
RECIPE_KINDS = ("derived", "identity", "rows", "skew", "scale")

#: Provenance pairs: ``(access_row_index, negated)`` as in
#: :class:`~repro.core.legal.LegalBasisResult`.
Provenance = Tuple[Tuple[int, bool], ...]


@dataclass(frozen=True)
class SearchSpace:
    """Bounds and knobs of the candidate space.

    ``block_sizes=()`` and ``recipes=("derived",)`` reproduce the classic
    :func:`repro.core.autodist.search_distributions` menu exactly (same
    options, same order), which is how that module is now implemented.
    """

    #: Block sizes offered for block-cyclic distributions (per dimension).
    block_sizes: Tuple[int, ...] = (8,)
    #: Offer full replication (no distribution) per array.
    allow_replicated: bool = False
    #: Recipe kinds to enumerate (subset of :data:`RECIPE_KINDS`).
    recipes: Tuple[str, ...] = RECIPE_KINDS
    #: Skew factors applied between reduced-basis rows.
    skew_factors: Tuple[int, ...] = (1, -1)
    #: Diagonal scale factors (non-unimodular stride candidates).
    scale_factors: Tuple[int, ...] = (2,)
    #: Access-matrix rows considered for subset recipes (ranked prefix).
    max_rows: int = 6
    #: Cap on row-subset recipes per distribution assignment.
    max_row_selections: int = 48

    def __post_init__(self) -> None:
        unknown = sorted(set(self.recipes) - set(RECIPE_KINDS))
        if unknown:
            raise ReproError(
                f"unknown tuner recipe(s) {', '.join(unknown)}: expected a "
                f"subset of {', '.join(RECIPE_KINDS)}"
            )
        if not self.recipes:
            raise ReproError("the search space needs at least one recipe")
        if any(size <= 0 for size in self.block_sizes):
            raise ReproError("block sizes must be positive")
        if any(factor == 0 for factor in self.skew_factors):
            raise ReproError("skew factors must be non-zero")
        if any(factor in (0, 1, -1) for factor in self.scale_factors):
            raise ReproError("scale factors must have magnitude > 1")


@dataclass(frozen=True)
class TransformRecipe:
    """How one candidate transformation matrix was constructed.

    ``rows`` are data-access-matrix row indices seeding the basis (in
    priority order); ``skew`` is ``(target, source, factor)`` and
    ``scale`` is ``(target, factor)``, both positions *within* ``rows``.
    """

    kind: str
    rows: Tuple[int, ...] = ()
    skew: Optional[Tuple[int, int, int]] = None
    scale: Optional[Tuple[int, int]] = None

    def describe(self) -> str:
        if self.kind == "identity":
            return "identity"
        if self.kind == "derived":
            return f"derived(rows {list(self.rows)})"
        if self.kind == "rows":
            return f"rows {list(self.rows)}"
        if self.kind == "skew":
            target, source, factor = self.skew  # type: ignore[misc]
            sign = "+" if factor > 0 else "-"
            return (
                f"rows {list(self.rows)} with r{target} {sign}= "
                f"{abs(factor)}*r{source}"
            )
        target, factor = self.scale  # type: ignore[misc]
        return f"rows {list(self.rows)} with r{target} *= {factor}"


@dataclass(frozen=True)
class RecipeOutcome:
    """One enumerated recipe: either a matrix or a rejection reason."""

    recipe: TransformRecipe
    matrix: Optional[Matrix] = None
    provenance: Provenance = ()
    error: str = ""


# ----------------------------------------------------------------------
# distribution assignments
# ----------------------------------------------------------------------
def array_options(
    rank: int, space: SearchSpace
) -> List[Optional[Distribution]]:
    """Distribution choices for one array, in enumeration order.

    The wrapped/blocked prefix matches ``core.autodist`` exactly so the
    classic search is a strict prefix of the tuner's.
    """
    options: List[Optional[Distribution]] = []
    for dim in range(rank):
        options.append(Wrapped(dim))
        options.append(Blocked(dim))
    for dim in range(rank):
        for block in space.block_sizes:
            options.append(BlockCyclic(dim, block))
    if space.allow_replicated:
        options.append(None)
    return options


def candidate_assignments(
    program: Program, space: SearchSpace
) -> Iterator[Dict[str, Optional[Distribution]]]:
    """Every per-array distribution assignment, in deterministic order."""
    names = [decl.name for decl in program.arrays]
    option_lists = [
        array_options(program.array(name).rank, space) for name in names
    ]
    for combo in product(*option_lists):
        yield dict(zip(names, combo))


def assignment_count(program: Program, space: SearchSpace) -> int:
    """How many distribution assignments the space contains."""
    total = 1
    for decl in program.arrays:
        total *= len(array_options(decl.rank, space))
    return total


# ----------------------------------------------------------------------
# transformation recipes
# ----------------------------------------------------------------------
def _complete(
    seed: Matrix, deps: Matrix, source_rows: Sequence[int]
) -> Tuple[Matrix, Provenance]:
    """LegalBasis + LegalInvt on a seeded basis, with row provenance."""
    legal = legal_basis(seed, deps)
    transform = legal_invertible(legal.basis, deps)
    provenance = tuple(
        (source_rows[source], negated) for source, negated in legal.row_map
    )
    return transform, provenance


def _row_selections(
    nrows: int, depth: int, space: SearchSpace
) -> Iterator[Tuple[int, ...]]:
    """Ranked-prefix row subsets, smallest first, both priority orders."""
    emitted = 0
    usable = min(nrows, space.max_rows)
    for size in range(1, min(depth, usable) + 1):
        for combo in combinations(range(usable), size):
            orders = [combo] if size == 1 else [combo, tuple(reversed(combo))]
            for order in orders:
                if emitted >= space.max_row_selections:
                    return
                emitted += 1
                yield order


def enumerate_recipes(
    access: DataAccessMatrix,
    deps: Matrix,
    depth: int,
    space: SearchSpace,
    *,
    dependences: Sequence[Dependence] = (),
    kinds: Optional[Sequence[str]] = None,
) -> Iterator[RecipeOutcome]:
    """Yield every candidate transformation for one assignment's access
    matrix, as :class:`RecipeOutcome` records (failed completions carry
    their reason instead of a matrix).

    ``kinds`` restricts (and orders) the recipe kinds for this call; the
    driver uses it to run a derived-first pass over every assignment
    before spending budget on exotic recipes.
    """
    selected = tuple(kinds) if kinds is not None else space.recipes
    selected = tuple(kind for kind in selected if kind in space.recipes)
    non_uniform = has_non_uniform(dependences)
    if non_uniform:
        selected = tuple(k for k in selected if k in ("derived", "identity"))

    matrix = access.matrix
    basis = basis_matrix(matrix) if matrix.nrows else None
    kept = basis.kept_rows if basis is not None else ()

    for kind in selected:
        if kind == "identity":
            yield RecipeOutcome(
                recipe=TransformRecipe("identity"),
                matrix=Matrix.identity(depth),
                provenance=(),
            )
            continue
        if kind == "derived":
            recipe = TransformRecipe("derived", rows=tuple(kept))
            try:
                if non_uniform:
                    derived, provenance = _derive_with_directions(
                        matrix, dependences, depth
                    )
                else:
                    derived, provenance = derive_transformation_matrix(
                        matrix, deps, depth
                    )
                yield RecipeOutcome(recipe, derived, provenance)
            except (IllegalTransformationError, LinalgError, ReproError) as error:
                yield RecipeOutcome(recipe, error=f"no legal completion: {error}")
            continue
        if basis is None or not kept:
            continue  # empty access matrix: nothing to seed rows/skews from
        if kind == "rows":
            for selection in _row_selections(matrix.nrows, depth, space):
                recipe = TransformRecipe("rows", rows=selection)
                yield _try_complete(
                    recipe, matrix.select_rows(list(selection)), deps, selection
                )
        elif kind == "skew":
            reduced = basis.basis_of(matrix)
            k = reduced.nrows
            for target in range(k):
                for source in range(k):
                    if source == target:
                        continue
                    for factor in space.skew_factors:
                        recipe = TransformRecipe(
                            "skew", rows=tuple(kept),
                            skew=(target, source, factor),
                        )
                        rows = [list(reduced.row_at(i)) for i in range(k)]
                        rows[target] = [
                            value + factor * rows[source][j]
                            for j, value in enumerate(rows[target])
                        ]
                        yield _try_complete(recipe, Matrix(rows), deps, kept)
        elif kind == "scale":
            reduced = basis.basis_of(matrix)
            k = reduced.nrows
            for target in range(k):
                for factor in space.scale_factors:
                    recipe = TransformRecipe(
                        "scale", rows=tuple(kept), scale=(target, factor)
                    )
                    rows = [list(reduced.row_at(i)) for i in range(k)]
                    rows[target] = [factor * value for value in rows[target]]
                    yield _try_complete(recipe, Matrix(rows), deps, kept)


def _try_complete(
    recipe: TransformRecipe,
    seed: Matrix,
    deps: Matrix,
    source_rows: Sequence[int],
) -> RecipeOutcome:
    try:
        matrix, provenance = _complete(seed, deps, source_rows)
    except (IllegalTransformationError, LinalgError, ReproError) as error:
        return RecipeOutcome(recipe, error=f"no legal completion: {error}")
    return RecipeOutcome(recipe, matrix, provenance)


__all__ = [
    "Provenance",
    "RECIPE_KINDS",
    "RecipeOutcome",
    "SearchSpace",
    "TransformRecipe",
    "array_options",
    "assignment_count",
    "candidate_assignments",
    "enumerate_recipes",
]
