"""Rendering and argument wiring for ``repro tune``.

The render functions live here (not in the CLI driver) because the
service's ``/v1/tune`` endpoint uses them too: both paths call
:func:`repro.service.jobs.run_tune`, which renders through this module,
so served output is byte-identical to the direct CLI by construction.
"""

from __future__ import annotations

import argparse
import json
import sys
from fractions import Fraction
from typing import Dict, List, Optional, Union

from repro.bench.harness import format_table
from repro.runtime.metrics import Metrics
from repro.tune.search import TuneCandidate, TuneResult

#: How many pruned candidates the reports show verbatim.
_SHOWN_PRUNED = 5


# ----------------------------------------------------------------------
# serialization helpers
# ----------------------------------------------------------------------
def _num(value: Fraction) -> Union[int, str]:
    return int(value) if value.denominator == 1 else str(value)


def _matrix_rows(candidate: TuneCandidate) -> Optional[List[List[Union[int, str]]]]:
    matrix = candidate.matrix
    if matrix is None:
        return None
    return [
        [_num(matrix[i, j]) for j in range(matrix.ncols)]
        for i in range(matrix.nrows)
    ]


def _distributions_json(candidate: TuneCandidate) -> Dict[str, str]:
    return {
        name: (d.describe() if d else "replicated")
        for name, d in candidate.distributions.items()
    }


def _candidate_json(
    candidate: TuneCandidate,
    result: TuneResult,
    baseline_total: Optional[float],
) -> Dict[str, object]:
    doc: Dict[str, object] = {
        "index": candidate.index,
        "status": candidate.status,
        "distributions": _distributions_json(candidate),
        "recipe": candidate.recipe.describe(),
        "matrix": _matrix_rows(candidate),
        "normal_rows": list(candidate.access_rows),
        "labels": list(candidate.labels),
    }
    if candidate.status == "scored":
        doc["times_us"] = {
            str(p): t for p, t in zip(result.processors, candidate.times_us)
        }
        doc["total_us"] = candidate.total_us
        if baseline_total:
            doc["vs_baseline"] = round(candidate.total_us / baseline_total, 4)
    else:
        doc["reason"] = candidate.reason
    return doc


def render_json(result: TuneResult, top_k: int) -> str:
    baseline_total = (
        result.baseline.total_us
        if result.baseline is not None and result.baseline.status == "scored"
        else None
    )
    document = {
        "tool": "repro-tune",
        "program": result.program_name,
        "machine": result.machine_name,
        "processors": list(result.processors),
        "params": result.params,
        "budget": result.budget,
        "assignments": result.assignments,
        "enumerated": result.enumerated,
        "admitted": result.admitted,
        "scored": result.scored,
        "pruned": len(result.pruned),
        "baseline": (
            _candidate_json(result.baseline, result, baseline_total)
            if result.baseline is not None
            else None
        ),
        "ranking": [
            _candidate_json(candidate, result, baseline_total)
            for candidate in result.ranking[:top_k]
        ],
        "rejected": [
            _candidate_json(candidate, result, baseline_total)
            for candidate in result.pruned[:_SHOWN_PRUNED]
        ],
        "pruned_reasons": _reason_counts(result),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _reason_counts(result: TuneResult) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for candidate in result.pruned:
        counts[candidate.reason] = counts.get(candidate.reason, 0) + 1
    return dict(sorted(counts.items()))


def render_text(result: TuneResult, top_k: int) -> str:
    procs = ",".join(str(p) for p in result.processors)
    lines = [f"machine: {result.machine_name}; P={procs}"]
    header = f"program: {result.program_name}"
    if result.params:
        header += "  (" + ", ".join(
            f"{k}={v}" for k, v in sorted(result.params.items())
        ) + ")"
    lines.append(header)
    budget = "unbounded" if result.budget is None else str(result.budget)
    lines.append(
        f"space: {result.assignments} distribution assignments x "
        f"transformation recipes (budget {budget})"
    )
    lines.append(
        f"explored: {result.enumerated} candidates -> {result.scored} "
        f"scored, {len(result.pruned)} pruned"
    )

    baseline = result.baseline
    baseline_total = None
    if baseline is not None and baseline.status == "scored":
        baseline_total = baseline.total_us
        per_p = "; ".join(
            f"P={p}: {t:,.0f}"
            for p, t in zip(result.processors, baseline.times_us)
        )
        lines.append("")
        lines.append(
            f"baseline (declared distributions, derived T): "
            f"{baseline_total:,.0f} us total ({per_p})"
        )
        lines.append(f"  {baseline.describe_distributions()}")
        lines.append(f"  T = {baseline.describe_matrix()}")
    elif baseline is not None:
        lines.append("")
        lines.append(f"baseline could not be scored: {baseline.reason}")

    headers = (
        ["rank", "total (us)"]
        + [f"us @ P={p}" for p in result.processors]
        + ["distribution", "T"]
    )
    rows = []
    for rank, candidate in enumerate(result.ranking[:top_k], start=1):
        rows.append(
            [str(rank), f"{candidate.total_us:,.0f}"]
            + [f"{t:,.0f}" for t in candidate.times_us]
            + [candidate.describe_distributions(), candidate.describe_matrix()]
        )
    lines.append("")
    lines.append(format_table(headers, rows))

    lines.append("")
    lines.append("provenance:")
    for rank, candidate in enumerate(result.ranking[:top_k], start=1):
        labels = ", ".join(candidate.labels) or "identity"
        lines.append(f"  #{rank}: {candidate.provenance_text()}  [{labels}]")

    if result.pruned:
        lines.append("")
        lines.append("why losers lost (pruned candidates by reason):")
        counts = _reason_counts(result)
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for reason, count in ordered[:_SHOWN_PRUNED]:
            lines.append(f"  {count:>4}  {reason}")
        hidden = len(counts) - min(len(counts), _SHOWN_PRUNED)
        if hidden > 0:
            lines.append(f"  ... and {hidden} more reason(s)")

    best = result.best
    summary = f"\nbest: {best.describe_distributions()}  via {best.recipe.describe()}"
    if baseline_total:
        ratio = best.total_us / baseline_total
        summary += f"  ({ratio:.3f}x of baseline)"
    lines.append(summary)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# argument wiring
# ----------------------------------------------------------------------
def _parse_block_sizes(text: str) -> List[int]:
    """``--block-sizes`` type: comma-separated positive ints; '' disables."""
    if not text.strip() or text.strip().lower() == "none":
        return []
    try:
        sizes = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid block-size list {text!r}: expected comma-separated "
            "integers like '4,16' (or 'none')"
        )
    if any(size <= 0 for size in sizes):
        raise argparse.ArgumentTypeError(
            f"block sizes must be positive, got {text!r}"
        )
    return sorted(set(sizes))


def add_tune_options(parser: argparse.ArgumentParser) -> None:
    """The ``tune`` arguments, shared with ``repro submit tune``."""
    from repro.cli import _parse_procs

    parser.add_argument(
        "-P", "--processors", default=[4, 16], type=_parse_procs,
        help="comma-separated processor counts candidates are scored at "
        "(default: 4,16, the paper's reported points)",
    )
    parser.add_argument(
        "--budget", type=int, default=400,
        help="max candidates admitted to scoring (0 = unbounded; "
        "default %(default)s)",
    )
    parser.add_argument(
        "--top-k", type=int, default=5,
        help="how many ranked candidates to report (default %(default)s)",
    )
    parser.add_argument(
        "--block-sizes", type=_parse_block_sizes, default=[8],
        metavar="B1,B2,...",
        help="block-cyclic block sizes offered per distributed dimension "
        "(default: 8; 'none' searches wrapped/blocked only)",
    )
    parser.add_argument(
        "--allow-replicated", action="store_true",
        help="also offer full replication per array",
    )
    parser.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="bind a symbolic program parameter for scoring, e.g. 'N=64' "
        "(repeatable; score small, validate winners at full scale)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full ranking and pruning provenance as one JSON "
        "document",
    )


def cmd_tune(args: argparse.Namespace) -> int:
    from repro.service.jobs import run_tune, tune_payload

    metrics = Metrics()
    print(run_tune(tune_payload(args), jobs=args.jobs, metrics=metrics))
    if args.profile:
        print(metrics.report(), file=sys.stderr)
    return 0


__all__ = [
    "add_tune_options",
    "cmd_tune",
    "render_json",
    "render_text",
]
