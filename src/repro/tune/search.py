"""The transformation autotuner's driver: prune, materialize, score, rank.

The pipeline per candidate ``(distribution assignment, recipe)``:

1. **Enumerate** (:mod:`repro.tune.space`) — build the candidate matrix
   from the assignment's data access matrix, deduplicated per assignment.
2. **Prune** — reject any matrix failing Section 6's legality criterion
   (:func:`~repro.core.legal.is_legal_transformation`, or its
   direction-vector variant for non-uniform nests) before spending
   anything on it.
3. **Materialize** — apply the transformation (Fourier-Motzkin bounds,
   Hermite lattice), generate the SPMD node program, and re-prove
   legality with the analysis legality pass (LEG001-LEG004) over the
   produced artifacts; this fans out over
   :func:`~repro.runtime.executor.run_tasks`.
4. **Score** — simulate every survivor at every requested processor
   count through one :func:`~repro.runtime.executor.run_grid` call, so
   the tiered accounting engine and the shared
   :class:`~repro.runtime.cache.SimulationCache` make thousands of
   candidates cheap.

Ranking is by ``(sum of per-P times, per-P time tuple, enumeration
index)`` — fully deterministic and independent of ``jobs`` (both fan-out
primitives return results in input order).

``budget`` caps *admitted* (pruner-passed) candidates, counted in
enumeration order.  Enumeration runs in two passes — the ``derived``
recipe over every assignment first, then the remaining recipes — so a
small budget still covers the whole distribution menu with each
assignment's natural transformation (the ``core.autodist`` search is
exactly that first pass) before exploring exotic bases on early
assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.manager import analyze_artifacts, resolve_passes
from repro.codegen.spmd import NodeProgram, generate_spmd
from repro.core.access_matrix import DataAccessMatrix, build_access_matrix
from repro.core.classify import classify
from repro.core.directions import (
    distance_to_direction,
    is_legal_direction_transformation,
)
from repro.core.legal import is_legal_transformation
from repro.core.normalize import NormalizationResult, access_normalize
from repro.core.transform import apply_transformation
from repro.dependence.analysis import analyze_dependences
from repro.dependence.distance import (
    Dependence,
    dependence_matrix,
    has_non_uniform,
)
from repro.distributions import Distribution
from repro.errors import ReproError
from repro.ir.program import Program
from repro.linalg.fraction_matrix import Matrix
from repro.numa.machine import MachineConfig, butterfly_gp1000
from repro.runtime.cache import SimulationCache
from repro.runtime.executor import SweepCell, run_grid, run_tasks
from repro.runtime.metrics import Metrics
from repro.tune.space import (
    Provenance,
    SearchSpace,
    TransformRecipe,
    assignment_count,
    candidate_assignments,
    enumerate_recipes,
)

#: Default processor counts candidates are scored at (the paper's figures
#: report P = 4 and P = 16 for both kernels).
DEFAULT_PROCESSORS = (4, 16)

#: Default cap on admitted candidates.
DEFAULT_BUDGET = 400


@dataclass(frozen=True)
class TuneCandidate:
    """One candidate of the search, scored or pruned, with provenance."""

    index: int
    distributions: Mapping[str, Optional[Distribution]]
    recipe: TransformRecipe
    matrix: Optional[Matrix]
    provenance: Provenance = ()
    #: Signed subscript expressions behind ``provenance`` (e.g. ``-(j-i)``
    #: for a row LegalBasis negated into a loop reversal).
    access_rows: Tuple[str, ...] = ()
    labels: Tuple[str, ...] = ()
    status: str = "scored"  # "scored" | "pruned"
    reason: str = ""
    times_us: Tuple[float, ...] = ()

    @property
    def total_us(self) -> float:
        """The ranking score: summed simulated time over the swept P."""
        return sum(self.times_us)

    def describe_distributions(self) -> str:
        parts = []
        for name in sorted(self.distributions):
            distribution = self.distributions[name]
            label = distribution.describe() if distribution else "replicated"
            parts.append(f"{name}: {label}")
        return "; ".join(parts)

    def describe_matrix(self) -> str:
        if self.matrix is None:
            return "(none)"
        return repr(self.matrix)

    def provenance_text(self) -> str:
        """Which access rows (and signs) the leading rows of T came from."""
        if not self.access_rows:
            return f"{self.recipe.describe()}; no access-matrix rows kept"
        return (
            f"{self.recipe.describe()}; normal rows: "
            + ", ".join(self.access_rows)
        )


@dataclass(frozen=True)
class TuneResult:
    """Everything the search produced, ranking best-first."""

    program_name: str
    machine_name: str
    processors: Tuple[int, ...]
    params: Optional[Dict[str, int]]
    budget: Optional[int]
    assignments: int
    enumerated: int
    admitted: int
    ranking: Tuple[TuneCandidate, ...]
    pruned: Tuple[TuneCandidate, ...]
    #: The program's own declared distributions with the paper's derived
    #: transformation — the hand-picked configuration candidates must beat.
    baseline: Optional[TuneCandidate] = None

    @property
    def best(self) -> TuneCandidate:
        return self.ranking[0]

    @property
    def scored(self) -> int:
        return len(self.ranking)


@dataclass
class _Spec:
    """One admitted candidate awaiting materialization and scoring."""

    index: int
    trial: Program
    assignment: Dict[str, Optional[Distribution]]
    recipe: TransformRecipe
    matrix: Matrix
    provenance: Provenance
    access: DataAccessMatrix
    access_rows: Tuple[str, ...] = ()
    node: Optional[NodeProgram] = None


def _trial_program(
    program: Program,
    assignment: Mapping[str, Optional[Distribution]],
    params: Optional[Mapping[str, int]],
) -> Program:
    distributions = {
        name: distribution
        for name, distribution in assignment.items()
        if distribution is not None
    }
    return Program(
        nest=program.nest,
        arrays=program.arrays,
        distributions=distributions,
        params=program.bound_params(params),
        name=program.name,
        assumptions=tuple(getattr(program, "assumptions", ()) or ()),
    )


def _signed_rows(access: DataAccessMatrix, provenance: Provenance) -> Tuple[str, ...]:
    rows = []
    for row_index, negated in provenance:
        if row_index >= len(access.rows):
            continue  # defensive: provenance beyond the built rows
        expr = str(access.rows[row_index].expr)
        rows.append(f"-({expr})" if negated else expr)
    return tuple(rows)


def _materialize_task(item) -> Tuple[str, object, str]:
    """Top-level worker: transform, generate SPMD, re-prove legality.

    Returns ``("ok", node, legality_error_codes)`` or
    ``("error", reason, "")``; exceptions never escape so a bad candidate
    cannot take down the pool.
    """
    (trial, matrix, provenance, access, dependences, deps, directions,
     assumptions, run_legality) = item
    try:
        transformation = apply_transformation(
            trial.nest, matrix, assumptions=tuple(assumptions)
        )
        transformed = trial.with_nest(
            transformation.nest, name=f"{trial.name}-tuned"
        )
        node = generate_spmd(transformed)
    except ReproError as error:
        return ("error", f"pipeline: {error}", "")
    except Exception as error:  # noqa: BLE001 - candidate bugs are data
        return ("error", f"pipeline: {type(error).__name__}: {error}", "")
    codes = ""
    if run_legality:
        result = NormalizationResult(
            program=trial,
            transformed=transformed,
            transformation=transformation,
            access=access,
            dependences=tuple(dependences),
            dependence_columns=deps,
            normalized_rows=provenance,
            direction_dependences=directions,
        )
        try:
            report = analyze_artifacts(
                trial, result=result, node=node,
                passes=resolve_passes(["legality"]),
            )
        except Exception as error:  # noqa: BLE001
            return ("error", f"legality pass crashed: {error}", "")
        if report.has_errors:
            codes = ",".join(report.error_codes)
    return ("ok", node, codes)


def _dependence_context(
    program: Program, params: Optional[Mapping[str, int]]
) -> Tuple[Tuple[Dependence, ...], Matrix, Tuple[Tuple[str, ...], ...]]:
    """Dependences, distance matrix and direction vectors — distribution
    independent, so computed once per program."""
    depth = program.nest.depth
    dependences = tuple(
        analyze_dependences(program.nest, program.bound_params(params) or None)
    )
    if has_non_uniform(dependences):
        directions = tuple(
            distance_to_direction(d.distance)
            if d.distance is not None
            else tuple(d.direction)
            for d in dependences
        )
        return dependences, Matrix.zeros(depth, 0), directions
    deps = dependence_matrix(
        [d for d in dependences if d.distance is not None], depth
    )
    return dependences, deps, ()


def _quick_legal(
    matrix: Matrix,
    deps: Matrix,
    directions: Tuple[Tuple[str, ...], ...],
) -> bool:
    if directions:
        return is_legal_direction_transformation(matrix, directions)
    return is_legal_transformation(matrix, deps)


def tune_program(
    program: Program,
    *,
    processors: Sequence[int] = DEFAULT_PROCESSORS,
    machine: Optional[MachineConfig] = None,
    params: Optional[Mapping[str, int]] = None,
    priority: Optional[Sequence[str]] = None,
    assumptions: Optional[Sequence[str]] = None,
    budget: Optional[int] = DEFAULT_BUDGET,
    space: Optional[SearchSpace] = None,
    jobs: int = 1,
    cache: Optional[SimulationCache] = None,
    metrics: Optional[Metrics] = None,
    include_baseline: bool = True,
) -> TuneResult:
    """Search the T × distribution × block-size space, best first.

    ``params`` binds symbolic program parameters for *scoring* (the
    relative ranking is what matters; score at a scaled-down size to keep
    the search cheap, then validate winners at full scale).  Raises
    :class:`~repro.errors.ReproError` when no candidate survives scoring.
    """
    machine = machine or butterfly_gp1000()
    metrics = metrics if metrics is not None else Metrics()
    space = space if space is not None else SearchSpace()
    procs = tuple(processors)
    if not procs or any(p <= 0 for p in procs):
        raise ReproError("tune needs a non-empty list of positive processor counts")
    if budget is not None and budget <= 0:
        raise ReproError(f"budget must be positive, got {budget}")
    if assumptions is None:
        assumptions = tuple(getattr(program, "assumptions", ()) or ())

    dependences, deps, directions = _dependence_context(program, params)
    depth = program.nest.depth

    # -- enumerate + prune (serial, deterministic) ---------------------
    pruned: List[TuneCandidate] = []
    admitted: List[_Spec] = []
    enumerated = 0
    with metrics.stage("tune.enumerate"):
        contexts = []
        for assignment in candidate_assignments(program, space):
            trial = _trial_program(program, assignment, params)
            access = build_access_matrix(
                trial.nest, trial.distributions, priority=priority
            )
            contexts.append((assignment, trial, access, set()))

        passes = [
            kinds for kinds in (
                ("derived",),
                tuple(k for k in space.recipes if k != "derived"),
            ) if any(k in space.recipes for k in kinds)
        ]
        stop = False
        for kinds in passes:
            if stop:
                break
            for assignment, trial, access, seen in contexts:
                if stop:
                    break
                for outcome in enumerate_recipes(
                    access, deps, depth, space,
                    dependences=dependences, kinds=kinds,
                ):
                    if outcome.matrix is not None:
                        key = repr(outcome.matrix)
                        if key in seen:
                            metrics.count("tune.duplicates")
                            continue
                        seen.add(key)
                    enumerated += 1
                    metrics.count("tune.candidates")
                    index = enumerated - 1
                    if outcome.matrix is None:
                        pruned.append(TuneCandidate(
                            index=index, distributions=dict(assignment),
                            recipe=outcome.recipe, matrix=None,
                            status="pruned", reason=outcome.error,
                        ))
                        metrics.count("tune.pruned")
                        continue
                    if not _quick_legal(outcome.matrix, deps, directions):
                        pruned.append(TuneCandidate(
                            index=index, distributions=dict(assignment),
                            recipe=outcome.recipe, matrix=outcome.matrix,
                            provenance=outcome.provenance,
                            access_rows=_signed_rows(access, outcome.provenance),
                            status="pruned",
                            reason="illegal: a column of T @ D is not "
                            "lexicographically positive",
                        ))
                        metrics.count("tune.pruned")
                        continue
                    admitted.append(_Spec(
                        index=index, trial=trial,
                        assignment=dict(assignment), recipe=outcome.recipe,
                        matrix=outcome.matrix, provenance=outcome.provenance,
                        access=access,
                        access_rows=_signed_rows(access, outcome.provenance),
                    ))
                    metrics.count("tune.admitted")
                    if budget is not None and len(admitted) >= budget:
                        stop = True
                        break

    # -- materialize (parallel, order-preserving) ----------------------
    items = [
        (spec.trial, spec.matrix, spec.provenance, spec.access, dependences,
         deps, directions, assumptions, True)
        for spec in admitted
    ]
    with metrics.stage("tune.materialize"):
        outcomes = run_tasks(_materialize_task, items, jobs=jobs, metrics=metrics)
    survivors: List[_Spec] = []
    for spec, outcome in zip(admitted, outcomes):
        status, payload, codes = outcome
        candidate_fields = dict(
            index=spec.index, distributions=spec.assignment,
            recipe=spec.recipe, matrix=spec.matrix,
            provenance=spec.provenance, access_rows=spec.access_rows,
        )
        if status == "error":
            pruned.append(TuneCandidate(
                status="pruned", reason=str(payload), **candidate_fields
            ))
            metrics.count("tune.pruned")
            continue
        if codes:
            pruned.append(TuneCandidate(
                status="pruned", reason=f"legality pass: {codes}",
                **candidate_fields,
            ))
            metrics.count("tune.pruned")
            continue
        spec.node = payload  # type: ignore[assignment]
        survivors.append(spec)
    metrics.count("tune.materialized", len(survivors))

    # -- baseline: declared distributions + the paper's derived T ------
    baseline_spec: Optional[_Spec] = None
    if include_baseline:
        try:
            declared = {
                decl.name: program.distributions.get(decl.name)
                for decl in program.arrays
            }
            trial = _trial_program(program, declared, params)
            result = access_normalize(
                trial, priority=priority, assumptions=assumptions or None
            )
            baseline_spec = _Spec(
                index=-1, trial=trial, assignment=declared,
                recipe=TransformRecipe(
                    "derived",
                    rows=tuple(row for row, _ in result.normalized_rows),
                ),
                matrix=result.matrix, provenance=result.normalized_rows,
                access=result.access,
                access_rows=_signed_rows(result.access, result.normalized_rows),
                node=generate_spmd(result.transformed),
            )
        except ReproError:
            baseline_spec = None

    # -- score (one grid, shared cache, jobs fan-out) ------------------
    to_score = survivors + ([baseline_spec] if baseline_spec else [])
    cells = [
        SweepCell(f"tune-{spec.index}", spec.node, p, None, machine)
        for spec in to_score
        for p in procs
    ]
    with metrics.stage("tune.score"):
        grid = run_grid(
            cells, jobs=jobs, cache=cache, metrics=metrics, on_error="keep"
        )

    scored: List[TuneCandidate] = []
    baseline: Optional[TuneCandidate] = None
    for slot, spec in enumerate(to_score):
        window = grid[slot * len(procs):(slot + 1) * len(procs)]
        failure = next((o for o in window if isinstance(o, ReproError)), None)
        candidate_fields = dict(
            index=spec.index, distributions=spec.assignment,
            recipe=spec.recipe, matrix=spec.matrix,
            provenance=spec.provenance, access_rows=spec.access_rows,
            labels=tuple(classify(spec.matrix)),
        )
        if failure is not None:
            candidate = TuneCandidate(
                status="pruned", reason=f"simulation: {failure}",
                **candidate_fields,
            )
            if spec is baseline_spec:
                baseline = candidate
            else:
                pruned.append(candidate)
                metrics.count("tune.pruned")
            continue
        candidate = TuneCandidate(
            status="scored",
            times_us=tuple(o.total_time_us for o in window),
            **candidate_fields,
        )
        if spec is baseline_spec:
            baseline = candidate
        else:
            scored.append(candidate)
            metrics.count("tune.scored")

    if not scored:
        raise ReproError("no tuning candidate could be scored")
    scored.sort(key=lambda c: (c.total_us, c.times_us, c.index))
    pruned.sort(key=lambda c: c.index)
    return TuneResult(
        program_name=program.name,
        machine_name=machine.name,
        processors=procs,
        params=dict(params) if params else None,
        budget=budget,
        assignments=assignment_count(program, space),
        enumerated=enumerated,
        admitted=len(admitted),
        ranking=tuple(scored),
        pruned=tuple(pruned),
        baseline=baseline,
    )


# ----------------------------------------------------------------------
# fuzz-oracle hook
# ----------------------------------------------------------------------
def verify_search_legality(
    program: Program,
    *,
    budget: int = 12,
    space: Optional[SearchSpace] = None,
) -> Tuple[int, str]:
    """Independently re-check every transformation the tuner would emit.

    Runs the enumerator and the quick pruner, then for each emitted
    candidate re-proves legality twice — Section 6's matrix criterion
    (or the direction-vector variant) on the exact emitted matrix, and
    the analysis legality pass (LEG001-LEG004) over the materialized
    artifacts.  Returns ``(candidates_checked, "")`` on success or
    ``(n, detail)`` describing the first violation: a candidate that the
    pruner admitted but the independent checks reject is a tuner bug.

    This is the differential fuzzer's tuner oracle; ``budget`` keeps it
    cheap per fuzz case.
    """
    space = space if space is not None else SearchSpace(block_sizes=())
    dependences, deps, directions = _dependence_context(program, None)
    depth = program.nest.depth
    assumptions = tuple(getattr(program, "assumptions", ()) or ())
    checked = 0
    for assignment in candidate_assignments(program, space):
        trial = _trial_program(program, assignment, None)
        access = build_access_matrix(trial.nest, trial.distributions)
        seen: set = set()
        for outcome in enumerate_recipes(
            access, deps, depth, space, dependences=dependences
        ):
            if outcome.matrix is None:
                continue  # rejected before emission: nothing to verify
            key = repr(outcome.matrix)
            if key in seen:
                continue
            seen.add(key)
            if not _quick_legal(outcome.matrix, deps, directions):
                continue  # the pruner rejected it: nothing was emitted
            checked += 1
            where = (
                f"{outcome.recipe.describe()} under "
                + "; ".join(
                    f"{name}: {d.describe() if d else 'replicated'}"
                    for name, d in sorted(assignment.items())
                )
            )
            status, payload, codes = _materialize_task((
                trial, outcome.matrix, outcome.provenance, access,
                dependences, deps, directions, assumptions, True,
            ))
            if status == "error":
                continue  # pipeline failure: the candidate is not emitted
            if codes:
                return checked, (
                    f"emitted T flagged by the legality pass ({codes}): {where}"
                )
            if checked >= budget:
                return checked, ""
    return checked, ""


__all__ = [
    "DEFAULT_BUDGET",
    "DEFAULT_PROCESSORS",
    "TuneCandidate",
    "TuneResult",
    "tune_program",
    "verify_search_legality",
]
