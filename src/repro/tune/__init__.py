"""The transformation autotuner: search T × distribution × block size.

The paper picks its transformation and data distribution by hand per
kernel; this package closes that loop.  :mod:`repro.tune.space`
enumerates candidate transformation matrices from the paper's own
machinery (BasisMatrix row subsets, skews, scalings, LegalBasis repair,
LegalInvt completion) crossed with a per-array distribution menu;
:mod:`repro.tune.search` prunes illegal candidates, materializes the
survivors, and ranks them with the tiered accounting engine;
:mod:`repro.tune.cli` renders results for ``repro tune`` and the
``/v1/tune`` service endpoint.
"""

from repro.tune.search import (
    DEFAULT_BUDGET,
    DEFAULT_PROCESSORS,
    TuneCandidate,
    TuneResult,
    tune_program,
    verify_search_legality,
)
from repro.tune.space import (
    RECIPE_KINDS,
    SearchSpace,
    TransformRecipe,
    assignment_count,
    candidate_assignments,
    enumerate_recipes,
)

__all__ = [
    "DEFAULT_BUDGET",
    "DEFAULT_PROCESSORS",
    "RECIPE_KINDS",
    "SearchSpace",
    "TransformRecipe",
    "TuneCandidate",
    "TuneResult",
    "assignment_count",
    "candidate_assignments",
    "enumerate_recipes",
    "tune_program",
    "verify_search_legality",
]
