"""The parallel sweep engine.

A sweep is a grid of simulation cells (:class:`SweepCell`).  The executor

* deduplicates identical cells within one grid (the P=1 baseline of a
  speedup sweep appears once per curve but is simulated once),
* consults a :class:`~repro.runtime.cache.SimulationCache` so cells seen in
  earlier sweeps are not re-simulated,
* fans the remaining cells out over a ``multiprocessing`` pool when
  ``jobs > 1`` — with a deterministic serial fallback when the pool is
  unavailable — and
* merges results back **in grid order**, so parallel output is
  byte-identical to a serial run.

Workers execute :func:`repro.numa.simulator.simulate_task`, a top-level
function over picklable dataclasses, which is what makes the fan-out
possible at all.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.codegen.spmd import NodeProgram
from repro.errors import ReproError, SimulationError
from repro.numa.machine import MachineConfig, butterfly_gp1000
from repro.numa.simulator import SimulationResult, simulate_task
from repro.runtime.cache import SimulationCache, cell_key, shared_cache
from repro.runtime.metrics import Metrics


@dataclass(frozen=True)
class SweepCell:
    """One point of a sweep grid: simulate ``node`` at ``processors``."""

    name: str
    node: NodeProgram
    processors: int
    params: Optional[Mapping[str, int]] = None
    machine: Optional[MachineConfig] = None
    mode: str = "account"
    block_cache: bool = False
    #: Accounting engine (``auto``/``closed-form``/``compiled``/``walk``);
    #: every engine is bit-identical, so this only affects speed — and is
    #: what the perf benchmarks force to compare tiers.
    engine: str = "auto"


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if not jobs:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ReproError(f"jobs must be positive, got {jobs}")
    return jobs


def run_grid(
    cells: Sequence[SweepCell],
    *,
    jobs: int = 1,
    cache: Optional[SimulationCache] = None,
    metrics: Optional[Metrics] = None,
    on_error: str = "raise",
) -> List[SimulationResult]:
    """Simulate every cell and return results in grid order.

    ``cache=None`` uses the process-wide shared cache; pass an explicit
    :class:`SimulationCache` to isolate a sweep (tests do).  With
    ``on_error="keep"``, a cell whose simulation raises a
    :class:`~repro.errors.ReproError` yields the exception object in its
    slot instead of aborting the whole grid (the autodist search skips such
    candidates); the default re-raises.
    """
    if on_error not in ("raise", "keep"):
        raise ReproError(f"unknown on_error policy {on_error!r}")
    jobs = resolve_jobs(jobs)
    cache = cache if cache is not None else shared_cache()
    metrics = metrics if metrics is not None else Metrics()

    keys: List[str] = []
    results: List[Optional[object]] = [None] * len(cells)
    pending: Dict[str, List[int]] = {}
    tasks = []
    metrics.count("grid_cells", len(cells))
    for index, cell in enumerate(cells):
        machine = cell.machine or butterfly_gp1000()
        key = cell_key(
            cell.node, cell.processors, cell.params, machine,
            cell.mode, cell.block_cache, cell.engine,
        )
        keys.append(key)
        hit = cache.get(key)
        if hit is not None:
            results[index] = hit
            metrics.count("cache_hits")
            continue
        if key in pending:
            pending[key].append(index)
            metrics.count("dedup_hits")
            continue
        pending[key] = [index]
        metrics.count("cache_misses")
        tasks.append(
            (key, (cell.node, cell.processors, cell.params, machine,
                   cell.mode, cell.block_cache, cell.engine))
        )

    if tasks:
        metrics.count("simulate_calls", len(tasks))
        with metrics.stage("simulate"):
            outcomes = _execute(
                [task for _, task in tasks], jobs=jobs, metrics=metrics
            )
        for (key, _), outcome in zip(tasks, outcomes):
            if isinstance(outcome, SimulationResult):
                cache.put(key, outcome)
                # Tier selection telemetry: sim.tier.closed_form /
                # sim.tier.compiled / sim.tier.walk ("walk" default also
                # covers results unpickled from pre-engine disk stores).
                tier = getattr(outcome, "engine", "walk").replace("-", "_")
                metrics.count(f"sim.tier.{tier}")
            for index in pending[key]:
                results[index] = outcome

    for index, outcome in enumerate(results):
        if isinstance(outcome, ReproError):
            if on_error == "raise":
                raise outcome
        elif outcome is None:  # pragma: no cover - defensive
            raise SimulationError(
                f"sweep cell {cells[index].name!r} produced no result"
            )
    return results  # type: ignore[return-value]


def run_tasks(
    function,
    items: Sequence,
    *,
    jobs: int = 1,
    metrics: Optional[Metrics] = None,
):
    """Order-preserving parallel map with the executor's pool discipline.

    ``function`` must be a top-level importable callable over picklable
    items (``multiprocessing`` workers import their target).  Results come
    back in input order, so parallel output is identical to a serial run;
    when the pool cannot be created the map silently degrades to serial.
    This is the generic engine under :func:`run_grid`, and is also what the
    differential fuzzer fans its cases out with.
    """
    jobs = resolve_jobs(jobs)
    if jobs > 1 and len(items) > 1:
        processes = min(jobs, len(items))
        try:
            context = _pool_context()
            with context.Pool(
                processes=processes, initializer=_pool_worker_init
            ) as pool:
                outcomes = pool.map(function, items, chunksize=1)
            if metrics is not None:
                metrics.count("parallel_batches")
            return outcomes
        except (OSError, ValueError, pickle.PicklingError, ImportError):
            if metrics is not None:
                metrics.count("pool_fallbacks")
    return [function(item) for item in items]


def _execute(tasks, *, jobs: int, metrics: Metrics):
    """Run simulation tasks, parallel when possible, serial otherwise."""
    return run_tasks(_guarded_simulate_task, tasks, jobs=jobs, metrics=metrics)


def _pool_worker_init():
    """Detach a forked worker from the parent's signal plumbing.

    A fork inherits ``signal.set_wakeup_fd``'s file descriptor — under an
    asyncio parent (the compilation service) that fd is one end of the
    socketpair the event loop watches, so a signal delivered to a *worker*
    (e.g. the pool's own SIGTERM on teardown) would be reported to the
    parent's loop as if the daemon itself had been told to shut down.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _pool_context():
    """Prefer fork (cheap, inherits the warm interpreter); fall back."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def _guarded_simulate_task(task):
    """Worker wrapper: simulation errors travel back as values.

    Raising inside ``Pool.map`` aborts the whole batch; returning the
    (picklable) exception lets :func:`run_grid` apply its error policy
    per cell — and keeps parallel behavior identical to serial.
    """
    try:
        return simulate_task(task)
    except ReproError as error:
        return error
