"""Lightweight pipeline instrumentation: stage timers and counters.

The sweep engine and the CLI record where wall-clock time goes (parse /
normalize / codegen / simulate) and how effective the simulation cache is
(hits / misses / deduplicated cells).  A :class:`Metrics` object is cheap
enough to thread through every sweep; ``--profile`` on the CLI and on
``python -m repro.bench.report`` prints the accumulated report.

The sweep engine also records which accounting tier served each freshly
simulated cell as ``sim.tier.closed_form`` / ``sim.tier.compiled`` /
``sim.tier.walk`` counters (see ``docs/performance.md``); like every
counter they flow through :meth:`Metrics.to_dict`/:meth:`Metrics.merge`
into ``repro simulate --profile`` output and the service's ``/metricsz``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional, Union

#: Canonical stage names, in pipeline order (used to order the report).
PIPELINE_STAGES = ("parse", "normalize", "codegen", "simulate")


class Metrics:
    """Accumulated counters and per-stage wall-clock timers."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, stage: str, seconds: float) -> None:
        """Add ``seconds`` of wall-clock time to ``stage``."""
        self.timers[stage] = self.timers.get(stage, 0.0) + seconds

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one pipeline stage."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def merge(self, other: Union["Metrics", Mapping[str, object]]) -> None:
        """Fold another metrics object (or a snapshot dict) into this one.

        Accepts either a live :class:`Metrics` or the plain-dict snapshot
        shape produced by :meth:`to_dict`.  The dict form is what worker
        processes ship back to the compilation service's event loop: a
        snapshot is picklable and detached, so merging it on the single
        event-loop thread never races a worker still mutating the source.
        """
        if isinstance(other, Metrics):
            counters: Mapping[str, object] = other.counters
            timers: Mapping[str, object] = other.timers
        else:
            counters = other.get("counters", {})  # type: ignore[assignment]
            timers = other.get("timers", {})  # type: ignore[assignment]
        for name, value in counters.items():
            self.count(name, int(value))  # type: ignore[call-overload]
        for name, value in timers.items():
            self.add_time(name, float(value))  # type: ignore[arg-type]

    def reset(self) -> None:
        """Clear all counters and timers."""
        self.counters.clear()
        self.timers.clear()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """Stable JSON-ready snapshot: ``{"counters": ..., "timers": ...}``.

        Keys are sorted so serialized snapshots are deterministic; this is
        the shape ``/metricsz`` serves and the shape :meth:`merge` accepts
        back from worker processes.
        """
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "timers": {k: self.timers[k] for k in sorted(self.timers)},
        }

    def report(self) -> str:
        """Human-readable profile: stage timings first, then counters."""
        lines = ["pipeline profile"]
        ordered = [s for s in PIPELINE_STAGES if s in self.timers]
        ordered += sorted(set(self.timers) - set(PIPELINE_STAGES))
        if ordered:
            width = max(len(s) for s in ordered)
            total = sum(self.timers.values())
            for stage in ordered:
                seconds = self.timers[stage]
                share = 100.0 * seconds / total if total else 0.0
                lines.append(
                    f"  {stage.ljust(width)}  {seconds * 1e3:10.1f} ms  {share:5.1f}%"
                )
        if self.counters:
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name.ljust(width)}  {self.counters[name]:10d}")
        if len(lines) == 1:
            lines.append("  (no events recorded)")
        return "\n".join(lines)


_GLOBAL: Optional[Metrics] = None


def global_metrics() -> Metrics:
    """The process-wide default metrics sink."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = Metrics()
    return _GLOBAL


def reset_global_metrics() -> None:
    """Reset the process-wide default metrics sink."""
    global_metrics().reset()
