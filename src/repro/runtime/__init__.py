"""Sweep runtime: parallel execution, simulation caching, profiling."""

from repro.runtime.cache import (
    SimulationCache,
    cell_key,
    node_fingerprint,
    reset_shared_cache,
    set_shared_cache,
    shared_cache,
)
from repro.runtime.executor import SweepCell, resolve_jobs, run_grid, run_tasks
from repro.runtime.metrics import (
    Metrics,
    global_metrics,
    reset_global_metrics,
)

__all__ = [
    "Metrics",
    "SimulationCache",
    "SweepCell",
    "cell_key",
    "global_metrics",
    "node_fingerprint",
    "reset_global_metrics",
    "reset_shared_cache",
    "resolve_jobs",
    "run_grid",
    "run_tasks",
    "set_shared_cache",
    "shared_cache",
]
