"""Simulation memoization: stable cell fingerprints + an LRU result cache.

Every speedup figure, ablation and ``autodist`` search reduces to a grid of
``(node program, P, params, machine, mode)`` simulation cells, and the same
cell recurs across sections (every curve shares the P=1 baseline; ablations
re-simulate the figure variants under new machines).  The cache keys each
cell by a content fingerprint — the rendered node program plus every input
that can change the simulated outcome — so a warm regeneration of
RESULTS.md performs zero new ``simulate`` calls.

The fingerprint is built from *rendered* canonical text (loop nest
pseudo-code, distribution descriptions, sorted parameter bindings, machine
constants), never from ``id()`` or hash ordering, so it is stable across
processes and usable for the optional on-disk store.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import astuple
from typing import Mapping, Optional

from repro.codegen.spmd import NodeProgram
from repro.errors import ConfigurationError
from repro.ir.printer import render_nest
from repro.numa.machine import MachineConfig
from repro.numa.simulator import SimulationResult
from repro.runtime.metrics import global_metrics


def node_fingerprint(node: NodeProgram) -> str:
    """A stable content fingerprint of a node program.

    Covers everything the simulator reads: the nest (including block-read
    prologues), array declarations and element sizes, distributions,
    default parameters, the schedule, sync events, and the locality plan's
    per-reference classifications.
    """
    program = node.program
    plan_part = ";".join(
        f"{info.ref}|{'w' if info.is_write else 'r'}|{info.ref_class.value}"
        for info in node.plan.refs
    )
    parts = [
        program.name,
        node.schedule,
        f"sync={node.sync_per_outer_iteration}",
        f"guards={node.guards_per_iteration}",
        render_nest(program.nest),
        ";".join(
            f"{decl.name}({','.join(str(e) for e in decl.extents)}):{decl.element_bytes}"
            for decl in program.arrays
        ),
        ";".join(
            f"{name}={program.distributions[name].describe()}"
            for name in sorted(program.distributions)
        ),
        ";".join(f"{k}={v}" for k, v in sorted(program.params.items())),
        plan_part,
    ]
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()


def cell_key(
    node: NodeProgram,
    processors: int,
    params: Optional[Mapping[str, int]],
    machine: MachineConfig,
    mode: str = "account",
    block_cache: bool = False,
    engine: str = "auto",
) -> str:
    """The cache key of one simulation cell.

    All accounting engines are bit-identical, so ``engine`` only enters
    the key when it is forced away from ``auto`` (keeping every
    pre-engine fingerprint — and warm disk stores — valid): a forced-walk
    benchmark cell must not be answered from an ``auto`` result, because
    the cached ``SimulationResult.engine`` would misreport the tier.
    """
    bound = node.program.bound_params(params)
    param_part = ";".join(f"{k}={v}" for k, v in sorted(bound.items()))
    machine_part = repr(astuple(machine))
    parts = [
        node_fingerprint(node),
        f"P={processors}",
        param_part,
        machine_part,
        f"mode={mode}",
        f"block_cache={block_cache}",
    ]
    if engine != "auto":
        parts.append(f"engine={engine}")
    raw = "\n".join(parts)
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


class SimulationCache:
    """An in-memory LRU of :class:`SimulationResult` with optional disk store.

    ``max_entries`` bounds the in-memory layer (0 disables it).  When
    ``store_dir`` is given, results are also pickled to
    ``<store_dir>/<key>.pkl`` so a fresh process (a re-run of the CLI or of
    the report generator) starts warm.  ``disk_max_entries`` caps the disk
    store for long-lived processes (the compilation daemon): when a put
    pushes the store over the cap, the oldest entries by mtime are evicted.

    A corrupted or truncated disk entry (partial write, interrupted
    process, unpicklable payload) is treated as a miss: the entry is
    deleted, a ``cache.disk_corrupt`` counter is recorded on the global
    metrics sink, and the simulation simply re-runs.
    """

    #: Cap on memoized accounting kernels (see :meth:`kernel`).
    KERNEL_MAX_ENTRIES = 512

    #: Cap on memoized symbolic engines (see :meth:`form`).  Forms are
    #: per *program*, not per cell, so a handful covers a whole report.
    FORM_MAX_ENTRIES = 128

    def __init__(
        self,
        max_entries: int = 4096,
        store_dir: Optional[str] = None,
        disk_max_entries: Optional[int] = None,
    ) -> None:
        self.max_entries = max_entries
        self.store_dir = store_dir
        self.disk_max_entries = disk_max_entries
        self._memory: "OrderedDict[str, SimulationResult]" = OrderedDict()
        self._kernels: "OrderedDict[str, object]" = OrderedDict()
        self._forms: "OrderedDict[str, object]" = OrderedDict()
        self.kernel_compiles = 0
        self.kernel_hits = 0
        self.form_derives = 0
        self.form_hits = 0
        if store_dir:
            os.makedirs(store_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def disk_entries(self) -> int:
        """Number of entries currently in the disk store (0 when disabled)."""
        return len(self._disk_paths())

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None."""
        if key in self._memory:
            self._memory.move_to_end(key)
            return self._memory[key]
        if self.store_dir:
            path = os.path.join(self.store_dir, f"{key}.pkl")
            try:
                with open(path, "rb") as handle:
                    result = pickle.load(handle)
            except OSError:
                return None  # plain miss: entry was never written
            except Exception:
                # Truncated pickle, garbage bytes, or an entry written by an
                # incompatible version: drop it and re-simulate.
                global_metrics().count("cache.disk_corrupt")
                try:
                    os.remove(path)
                except OSError:
                    pass
                return None
            if not isinstance(result, SimulationResult):
                global_metrics().count("cache.disk_corrupt")
                try:
                    os.remove(path)
                except OSError:
                    pass
                return None
            # Refresh the entry's mtime: _evict_disk orders by mtime, so
            # without this a hot long-lived entry reads as the oldest and
            # is evicted first (FIFO, not LRU).
            try:
                os.utime(path, None)
            except OSError:
                pass
            self._remember(key, result)
            return result
        return None

    def put(self, key: str, result: SimulationResult) -> None:
        """Store a result under ``key`` (memory, plus disk when configured)."""
        self._remember(key, result)
        if self.store_dir:
            path = os.path.join(self.store_dir, f"{key}.pkl")
            tmp = f"{path}.tmp.{os.getpid()}"
            try:
                with open(tmp, "wb") as handle:
                    pickle.dump(result, handle)
                os.replace(tmp, path)
            except OSError:
                pass  # best-effort persistence; the memory layer still holds it
            else:
                self._evict_disk()

    def _disk_paths(self) -> list:
        """All ``.pkl`` entry paths in the store (empty when disabled)."""
        if not self.store_dir:
            return []
        try:
            names = os.listdir(self.store_dir)
        except OSError:
            return []
        return [
            os.path.join(self.store_dir, name)
            for name in names
            if name.endswith(".pkl")
        ]

    def _evict_disk(self) -> None:
        """Keep the disk store at or under ``disk_max_entries`` (oldest out)."""
        if not self.disk_max_entries or self.disk_max_entries <= 0:
            return
        paths = self._disk_paths()
        excess = len(paths) - self.disk_max_entries
        if excess <= 0:
            return
        def _mtime(path: str) -> float:
            try:
                return os.path.getmtime(path)
            except OSError:
                return 0.0
        for path in sorted(paths, key=_mtime)[:excess]:
            try:
                os.remove(path)
                global_metrics().count("cache.disk_evictions")
            except OSError:
                pass

    def kernel(self, key: str, factory):
        """Memoize a compiled accounting kernel (memory-only, LRU).

        ``factory`` runs at most once per ``key``; its return value —
        whatever shape the caller uses, e.g. the simulator's
        ``("ok", kernel)`` / ``("error", exc)`` pair, so compilation
        *failures* are also remembered — is stored and returned on every
        later call.  Kernels are code objects: they are never pickled to
        the disk store and are cheap to rebuild after a restart.
        """
        if key in self._kernels:
            self._kernels.move_to_end(key)
            self.kernel_hits += 1
            return self._kernels[key]
        value = factory()
        self._kernels[key] = value
        self.kernel_compiles += 1
        while len(self._kernels) > self.KERNEL_MAX_ENTRIES:
            self._kernels.popitem(last=False)
        return value

    def form(self, key: str, factory):
        """Memoize a symbolic accounting engine (memory-only, LRU).

        Like :meth:`kernel`, but for the tier-0 *symbolic form* of a node
        program: the key covers only the program fingerprint — never the
        cell's ``(P, params)`` — because the derived form is a function of
        those.  One derivation answers every cell of a sweep.  Failures
        (nests outside the symbolic fragment) are remembered too, so a
        sweep probes each unsupported program once.

        Callers caching derivation *products* (the engine itself, its
        certificates) must suffix their key with
        :data:`repro.numa.symbolic.FORM_SCHEMA` — e.g. ``"|symform:2"``
        — so that if this cache ever gains a shared/persistent backing,
        an upgraded derivation schema can never read a stale
        pre-upgrade entry.
        """
        if key in self._forms:
            self._forms.move_to_end(key)
            self.form_hits += 1
            return self._forms[key]
        value = factory()
        self._forms[key] = value
        self.form_derives += 1
        while len(self._forms) > self.FORM_MAX_ENTRIES:
            self._forms.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are kept)."""
        self._memory.clear()
        self._kernels.clear()
        self._forms.clear()

    def _remember(self, key: str, result: SimulationResult) -> None:
        if self.max_entries <= 0:
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)


_SHARED: Optional[SimulationCache] = None


def shared_cache() -> SimulationCache:
    """The process-wide default cache used when callers pass ``cache=None``.

    Honors the ``REPRO_CACHE_DIR`` environment variable (set at first use)
    for an on-disk store shared across processes, and
    ``REPRO_CACHE_MAX_ENTRIES`` for the disk-store cap applied by
    long-lived processes such as the compilation daemon.  A malformed cap
    raises :class:`~repro.errors.ConfigurationError` naming the bad value.
    """
    global _SHARED
    if _SHARED is None:
        cap_text = os.environ.get("REPRO_CACHE_MAX_ENTRIES")
        try:
            cap = int(cap_text) if cap_text else None
        except ValueError:
            # Swallowing the typo would silently disable the disk cap and
            # let a daemon's store grow without bound.
            raise ConfigurationError(
                f"REPRO_CACHE_MAX_ENTRIES={cap_text!r} is not an integer"
            )
        _SHARED = SimulationCache(
            store_dir=os.environ.get("REPRO_CACHE_DIR"),
            disk_max_entries=cap,
        )
    return _SHARED


def set_shared_cache(cache: Optional[SimulationCache]) -> SimulationCache:
    """Install ``cache`` as the process-wide default and return it.

    The compilation service uses this so every execution path in the
    daemon (batched simulate cells, sweeps running inside pool workers
    forked from the warm parent) converges on one cache object.
    ``None`` installs a fresh default-configured cache.
    """
    global _SHARED
    _SHARED = cache if cache is not None else SimulationCache()
    return _SHARED


def reset_shared_cache() -> None:
    """Drop the process-wide default cache (mainly for tests)."""
    global _SHARED
    _SHARED = None
