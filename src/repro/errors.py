"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` package."""


class LinalgError(ReproError):
    """Error in the exact linear-algebra substrate."""


class NotInvertibleError(LinalgError):
    """A matrix required to be invertible is singular."""


class ShapeError(LinalgError):
    """Operands have incompatible shapes."""


class NoIntegerSolutionError(LinalgError):
    """A Diophantine system has no integer solution."""


class IRError(ReproError):
    """Malformed intermediate representation."""


class NonAffineError(IRError):
    """An expression required to be affine in the loop indices is not."""


class ParseError(ReproError):
    """Syntax error in the front-end DSL."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SemanticError(ReproError):
    """Semantic error while lowering the DSL to IR."""


class DistributionError(ReproError):
    """Invalid or inconsistent data-distribution specification."""


class DependenceError(ReproError):
    """Dependence analysis could not produce a usable result."""


class IllegalTransformationError(ReproError):
    """A loop transformation violates data dependences."""


class CodegenError(ReproError):
    """Code generation failed for a transformed loop nest."""


class SimulationError(ReproError):
    """The NUMA simulator detected an inconsistency."""


class ConfigurationError(ReproError):
    """An environment variable or configuration value is malformed."""
