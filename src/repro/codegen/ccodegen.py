"""Paper-style pseudo-C rendering of node programs.

Reproduces the display form of Figures 1(d) and the Section 8 listings:
the distributed outer loop prints as ``for u = p, UB, step P`` and block
transfers print as ``read A[*, v];`` lines.
"""

from __future__ import annotations

from typing import List

from repro.codegen.spmd import NodeProgram
from repro.ir.loop import Loop
from repro.ir.printer import _render_statement


def _bound_text(exprs, combiner: str) -> str:
    if len(exprs) == 1:
        return str(exprs[0])
    return f"{combiner}(" + ", ".join(str(e) for e in exprs) + ")"


def _outer_loop_line(loop: Loop, node: NodeProgram) -> str:
    lower = _bound_text(loop.lower, "max")
    upper = _bound_text(loop.upper, "min")
    p = node.proc_param
    cap = node.procs_param
    if node.schedule == "wrapped":
        if loop.step == 1:
            return f"for {loop.index} = {p} /* first >= {lower} with {loop.index} === {p} mod {cap} */, {upper}, step {cap}"
        return (
            f"for {loop.index} = /* {loop.index} === {p} (mod {cap}) and "
            f"{loop.index} === {loop.align} (mod {loop.step}) */ {lower}, "
            f"{upper}, step lcm({loop.step}, {cap})"
        )
    if node.schedule == "blocked":
        return (
            f"for {loop.index} = max({lower}, {p}*S), "
            f"min({upper}, ({p}+1)*S - 1)  /* S = block size */"
        )
    return f"for {loop.index} = {lower}, {upper}" + (
        f", step {loop.step}" if loop.step != 1 else ""
    )


def render_node_program(node: NodeProgram, indent: str = "    ") -> str:
    """Render a node program as paper-style pseudo code."""
    nest = node.nest
    lines: List[str] = [f"/* node program for processor {node.proc_param} "
                        f"of {node.procs_param}: {node.schedule} schedule */"]
    for depth, loop in enumerate(nest.loops):
        if depth == 0:
            lines.append(_outer_loop_line(loop, node))
        else:
            lines.append(indent * depth + str(loop))
        for statement in loop.prologue:
            for line in _render_statement(statement, indent * (depth + 1), indent):
                lines.append(line + ";")
    body_indent = indent * nest.depth
    for statement in nest.body:
        lines.extend(_render_statement(statement, body_indent, indent))
    return "\n".join(lines)
