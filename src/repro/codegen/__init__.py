"""NUMA code generation (Section 7): locality planning, SPMD node programs,
the ownership-rule baseline, and pseudo-C / executable-Python emitters."""

from repro.codegen.ccodegen import render_node_program
from repro.codegen.locality import (
    LocalityPlan,
    RefClass,
    ReferenceInfo,
    plan_locality,
)
from repro.codegen.ownership import generate_ownership
from repro.codegen.pycodegen import compile_program, emit_python
from repro.codegen.spmd import NodeProgram, generate_spmd
from repro.codegen.tiling import generate_tiled_spmd, strip_mine, tile_nest

__all__ = [
    "LocalityPlan",
    "NodeProgram",
    "RefClass",
    "ReferenceInfo",
    "compile_program",
    "emit_python",
    "generate_ownership",
    "generate_spmd",
    "generate_tiled_spmd",
    "plan_locality",
    "render_node_program",
    "strip_mine",
    "tile_nest",
]
