"""The ownership-rule baseline code generator (Section 2.1).

FORTRAN-D-style compilation without loop restructuring: every processor
executes *every* iteration of the original nest, testing at run time whether
it owns the left-hand side ("looking for work to do").  The guard is the
modular ownership test of the wrapped distribution.  This generator exists
to reproduce the paper's argument that the ownership rule alone generates
inefficient code when the loop structure does not match the distribution.
"""

from __future__ import annotations

from typing import List

from repro.codegen.locality import LocalityPlan, RefClass, ReferenceInfo, plan_locality
from repro.codegen.spmd import NodeProgram
from repro.errors import CodegenError, DistributionError
from repro.ir.affine import AffineExpr
from repro.ir.program import Program
from repro.ir.stmt import Assign, IfThen, Statement


def generate_ownership(
    program: Program,
    *,
    proc_param: str = "p",
    procs_param: str = "P",
) -> NodeProgram:
    """Generate the ownership-rule node program for an (untransformed) program.

    Every assignment is wrapped in ``if owner(lhs) == p``; all references
    are classified ``CHECK`` so the simulator resolves owners exactly.  The
    per-iteration guard cost is what makes all processors sweep the full
    iteration space.
    """
    processors = AffineExpr.var(procs_param)
    proc = AffineExpr.var(proc_param)
    body: List[Statement] = []
    guards = 0
    for statement in program.nest.body:
        if not isinstance(statement, Assign):
            raise CodegenError(
                "ownership-rule generation expects plain assignments"
            )
        distribution = program.distribution(statement.lhs.array)
        if distribution is None:
            body.append(statement)  # Replicated LHS: everyone updates.
            continue
        try:
            guard = distribution.ownership_guard(
                statement.lhs.subscripts, processors, proc
            )
        except DistributionError as error:
            raise CodegenError(
                f"ownership rule needs a modular guard for "
                f"{statement.lhs.array!r}: {error}"
            ) from error
        body.append(IfThen((guard,), statement))
        guards += 1

    nest = program.nest.with_body(body)
    base_plan = plan_locality(
        program.nest, program.distributions, schedule="all", block_transfers=False
    )
    # Everything is CHECK under the ownership rule: no restructuring means
    # no provable locality and no block-transfer opportunities.
    refs = tuple(
        ReferenceInfo(info.ref, info.is_write, RefClass.CHECK, "ownership rule")
        for info in base_plan.refs
    )
    return NodeProgram(
        program=program.with_nest(nest, name=f"{program.name}-ownership"),
        schedule="all",
        plan=LocalityPlan(refs=refs, block_reads=()),
        proc_param=proc_param,
        procs_param=procs_param,
        guards_per_iteration=guards,
        description="ownership-rule baseline: all processors sweep all iterations",
    )
