"""SPMD node-program generation (Section 7).

The same code runs on every processor, parameterized by the processor
number ``p`` and the processor count ``P``.  Iterations of the outermost
loop are distributed — wrapped (round-robin by value, matching cyclic data
distributions) or blocked — and ``read A[*, v]`` block transfers are hoisted
into the prologue of the loop that fixes the distribution-dimension
subscript.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.codegen.locality import LocalityPlan, plan_locality
from repro.errors import CodegenError
from repro.ir.loop import Loop, LoopNest
from repro.ir.program import Program

SCHEDULES = ("wrapped", "blocked", "all")


@dataclass(frozen=True)
class NodeProgram:
    """A per-processor program plus the metadata the simulator needs.

    ``program.nest`` keeps *sequential* semantics (the union over all
    processors); the ``schedule`` says how the outermost loop's iterations
    are split at run time.  ``plan`` classifies every reference; block
    transfers already sit in the loop prologues.
    """

    program: Program
    schedule: str
    plan: LocalityPlan
    proc_param: str = "p"
    procs_param: str = "P"
    guards_per_iteration: int = 0
    sync_per_outer_iteration: int = 0
    description: str = ""

    @property
    def nest(self) -> LoopNest:
        """The node program's loop nest."""
        return self.program.nest


def generate_spmd(
    program: Program,
    *,
    schedule: str = "wrapped",
    block_transfers: bool = True,
    proc_param: str = "p",
    procs_param: str = "P",
    dependences=None,
    sync_events: Optional[int] = None,
) -> NodeProgram:
    """Generate the SPMD node program for a (typically normalized) program.

    The locality plan classifies each reference for outer-loop distribution;
    every planned block transfer is inserted into the prologue of its loop.

    ``dependences`` optionally passes the dependence matrix of *this* nest
    (for a normalized program, the columns of ``T @ D``).  Columns whose
    leading entry is positive are carried by the distributed loop and need
    one post/wait synchronization per outer iteration (Section 7 notes the
    insertion is routine); the simulator charges
    ``machine.sync_cost_us`` per event.  ``sync_events`` overrides the
    count directly (e.g. from
    :attr:`~repro.core.NormalizationResult.outer_carried_count`, which also
    accounts for direction-vector dependences).
    """
    if schedule not in SCHEDULES:
        raise CodegenError(f"unknown schedule {schedule!r}; pick one of {SCHEDULES}")
    if program.nest.depth == 0:
        raise CodegenError("cannot distribute an empty loop nest")
    for reserved in (proc_param, procs_param):
        if reserved in program.nest.indices:
            raise CodegenError(
                f"parameter name {reserved!r} collides with a loop index"
            )

    plan = plan_locality(
        program.nest,
        program.distributions,
        schedule=schedule,
        block_transfers=block_transfers,
    )
    by_level: Dict[int, List] = {}
    for level, read in plan.block_reads:
        by_level.setdefault(level, []).append(read)

    loops: List[Loop] = []
    for level, loop in enumerate(program.nest.loops):
        reads = by_level.get(level, [])
        if reads:
            loops.append(loop.with_prologue(tuple(loop.prologue) + tuple(reads)))
        else:
            loops.append(loop)
    nest = program.nest.with_loops(loops)
    counts = plan.counts()
    syncs = 0
    if dependences is not None and dependences.ncols:
        syncs = sum(
            1
            for j in range(dependences.ncols)
            if dependences[0, j] > 0
        )
    if sync_events is not None:
        syncs = sync_events
    description = (
        f"{schedule} outer-loop distribution; "
        f"{counts}"
    )
    return NodeProgram(
        program=program.with_nest(nest, name=f"{program.name}-spmd"),
        schedule=schedule,
        plan=plan,
        proc_param=proc_param,
        procs_param=procs_param,
        sync_per_outer_iteration=syncs,
        description=description,
    )
