"""Strip-mining and tiling (Section 7).

The paper's general technique for partitioning an iteration space among
processors is *tiling*; for the wrapped and blocked distributions of its
evaluation, distributing the outermost loop suffices, but the general
mechanism is provided here: :func:`strip_mine` splits one loop into a tile
loop and an intra-tile loop, and :func:`tile_nest` applies it to several
levels at once.  The tile loop can then be distributed like any outer loop
(:func:`generate_tiled_spmd`).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.codegen.spmd import NodeProgram, generate_spmd
from repro.errors import CodegenError
from repro.ir.affine import AffineExpr
from repro.ir.loop import Loop, LoopNest
from repro.ir.program import Program


def strip_mine(
    nest: LoopNest,
    level: int,
    tile_size: int,
    tile_index: Optional[str] = None,
) -> LoopNest:
    """Split loop ``level`` into a tile loop and an intra-tile loop.

    The tile loop iterates the original bounds with step ``tile_size``
    (anchored at the effective lower bound); the intra-tile loop covers
    ``tile .. min(tile + tile_size - 1, original uppers)``.  Semantics are
    preserved exactly: the tiles partition the original range.
    """
    if not 0 <= level < nest.depth:
        raise CodegenError(f"no loop at level {level}")
    if tile_size <= 0:
        raise CodegenError("tile size must be positive")
    loop = nest.loops[level]
    if loop.step != 1 or loop.align is not None:
        raise CodegenError(
            f"loop {loop.index!r} must be unit-step and unaligned to tile "
            "(run step normalization first)"
        )
    name = tile_index or f"{loop.index}{loop.index}"
    taken = set(nest.indices) | set(nest.free_variables())
    while name in taken:
        name += "t"

    tile_loop = Loop(
        index=name,
        lower=loop.lower,
        upper=loop.upper,
        step=tile_size,
        prologue=loop.prologue,
    )
    intra_loop = Loop(
        index=loop.index,
        lower=(AffineExpr.var(name),),
        upper=loop.upper + (AffineExpr.var(name) + (tile_size - 1),),
    )
    loops = (
        nest.loops[:level] + (tile_loop, intra_loop) + nest.loops[level + 1 :]
    )
    return LoopNest(loops, nest.body)


def tile_nest(
    nest: LoopNest, tile_sizes: Mapping[str, int]
) -> LoopNest:
    """Strip-mine several loops, given ``{index_name: tile_size}``.

    Tile loops are inserted in place, so after tiling the nest depth grows
    by ``len(tile_sizes)``; intra-tile loops keep their original names.
    """
    result = nest
    for index, size in tile_sizes.items():
        names = [loop.index for loop in result.loops]
        if index not in names:
            raise CodegenError(f"no loop named {index!r} to tile")
        result = strip_mine(result, names.index(index), size)
    return result


def generate_tiled_spmd(
    program: Program,
    tile_size: int,
    *,
    schedule: str = "wrapped",
    block_transfers: bool = True,
) -> NodeProgram:
    """Tile the outermost loop and distribute the tile loop (Section 7).

    With ``schedule="wrapped"`` tiles are dealt round-robin; with
    ``"blocked"`` each processor gets a contiguous run of tiles.  This is
    the general partitioning mechanism; for tile_size 1 it degenerates to
    plain outer-loop distribution.
    """
    tiled = strip_mine(program.nest, 0, tile_size)
    return generate_spmd(
        program.with_nest(tiled, name=f"{program.name}-tiled{tile_size}"),
        schedule=schedule,
        block_transfers=block_transfers,
    )
