"""Per-reference locality planning for SPMD code generation (Section 7).

After access normalization the outermost loop is distributed across the
processors.  Each array reference then falls into one of three classes:

* ``LOCAL`` — provably local: the subscript in the distribution dimension is
  *normal* with respect to the distributed loop (Definition 4.1), so the
  wrapped iteration assignment ``u === p (mod P)`` lands exactly on the
  owner;
* ``COVERED`` — non-local, but the distribution-dimension subscript is
  invariant in the inner loops, so one ``read A[*, v]`` block transfer per
  iteration of the fixing loop covers all its accesses;
* ``CHECK`` — locality varies access by access; the simulator resolves the
  owner at run time (this is also what untransformed baselines get).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Mapping, Optional, Tuple

from repro.distributions.base import Distribution, Replicated
from repro.ir.affine import AffineExpr
from repro.ir.loop import LoopNest
from repro.ir.scalar import ArrayRef
from repro.ir.stmt import BlockRead


class RefClass(Enum):
    """Locality classification of an array reference."""

    LOCAL = "local"
    COVERED = "covered"
    CHECK = "check"


@dataclass(frozen=True)
class ReferenceInfo:
    """One reference's classification with the reason for it."""

    ref: ArrayRef
    is_write: bool
    ref_class: RefClass
    reason: str
    block_level: Optional[int] = None


@dataclass(frozen=True)
class LocalityPlan:
    """The complete locality plan of a nest under outer-loop distribution."""

    refs: Tuple[ReferenceInfo, ...]
    block_reads: Tuple[Tuple[int, BlockRead], ...]

    def class_of(self, ref: ArrayRef, is_write: bool) -> RefClass:
        """Look up the classification of a reference."""
        for info in self.refs:
            if info.ref == ref and info.is_write == is_write:
                return info.ref_class
        return RefClass.CHECK

    def counts(self) -> Dict[RefClass, int]:
        """How many references fall into each class."""
        result = {cls: 0 for cls in RefClass}
        for info in self.refs:
            result[info.ref_class] += 1
        return result

    def describe(self) -> str:
        """Readable summary, one line per reference."""
        lines = []
        for info in self.refs:
            mode = "write" if info.is_write else "read"
            extra = (
                f" (block read at loop {info.block_level})"
                if info.block_level is not None
                else ""
            )
            lines.append(
                f"{info.ref} [{mode}]: {info.ref_class.value} - {info.reason}{extra}"
            )
        return "\n".join(lines)


def plan_locality(
    nest: LoopNest,
    distributions: Mapping[str, Distribution],
    *,
    schedule: str = "wrapped",
    block_transfers: bool = True,
) -> LocalityPlan:
    """Classify every reference of ``nest`` for outer-loop distribution.

    ``schedule`` is how the outermost loop is split (``"wrapped"`` or
    ``"blocked"``); the provable-``LOCAL`` shortcut only applies to wrapped
    schedules over cyclically distributed arrays — everything else is still
    correct, just resolved at run time (``CHECK``).
    """
    indices = nest.indices
    outer = indices[0] if indices else None
    # The provable-LOCAL shortcut relies on value-based wrapping, which
    # only holds for unit-step, unaligned outer loops (strided outers are
    # distributed by iteration position instead).
    if nest.loops and (nest.loops[0].step != 1 or nest.loops[0].align is not None):
        outer = None
    depth = nest.depth
    infos: List[ReferenceInfo] = []
    block_reads: List[Tuple[int, BlockRead]] = []
    seen_reads: set = set()

    for ref, is_write in nest.array_refs():
        distribution = distributions.get(ref.array)
        if distribution is None or isinstance(distribution, Replicated):
            infos.append(
                ReferenceInfo(ref, is_write, RefClass.LOCAL, "array is replicated")
            )
            continue
        dims = distribution.distribution_dims()
        if len(dims) != 1:
            infos.append(
                ReferenceInfo(
                    ref, is_write, RefClass.CHECK, "multi-dimensional distribution"
                )
            )
            continue
        dim = dims[0]
        if dim >= ref.rank:
            infos.append(
                ReferenceInfo(ref, is_write, RefClass.CHECK, "rank mismatch")
            )
            continue
        subscript = ref.subscripts[dim]
        is_cyclic = type(distribution).__name__ == "Wrapped"
        if (
            schedule == "wrapped"
            and is_cyclic
            and outer is not None
            and subscript == AffineExpr.var(outer)
        ):
            infos.append(
                ReferenceInfo(
                    ref,
                    is_write,
                    RefClass.LOCAL,
                    "distribution-dimension subscript is normal w.r.t. the "
                    "distributed loop",
                )
            )
            continue
        fix_level = _deepest_level(subscript, indices)
        if (
            block_transfers
            and not is_write
            and fix_level == depth - 1
            and _gatherable(ref, indices, nest)
        ):
            # The distribution-dimension subscript changes every innermost
            # iteration, but the whole (read-only) array is swept: gather
            # it once with a single bulk transfer (``read X[*]``-style).
            pattern = tuple(None for _ in range(ref.rank))
            read = BlockRead(ref.array, pattern)
            key = (0, ref.array, pattern)
            if key not in seen_reads:
                seen_reads.add(key)
                block_reads.append((0, read))
            infos.append(
                ReferenceInfo(
                    ref,
                    is_write,
                    RefClass.COVERED,
                    "read-only array gathered whole with one bulk transfer",
                    block_level=0,
                )
            )
            continue
        if (
            block_transfers
            and not is_write
            and fix_level < depth - 1
        ):
            level = max(fix_level, 0)
            pattern = tuple(
                subscript if d == dim else None for d in range(ref.rank)
            )
            read = BlockRead(ref.array, pattern)
            key = (level, ref.array, pattern)
            if key not in seen_reads:
                seen_reads.add(key)
                block_reads.append((level, read))
            infos.append(
                ReferenceInfo(
                    ref,
                    is_write,
                    RefClass.COVERED,
                    "distribution-dimension subscript invariant in inner loops",
                    block_level=level,
                )
            )
            continue
        infos.append(
            ReferenceInfo(
                ref,
                is_write,
                RefClass.CHECK,
                "locality varies access by access",
            )
        )
    return LocalityPlan(refs=tuple(infos), block_reads=tuple(block_reads))


def _gatherable(ref, indices, nest: LoopNest) -> bool:
    """May this reference be satisfied by gathering the whole array once?

    Requires every subscript to depend only on the innermost loop index (or
    on nothing), so the sweep touches a fixed region, and the array to be
    read-only in the nest (a gathered copy of a written array would go
    stale).
    """
    if not indices:
        return False
    outer_names = set(indices[:-1])
    for subscript in ref.subscripts:
        if subscript.depends_on(outer_names):
            return False
    for other, is_write in nest.array_refs():
        if is_write and other.array == ref.array:
            return False
    return True


def _deepest_level(expr: AffineExpr, indices: Tuple[str, ...]) -> int:
    """The innermost loop level whose index appears in ``expr`` (-1 if none)."""
    deepest = -1
    for level, name in enumerate(indices):
        if expr.coeff(name):
            deepest = level
    return deepest
