"""Benchmark harness utilities: sweeps and paper-style tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.codegen.spmd import NodeProgram
from repro.numa.machine import MachineConfig, butterfly_gp1000
from repro.runtime.cache import SimulationCache
from repro.runtime.executor import SweepCell, run_grid
from repro.runtime.metrics import Metrics

#: The processor counts of the paper's speedup plots (x-axis 1..28).
PAPER_PROCS = (1, 4, 8, 12, 16, 20, 24, 28)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Plain-text aligned table, for printing bench results."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def speedup_table(
    procs: Sequence[int], series: Mapping[str, Sequence[float]]
) -> str:
    """Render speedup curves as a table with one column per variant."""
    headers = ["P"] + list(series)
    rows = []
    for position, processors in enumerate(procs):
        row = [processors] + [
            f"{series[name][position]:.2f}" for name in series
        ]
        rows.append(row)
    return format_table(headers, rows)


def run_speedup_sweep(
    nodes: Mapping[str, NodeProgram],
    procs: Sequence[int] = PAPER_PROCS,
    *,
    machine: Optional[MachineConfig] = None,
    params: Optional[Mapping[str, int]] = None,
    baseline: Optional[str] = None,
    jobs: int = 1,
    cache: Optional[SimulationCache] = None,
    metrics: Optional[Metrics] = None,
    engine: str = "auto",
) -> Dict[str, List[float]]:
    """Simulate every variant at every processor count and return speedups.

    All curves share one sequential baseline (the one-processor time of
    ``baseline``, defaulting to the first variant) so they are directly
    comparable, as in the paper's figures.  The baseline's P=1 cell is the
    same grid point as its ``P=1`` sweep entry, so it is simulated once.

    The ``(variant, P)`` grid runs on the parallel sweep engine:
    ``jobs > 1`` fans cells out over a process pool (results are merged in
    grid order, so output is identical to a serial run), ``cache``
    memoizes cells across sweeps (``None`` uses the process-wide shared
    cache) and ``metrics`` collects stage timings and hit/miss counters.
    ``engine`` forces an accounting tier for every cell (all tiers are
    bit-identical; the perf benchmarks force ``walk`` for baselines).
    """
    machine = machine or butterfly_gp1000()
    names = list(nodes)
    base_name = baseline or names[0]
    cells = [
        SweepCell(base_name, nodes[base_name], 1, params, machine,
                  engine=engine)
    ]
    for processors in procs:
        for name in names:
            cells.append(
                SweepCell(name, nodes[name], processors, params, machine,
                          engine=engine)
            )
    results = run_grid(cells, jobs=jobs, cache=cache, metrics=metrics)
    sequential = results[0].total_time_us
    series: Dict[str, List[float]] = {name: [] for name in names}
    for cell, result in zip(cells[1:], results[1:]):
        series[cell.name].append(result.speedup(sequential))
    return series
