"""Benchmark harness utilities: sweeps and paper-style tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.codegen.spmd import NodeProgram
from repro.numa.machine import MachineConfig, butterfly_gp1000
from repro.numa.simulator import simulate

#: The processor counts of the paper's speedup plots (x-axis 1..28).
PAPER_PROCS = (1, 4, 8, 12, 16, 20, 24, 28)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Plain-text aligned table, for printing bench results."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def speedup_table(
    procs: Sequence[int], series: Mapping[str, Sequence[float]]
) -> str:
    """Render speedup curves as a table with one column per variant."""
    headers = ["P"] + list(series)
    rows = []
    for position, processors in enumerate(procs):
        row = [processors] + [
            f"{series[name][position]:.2f}" for name in series
        ]
        rows.append(row)
    return format_table(headers, rows)


def run_speedup_sweep(
    nodes: Mapping[str, NodeProgram],
    procs: Sequence[int] = PAPER_PROCS,
    *,
    machine: Optional[MachineConfig] = None,
    params: Optional[Mapping[str, int]] = None,
    baseline: Optional[str] = None,
) -> Dict[str, List[float]]:
    """Simulate every variant at every processor count and return speedups.

    All curves share one sequential baseline (the one-processor time of
    ``baseline``, defaulting to the first variant) so they are directly
    comparable, as in the paper's figures.
    """
    machine = machine or butterfly_gp1000()
    names = list(nodes)
    base_name = baseline or names[0]
    sequential = simulate(
        nodes[base_name], processors=1, params=params, machine=machine
    ).total_time_us
    series: Dict[str, List[float]] = {name: [] for name in names}
    for processors in procs:
        for name in names:
            result = simulate(
                nodes[name], processors=processors, params=params, machine=machine
            )
            series[name].append(result.speedup(sequential))
    return series
