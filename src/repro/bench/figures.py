"""Regeneration of the paper's results figures (Figures 4 and 5).

Both figures plot speedup against processor count (1..28) on a simulated
BBN Butterfly GP-1000.  ``figure_machine`` is the calibrated machine used
throughout: the published access/transfer constants, a 10 us
multiply-add statement cost, and a mild contention coefficient (the paper
discusses contention in Sections 1 and 8); EXPERIMENTS.md records the
calibration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import PAPER_PROCS, run_speedup_sweep
from repro.blas import PAPER_PRIORITY, gemm_program, syr2k_program
from repro.codegen import generate_spmd
from repro.core import access_normalize
from repro.numa.machine import MachineConfig, butterfly_gp1000
from repro.numa.model import gemm_speedup_series
from repro.runtime.cache import SimulationCache
from repro.runtime.metrics import Metrics


def figure_machine(**overrides) -> MachineConfig:
    """The calibrated machine model used for the figure reproductions."""
    defaults = dict(contention_coefficient=0.05)
    defaults.update(overrides)
    return butterfly_gp1000(**defaults)


def gemm_variants(n: int) -> Dict[str, object]:
    """The three node programs behind Figure 4's curves."""
    program = gemm_program(n)
    normalized = access_normalize(program).transformed
    return {
        "gemm": generate_spmd(program, block_transfers=False),
        "gemmT": generate_spmd(normalized, block_transfers=False),
        "gemmB": generate_spmd(normalized, block_transfers=True),
    }


def syr2k_variants(n: int, b: int) -> Dict[str, object]:
    """The three node programs behind Figure 5's curves."""
    program = syr2k_program(n, b)
    normalized = access_normalize(program, priority=PAPER_PRIORITY).transformed
    return {
        "syr2k": generate_spmd(program, block_transfers=False),
        "syr2kT": generate_spmd(normalized, block_transfers=False),
        "syr2kB": generate_spmd(normalized, block_transfers=True),
    }


def fig4_series(
    n: int = 400,
    procs: Sequence[int] = PAPER_PROCS,
    machine: Optional[MachineConfig] = None,
) -> Tuple[Sequence[int], Dict[str, List[float]]]:
    """Figure 4 (GEMM speedups), via the exact closed-form model.

    The model is validated against the event-exact simulator in the test
    suite; at the paper's 400x400 scale it evaluates instantly.
    """
    machine = machine or figure_machine()
    return procs, gemm_speedup_series(n, procs, machine)


def fig4_series_simulated(
    n: int = 128,
    procs: Sequence[int] = PAPER_PROCS,
    machine: Optional[MachineConfig] = None,
    *,
    jobs: int = 1,
    cache: Optional[SimulationCache] = None,
    metrics: Optional[Metrics] = None,
) -> Tuple[Sequence[int], Dict[str, List[float]]]:
    """Figure 4 via the event-exact simulator (use moderate ``n``)."""
    machine = machine or figure_machine()
    series = run_speedup_sweep(
        gemm_variants(n), procs, machine=machine, baseline="gemmB",
        jobs=jobs, cache=cache, metrics=metrics,
    )
    return procs, series


def fig5_series(
    n: int = 400,
    b: int = 48,
    procs: Sequence[int] = PAPER_PROCS,
    machine: Optional[MachineConfig] = None,
    *,
    jobs: int = 1,
    cache: Optional[SimulationCache] = None,
    metrics: Optional[Metrics] = None,
) -> Tuple[Sequence[int], Dict[str, List[float]]]:
    """Figure 5 (banded SYR2K speedups), via the event-exact simulator.

    The banded iteration space is small enough (outer trip count ``2b-1``)
    that exact simulation at paper scale is cheap.
    """
    machine = machine or figure_machine()
    series = run_speedup_sweep(
        syr2k_variants(n, b), procs, machine=machine, baseline="syr2kB",
        jobs=jobs, cache=cache, metrics=metrics,
    )
    return procs, series
