"""One-command regeneration of every experiment: ``python -m repro.bench.report``.

Runs FIG4, FIG5 and the ablations, and writes a markdown report (default
``RESULTS.md``) with the reproduced tables and ASCII charts.  This is the
companion artifact to EXPERIMENTS.md: EXPERIMENTS.md interprets, the report
regenerates.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.bench.ascii_plot import render_chart
from repro.bench.figures import fig4_series, fig5_series, figure_machine
from repro.bench.harness import PAPER_PROCS, format_table, speedup_table
from repro.numa.machine import butterfly_gp1000, ipsc860, uniform_memory
from repro.numa.model import gemm_model


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def fig4_section(n: int) -> str:
    procs, series = fig4_series(n, PAPER_PROCS)
    body = (
        speedup_table(procs, series)
        + "\n\n"
        + render_chart(procs, series, title=f"GEMM speedup, N={n}")
    )
    return _section(f"FIG4 — GEMM speedups (N={n}, closed-form model)", body)


def fig5_section(n: int, b: int) -> str:
    procs, series = fig5_series(n, b, PAPER_PROCS)
    body = (
        speedup_table(procs, series)
        + "\n\n"
        + render_chart(procs, series, title=f"banded SYR2K speedup, N={n}, b={b}")
    )
    return _section(
        f"FIG5 — banded SYR2K speedups (N={n}, b={b}, event-exact simulator)",
        body,
    )


def contention_section(n: int = 400, processors: int = 28) -> str:
    rows = []
    for coefficient in (0.0, 0.05, 0.1, 0.2, 0.4):
        machine = butterfly_gp1000(contention_coefficient=coefficient)
        sequential = gemm_model(n, 1, "gemmB", machine).time_us
        speed_t = sequential / gemm_model(n, processors, "gemmT", machine).time_us
        speed_b = sequential / gemm_model(n, processors, "gemmB", machine).time_us
        rows.append(
            (coefficient, f"{speed_t:.2f}", f"{speed_b:.2f}",
             f"{speed_b / speed_t:.2f}x")
        )
    return _section(
        f"ABL1 — contention sweep (GEMM N={n}, P={processors})",
        format_table(["coeff", "gemmT", "gemmB", "B advantage"], rows),
    )


def machines_section(n: int = 400, processors: int = 16) -> str:
    rows = []
    for factory in (butterfly_gp1000, ipsc860, uniform_memory):
        machine = factory()
        sequential = gemm_model(n, 1, "gemmB", machine).time_us
        speeds = {
            variant: sequential / gemm_model(n, processors, variant, machine).time_us
            for variant in ("gemm", "gemmT", "gemmB")
        }
        rows.append(
            (
                machine.name,
                f"{speeds['gemm']:.2f}",
                f"{speeds['gemmT']:.2f}",
                f"{speeds['gemmB']:.2f}",
            )
        )
    return _section(
        f"ABL6 — machine sensitivity (GEMM N={n}, P={processors})",
        format_table(["machine", "gemm", "gemmT", "gemmB"], rows),
    )


def breakeven_section() -> str:
    rows = []
    for factory in (butterfly_gp1000, ipsc860):
        machine = factory()
        rows.append(
            (machine.name, f"{machine.block_breakeven_elements(8):.2f}")
        )
    return _section(
        "ABL3 — block-transfer breakeven (8-byte elements)",
        format_table(["machine", "breakeven elements"], rows),
    )


def build_report(n_gemm: int = 400, n_syr2k: int = 400, b: int = 48) -> str:
    """Assemble the full markdown report."""
    machine = figure_machine()
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    parts: List[str] = [
        "# Reproduced results",
        "",
        f"Generated {stamp} by `python -m repro.bench.report`.",
        "",
        f"Machine model: {machine.name} — local {machine.local_access_us} us, "
        f"remote {machine.remote_access_us} us, block "
        f"{machine.block_startup_us} us + {machine.block_per_byte_us} us/byte, "
        f"compute {machine.compute_per_statement_us} us/stmt, "
        f"contention {machine.contention_coefficient}.",
        "",
        fig4_section(n_gemm),
        fig5_section(n_syr2k, b),
        contention_section(),
        machines_section(),
        breakeven_section(),
    ]
    return "\n".join(parts)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.report",
        description="Regenerate every figure/table into a markdown report",
    )
    parser.add_argument("--output", default="RESULTS.md")
    parser.add_argument("--gemm-n", type=int, default=400)
    parser.add_argument("--syr2k-n", type=int, default=400)
    parser.add_argument("--band", type=int, default=48)
    args = parser.parse_args(argv)
    report = build_report(args.gemm_n, args.syr2k_n, args.band)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(report)
    print(f"wrote {args.output} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
