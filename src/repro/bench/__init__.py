"""Benchmark harness: sweeps, tables and the paper's figure generators."""

from repro.bench.ascii_plot import render_chart
from repro.bench.figures import (
    fig4_series,
    fig4_series_simulated,
    fig5_series,
    figure_machine,
    gemm_variants,
    syr2k_variants,
)
from repro.bench.harness import (
    PAPER_PROCS,
    format_table,
    run_speedup_sweep,
    speedup_table,
)

__all__ = [
    "PAPER_PROCS",
    "render_chart",
    "fig4_series",
    "fig4_series_simulated",
    "fig5_series",
    "figure_machine",
    "format_table",
    "gemm_variants",
    "run_speedup_sweep",
    "speedup_table",
    "syr2k_variants",
]
