"""A small ASCII chart renderer for speedup curves.

The paper's Figures 4 and 5 are speedup-vs-processors plots; the benchmark
suite prints their regenerated counterparts as terminal charts so the shape
comparison does not require a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

_MARKS = "oxz*#@"


def render_chart(
    procs: Sequence[int],
    series: Mapping[str, Sequence[float]],
    *,
    height: int = 16,
    width: int = 58,
    title: str = "",
) -> str:
    """Render speedup curves as an ASCII scatter chart.

    The x axis is the processor count, the y axis the speedup; each series
    gets one mark character, listed in the legend.

    Raises :class:`ValueError` when there is nothing to plot (no processor
    counts, no series, or a series with no points).
    """
    names = list(series)
    if not procs or not names or any(len(series[n]) == 0 for n in names):
        raise ValueError(
            "render_chart needs at least one processor count and one "
            "non-empty series"
        )
    max_y = max(max(values) for values in series.values())
    max_y = max(max_y, 1.0)
    min_x, max_x = min(procs), max(procs)
    span_x = max(max_x - min_x, 1)

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, name in enumerate(names):
        mark = _MARKS[index % len(_MARKS)]
        for x_value, y_value in zip(procs, series[name]):
            col = round((x_value - min_x) / span_x * (width - 1))
            row = round(y_value / max_y * (height - 1))
            grid[height - 1 - row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_label = max_y * (height - 1 - row_index) / (height - 1)
        lines.append(f"{y_label:6.1f} |" + "".join(row))
    lines.append(" " * 7 + "+" + "-" * width)
    axis = [" "] * width
    for x_value in procs:
        col = round((x_value - min_x) / span_x * (width - 1))
        label = str(x_value)
        if len(label) > width:  # label wider than the whole chart
            label = label[:width]
        start = max(0, min(col, width - len(label)))
        for offset, char in enumerate(label):
            axis[start + offset] = char
    lines.append(" " * 8 + "".join(axis) + "   (processors)")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]} = {name}" for i, name in enumerate(names)
    )
    lines.append(" " * 8 + legend)
    return "\n".join(lines)
