"""repro — Access Normalization: Loop Restructuring for NUMA Compilers.

A full reproduction of Li & Pingali (ASPLOS 1992).  The typical pipeline::

    from repro import (
        parse_program, access_normalize, generate_spmd, simulate,
        butterfly_gp1000,
    )

    program = parse_program(source_text)          # FORTRAN-D-style input
    result = access_normalize(program)            # the paper's pass
    node = generate_spmd(result.transformed)      # SPMD + block transfers
    stats = simulate(node, processors=16)         # Butterfly GP-1000 model

Subpackages: :mod:`repro.linalg` (exact lattice math), :mod:`repro.ir`
(loop-nest IR), :mod:`repro.lang` (front end), :mod:`repro.distributions`,
:mod:`repro.dependence`, :mod:`repro.core` (the contribution),
:mod:`repro.codegen`, :mod:`repro.numa` (machine + simulator),
:mod:`repro.blas` (workloads), :mod:`repro.vector` (Section 9 application),
:mod:`repro.bench` (figure harness).
"""

from repro.codegen import (
    compile_program,
    generate_ownership,
    generate_spmd,
    render_node_program,
)
from repro.core import (
    NormalizationResult,
    Transformation,
    access_normalize,
    apply_transformation,
    build_access_matrix,
)
from repro.distributions import (
    Blocked,
    Replicated,
    Wrapped,
    blocked_column,
    blocked_row,
    wrapped_column,
    wrapped_row,
)
from repro.errors import ReproError
from repro.ir import AffineExpr, Loop, LoopNest, Program, make_nest, make_program
from repro.lang import parse_program
from repro.linalg import Matrix
from repro.numa import (
    MachineConfig,
    butterfly_gp1000,
    ipsc860,
    sequential_time,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "AffineExpr",
    "Blocked",
    "Loop",
    "LoopNest",
    "MachineConfig",
    "Matrix",
    "NormalizationResult",
    "Program",
    "Replicated",
    "ReproError",
    "Transformation",
    "Wrapped",
    "access_normalize",
    "apply_transformation",
    "blocked_column",
    "blocked_row",
    "build_access_matrix",
    "butterfly_gp1000",
    "compile_program",
    "generate_ownership",
    "generate_spmd",
    "ipsc860",
    "make_nest",
    "make_program",
    "parse_program",
    "render_node_program",
    "sequential_time",
    "simulate",
    "wrapped_column",
    "wrapped_row",
]
