#!/usr/bin/env python
"""Micro-benchmark the tier-0 form evaluators; calibrate the cost model.

The symbolic cost model (:func:`repro.linalg.sympoly.planned_cost` and
``SYMBOLIC_COST_CEILING`` in :mod:`repro.numa.simulator`) prices a form
in *flat ops* — the unit is "one polynomial term or atom evaluation".
Auto's tier gate compares that estimate against the ceiling, so the
model's constants only promote honestly if they track what the compiled
evaluators actually cost at runtime.  This script measures, on the host
it runs on:

``flat_ns_per_op``
    Wall-clock per flat op of a straight-line compiled form (no loops):
    the unit everything else is expressed in.

``loop_ns_per_iter``
    Per-iteration cost of a compiled *fallback* residual loop (a body
    the residue-class planner declines — here a quadratic in the bound
    variable), the ``trips * (1 + iter_ops)`` side of ``planned_cost``.

``plan_setup_ns`` / ``plan_ns_per_class``
    The residue-class plan side: cost of one ``_LoopPlan.run`` fitted
    as ``setup + classes * per_class`` by timing the same banded body
    across processor counts (the class count is the lcm of the moduli,
    here simply ``P``).

``implied_setup_ops`` / ``implied_class_ops``
    The fitted plan constants divided by ``flat_ns_per_op``.  These are
    much larger than ``_PLAN_SETUP_OPS`` / ``_PLAN_CLASS_OPS`` — the
    model's op counts are a *relative* unit, not a wall-clock predictor
    per op: a residue class costs hundreds of flat-op-equivalents of
    interpreter machinery (spec rebuilding, segment recursion), while a
    fallback loop iteration costs a fraction of one.  What makes the
    gate honest is the end-to-end conversion below.

``syr2k_paper``
    The calibration that the tier gate actually rests on: on the real
    banded kernel at paper scale (N=400, b=48), ``estimate_cost`` ops
    versus measured ``account`` wall per cell.  ``ns_per_estimated_op``
    is stable across processor counts (~0.4-0.6 us/op on the reference
    host), so ``SYMBOLIC_COST_CEILING`` — expressed in estimated ops —
    maps to a stable per-cell wall bound (~50-70 ms), placed just above
    the small-P regime where evaluating the banded form beats the
    closed-form engine's per-cell re-derivation.  Re-run this after
    evaluator changes; if ``ns_per_estimated_op`` shifts by more than
    ~2x, re-derive the ceiling from the new conversion.

The results land in the ``sympoly`` section of ``BENCH_simulator.json``
(everything else in the file is preserved; ``bench_trajectory.py``
likewise preserves this section when it re-records the sweeps).

Usage (from the repo root):

    PYTHONPATH=src python scripts/bench_sympoly.py
    PYTHONPATH=src python scripts/bench_sympoly.py --repeats 7 --dry-run
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench import syr2k_variants
from repro.linalg.sympoly import (
    _PLAN_CLASS_OPS,
    _PLAN_SETUP_OPS,
    _flat_ops,
    bounded_sum,
    floordiv,
    mod,
    pos,
    sym,
)
from repro.numa.simulator import SYMBOLIC_COST_CEILING
from repro.numa.symbolic import SymbolicEngine

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_simulator.json")


def _best_of(repeats, fn, *args):
    """Best wall clock of ``repeats`` runs (noise floor, not average)."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def measure_flat(repeats):
    """ns per flat op of a straight-line compiled form."""
    n, p, P = sym("n"), sym("p"), sym("P")
    expr = (
        3 * n * n
        + 2 * n * p
        + 5 * floordiv(n, P)
        + mod(n + p, P)
        + pos(n + (-7) * p)
        + mod(3 * n + 1, 4)
    )
    ops = _flat_ops(expr)
    fn = expr.compiled()
    env = {"n": 400, "p": 3, "P": 28}
    calls = 20000

    def run():
        for _ in range(calls):
            fn(env)

    best = _best_of(repeats, run)
    return best * 1e9 / (calls * ops), ops


def measure_loop(repeats):
    """ns per iteration of a compiled fallback residual loop.

    The quadratic bound-variable term disqualifies the residue-class
    planner (degree > 1 in the moving atom's argument is fine, but a
    squared loop variable in a monomial is not plan-eligible), so this
    times the plain fused loop with induction registers.
    """
    q = sym("q")
    expr = bounded_sum("q", sym("n"), q * q + mod(q, sym("P")) + 2)
    fn = expr.compiled()
    trips = 20000
    env = {"n": trips, "P": 7}

    def run():
        fn(env)

    best = _best_of(repeats, run)
    return best * 1e9 / trips


def measure_plan(repeats):
    """Fit ``_LoopPlan.run`` as setup + classes * per_class.

    The banded body's moduli are all ``P``, so the class count equals
    the processor count; a linear fit over P gives the two constants.
    """
    q, P = sym("q"), sym("P")
    body = 3 * mod(q, P) + 2 * floordiv(q, P) + pos(q + (-50)) + mod(q + 1, P)
    expr = bounded_sum("q", sym("n"), body)
    fn = expr.compiled()
    calls = 2000
    points = []
    for procs in (1, 4, 8, 16, 28):
        env = {"n": 100000, "P": procs}

        def run():
            for _ in range(calls):
                fn(env)

        best = _best_of(repeats, run)
        points.append((procs, best * 1e9 / calls))
    # Least-squares fit ns = setup + classes * per_class.
    count = len(points)
    sx = sum(x for x, _ in points)
    sy = sum(y for _, y in points)
    sxx = sum(x * x for x, _ in points)
    sxy = sum(x * y for x, y in points)
    denom = count * sxx - sx * sx
    per_class = (count * sxy - sx * sy) / denom
    setup = (sy - per_class * sx) / count
    return max(setup, 0.0), max(per_class, 0.0), points


def measure_syr2k(repeats):
    """End-to-end: estimate_cost ops vs account wall at paper scale."""
    node = syr2k_variants(400, 48)["syr2k"]
    engine = SymbolicEngine(node)
    env = node.program.bound_params(None)
    out = {}
    for procs in (1, 4, 28):
        estimate = engine.estimate_cost(env, procs)
        calls = 200

        def run():
            for proc in (0, procs - 1):
                for _ in range(calls):
                    engine.account(env, procs, proc)

        best = _best_of(repeats, run)
        wall_us = best * 1e6 / (2 * calls)
        out[str(procs)] = {
            "estimate_ops": estimate,
            "account_us": round(wall_us, 3),
            "ns_per_estimated_op": round(wall_us * 1000 / estimate, 3)
            if estimate
            else None,
        }
    return out


def run_benchmark(repeats):
    flat_ns, flat_ops = measure_flat(repeats)
    loop_ns = measure_loop(repeats)
    setup_ns, class_ns, points = measure_plan(repeats)
    syr2k = measure_syr2k(repeats)
    implied_setup = setup_ns / flat_ns if flat_ns else 0.0
    implied_class = class_ns / flat_ns if flat_ns else 0.0
    section = {
        "flat_ns_per_op": round(flat_ns, 3),
        "flat_probe_ops": flat_ops,
        "loop_ns_per_iter": round(loop_ns, 3),
        "plan_setup_ns": round(setup_ns, 1),
        "plan_ns_per_class": round(class_ns, 3),
        "plan_fit_points": [[p, round(ns, 1)] for p, ns in points],
        "implied_setup_ops": round(implied_setup, 1),
        "implied_class_ops": round(implied_class, 1),
        "model_setup_ops": _PLAN_SETUP_OPS,
        "model_class_ops": _PLAN_CLASS_OPS,
        "cost_ceiling_ops": SYMBOLIC_COST_CEILING,
        "syr2k_paper": syr2k,
    }
    print(f"flat evaluation: {flat_ns:.2f} ns/op ({flat_ops}-op probe)")
    print(f"fallback loop:   {loop_ns:.2f} ns/iter")
    print(
        f"residue plan:    {setup_ns:.0f} ns setup + {class_ns:.1f} ns/class "
        f"(implied flat-op-equivalents: setup {implied_setup:.0f}, class "
        f"{implied_class:.0f}; model weights {_PLAN_SETUP_OPS}/"
        f"{_PLAN_CLASS_OPS} are relative units)"
    )
    for procs, row in syr2k.items():
        print(
            f"syr2k paper P={procs}: estimate {row['estimate_ops']} ops, "
            f"account {row['account_us']} us/cell "
            f"({row['ns_per_estimated_op']} ns/op)"
        )
    ceiling_us = SYMBOLIC_COST_CEILING * flat_ns / 1000
    print(
        f"ceiling {SYMBOLIC_COST_CEILING} ops ~= {ceiling_us:.0f} us/cell "
        f"at the measured flat rate"
    )
    return section


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--dry-run", action="store_true",
        help="measure and print, but do not touch the JSON record",
    )
    args = parser.parse_args(argv)

    section = run_benchmark(args.repeats)
    if args.dry_run:
        return 0

    document = {}
    if os.path.exists(args.output):
        with open(args.output, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    document["sympoly"] = section
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote sympoly section of {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
