#!/usr/bin/env python
"""End-to-end smoke of the compilation service against a real daemon.

Starts ``repro serve`` as a subprocess, then:

1. drives ``repro submit`` compile/analyze/simulate round-trips and
   checks the output is byte-identical to the direct CLI for every
   shipped example (including ``compile --json``);
2. fires a burst of concurrent mixed compile/simulate requests (with
   deliberate duplicates), asserts every admitted request is answered,
   and that duplicate simulate requests collapsed to a single execution
   (``/metricsz`` dedup/hit counters);
3. sends SIGTERM mid-traffic and asserts a zero-drop graceful drain and
   a clean exit code.

Run from the repo root: ``python scripts/service_smoke.py [--burst 120]``.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=_env(), cwd=ROOT, timeout=300,
    )


def wait_healthy(client, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if client.health()["status"] == "ok":
                return
        except Exception:
            time.sleep(0.1)
    raise SystemExit("service never became healthy")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--burst", type=int, default=120,
                        help="concurrent mixed requests to fire")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    sys.path.insert(0, SRC)
    from repro.service.client import ServiceClient

    examples = sorted(glob.glob(os.path.join(ROOT, "examples/programs/*.an")))
    assert examples, "no shipped examples found"
    port = free_port()
    # Server logs go to a file, not a pipe: an unread pipe would fill and
    # block the daemon's stderr writes under heavy traffic.
    log_path = os.path.join(ROOT, ".service-smoke.log")
    log_file = open(log_path, "w", encoding="utf-8")
    serve = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), "--jobs", str(args.jobs),
            "--queue-limit", str(max(256, 2 * args.burst)),
        ],
        env=_env(), cwd=ROOT,
        stdout=subprocess.DEVNULL, stderr=log_file, text=True,
    )
    client = ServiceClient("127.0.0.1", port, timeout=120.0)
    failures = []
    try:
        wait_healthy(client)

        # --- 1. byte-identical submit vs direct CLI --------------------
        for path in examples:
            rel = os.path.relpath(path, ROOT)
            for extra in ([], ["--json"]):
                direct = run_cli("compile", rel, *extra)
                served = run_cli(
                    "submit", "compile", "--port", str(port), rel, *extra
                )
                if direct.returncode != 0 or served.returncode != 0:
                    failures.append(f"compile {rel} {extra}: nonzero exit")
                elif direct.stdout != served.stdout:
                    failures.append(f"compile {rel} {extra}: output drift")
            direct = run_cli("analyze", rel, "--json")
            served = run_cli(
                "submit", "analyze", "--port", str(port), rel, "--json"
            )
            if direct.stdout != served.stdout:
                failures.append(f"analyze {rel}: output drift")
        rel = os.path.relpath(examples[0], ROOT)
        direct = run_cli("simulate", rel, "-P", "1,4")
        served = run_cli(
            "submit", "simulate", "--port", str(port), rel, "-P", "1,4"
        )
        if direct.stdout != served.stdout:
            failures.append("simulate: output drift")
        print(f"byte-identity: {len(examples)} examples checked")

        # --- 2. concurrent mixed burst with duplicates -----------------
        source = open(examples[0], encoding="utf-8").read()
        before = client.metrics()["metrics"]["counters"]
        answered = []
        errors = []

        def fire(index: int) -> None:
            local = ServiceClient("127.0.0.1", port, timeout=120.0)
            try:
                if index % 2 == 0:
                    # Half the burst: only four distinct simulate cells.
                    response = local.simulate(
                        {"source": source, "processors": 2 + (index % 8) // 2}
                    )
                else:
                    response = local.compile(
                        {"source": source, "emit": "report"}
                    )
                answered.append(response["ok"])
            except Exception as error:  # noqa: BLE001
                errors.append(repr(error))

        threads = [
            threading.Thread(target=fire, args=(i,))
            for i in range(args.burst)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        if errors:
            failures.append(f"burst errors: {errors[:5]} (+{len(errors)-5 if len(errors) > 5 else 0} more)")
        if len(answered) != args.burst or not all(answered):
            failures.append(
                f"burst: {len(answered)}/{args.burst} answered ok"
            )
        after = client.metrics()["metrics"]["counters"]
        sim_requests = args.burst - args.burst // 2
        new_calls = after.get("simulate_calls", 0) - before.get("simulate_calls", 0)
        joined = sum(
            after.get(name, 0) - before.get(name, 0)
            for name in ("service.dedup_inflight", "dedup_hits", "cache_hits")
        )
        print(
            f"burst: {args.burst} requests, {new_calls} simulate executions, "
            f"{joined} deduplicated joins"
        )
        if new_calls > 4:
            failures.append(
                f"dedup failed: {new_calls} executions for 4 distinct cells"
            )
        if joined < sim_requests - 4:
            failures.append(
                f"dedup counters too low: {joined} < {sim_requests - 4}"
            )

        # --- 3. second identical request hits the cache ----------------
        client.simulate({"source": source, "processors": 27})
        warm_before = client.metrics()["metrics"]["counters"]
        client.simulate({"source": source, "processors": 27})
        warm_after = client.metrics()["metrics"]["counters"]
        warm_joins = sum(
            warm_after.get(n, 0) - warm_before.get(n, 0)
            for n in ("cache_hits", "dedup_hits", "service.dedup_inflight")
        )
        if warm_joins < 1:
            failures.append("second identical request did not hit the cache")
        print(f"warm repeat: {warm_joins} cache/dedup join(s)")

        # --- 4. graceful drain under in-flight traffic -----------------
        drain_results = []

        def slow_request() -> None:
            local = ServiceClient("127.0.0.1", port, timeout=120.0)
            response = local.compile({"source": source, "delay_ms": 1000})
            drain_results.append(response["ok"])

        slow = threading.Thread(target=slow_request)
        slow.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if client.health()["queue_depth"] >= 1:
                break
            time.sleep(0.02)
        serve.send_signal(signal.SIGTERM)
        slow.join(timeout=60)
        if drain_results != [True]:
            failures.append(
                f"drain dropped the in-flight request: {drain_results}"
            )
        else:
            print("drain: in-flight request completed during SIGTERM drain")
    finally:
        try:
            serve.send_signal(signal.SIGTERM)
        except ProcessLookupError:
            pass
        try:
            serve.wait(timeout=60)
        except subprocess.TimeoutExpired:
            serve.kill()
            serve.wait()
            failures.append("server did not exit after SIGTERM")
        log_file.close()
        err = open(log_path, encoding="utf-8").read()

    if serve.returncode not in (0, -signal.SIGTERM):
        failures.append(f"server exit code {serve.returncode}")
    drained = [
        json.loads(line)
        for line in err.splitlines()
        if line.startswith("{") and '"event"' in line
    ]
    events = [record["event"] for record in drained]
    if "drain_complete" not in events:
        failures.append(f"no drain_complete log event (saw {set(events)})")
    else:
        final = [r for r in drained if r["event"] == "drain_complete"][-1]
        if final.get("dropped"):
            failures.append(f"drain dropped {final['dropped']} request(s)")
        print(f"server exit {serve.returncode}, drain_complete dropped=0")

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
