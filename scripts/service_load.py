#!/usr/bin/env python
"""Load-generation harness for the compilation service and the fleet.

Drives concurrent mixed clients against (a) one ``repro serve`` replica
and (b) a ``repro fleet`` of router + N replicas, and records the
results into ``BENCH_service.json``.  Each topology gets its own fresh
disk-cache directory and runs the *same* request mixes, so the recorded
``fleet_vs_single_qps`` ratio is an apples-to-apples scale-out
measurement:

* **miss** — every request is a distinct simulation cell (a synthetic
  GEMM program swept over (N, P) pairs): pure cache-miss throughput;
* **mixed** — one third compiles, one third duplicate simulates from a
  four-cell pool, one third fresh simulates: the dedup/cache path;
* **kill** (fleet only) — replays cells whose canonical responses were
  recorded during the single-replica run, SIGKILLs one replica mid-load,
  and asserts zero client-visible errors and zero wrong answers (the
  router's retry-on-next-replica plus pure jobs make the kill invisible);
* **byte-identity** — ``repro submit`` output through the single replica
  AND through the router is compared byte-for-byte against the direct
  CLI;
* **drain** — both topologies are SIGTERMed with a request in flight and
  must finish it (``drain_complete`` with ``dropped=0`` in every log).

Summary schema (``repro-service-load/1``) — the key set is fixed and
independent of ``--concurrency``, replica count or job count, so CI
floors and downstream tooling never chase shape changes::

    {"schema": "repro-service-load/1",
     "scales": {"<scale>": {
        "cores": int,            # os.cpu_count() where the run happened
        "concurrency": int, "replicas": int,
        "single": {"miss": MIX, "mixed": MIX},
        "fleet":  {"miss": MIX, "mixed": MIX, "kill": KILL},
        "checks": {"byte_identity": bool,
                   "single_drain_dropped": int, "fleet_drain_dropped": int,
                   "kill_errors": int, "kill_wrong_answers": int},
        "fleet_vs_single_qps": float}}}   # miss-mix QPS ratio

    MIX  = {"requests": int, "errors": int, "qps": float,
            "p50_ms": float, "p99_ms": float,
            "dedup_rate": float, "cache_hit_rate": float}
    KILL = MIX + {"failovers": int}

Usage (from the repo root)::

    PYTHONPATH=src python scripts/service_load.py            # full scale
    PYTHONPATH=src python scripts/service_load.py --smoke    # CI scale
    PYTHONPATH=src python scripts/service_load.py --smoke --check

``--check`` re-runs the load at the selected scale and fails unless the
hard invariants hold (byte-identity, zero errors, zero dropped drains,
zero wrong answers under replica kill) and the fresh numbers clear
floors derived from the recorded JSON (QPS no lower than ``0.3x``
recorded, p99 no higher than ``5x`` recorded).  The fleet speedup gate
is core-aware: on a machine with >= 3 usable cores the fleet must beat
the single replica by >= 2x on the miss mix; on smaller machines (a
1-core container cannot physically scale out CPU-bound work) the fleet
must merely stay within ``0.5x`` of the single replica.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import math
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
DEFAULT_OUTPUT = os.path.join(ROOT, "BENCH_service.json")
SCHEMA = "repro-service-load/1"

#: Request-mix sizes per scale.  ``full`` drives thousands of requests;
#: ``smoke`` is sized for a CI job (single-digit minutes on 2-4 cores).
SCALES: Dict[str, Dict[str, int]] = {
    "full": {
        "concurrency": 64, "miss": 512, "mixed": 1536, "kill": 512,
        "replicas": 3,
    },
    "smoke": {
        "concurrency": 16, "miss": 48, "mixed": 96, "kill": 48,
        "replicas": 3,
    },
}

#: --check floors relative to the recorded numbers (generous: CI runners
#: and dev boxes differ widely; regressions this large are real).
QPS_FLOOR_FACTOR = 0.3
P99_CEIL_FACTOR = 5.0
#: Fleet-vs-single gates: with >= FLEET_GATE_MIN_CORES cores the fleet
#: must scale out; below that it must merely not collapse.
FLEET_GATE_MIN_CORES = 3
FLEET_RATIO_MULTICORE = 2.0
FLEET_RATIO_STARVED = 0.5

#: Synthetic cache-miss workload: one GEMM per N, swept over P.
GEMM_TEMPLATE = """
program loadgen{n}
param N = {n}
real C(N, N) distribute (*, wrapped)
real A(N, N) distribute (*, wrapped)
real B(N, N) distribute (*, wrapped)

for i = 0, N-1
    for j = 0, N-1
        for k = 0, N-1
            C[i, j] = C[i, j] + A[i, k] * B[k, j]
"""

#: Counter names whose deltas count as "this request joined earlier
#: work" — split into dedup (in-flight) and cache (completed) families.
DEDUP_COUNTERS = ("service.dedup_inflight", "dedup_hits",
                  "router.dedup_inflight")
CACHE_COUNTERS = ("cache_hits",)


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=_env(), cwd=ROOT, timeout=300,
    )


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def mix_stats(
    requests: int,
    errors: int,
    latencies_ms: List[float],
    wall_s: float,
    counter_deltas: Dict[str, int],
) -> Dict[str, Any]:
    """One request-mix summary with the fixed MIX key set."""
    dedup = sum(counter_deltas.get(name, 0) for name in DEDUP_COUNTERS)
    cached = sum(counter_deltas.get(name, 0) for name in CACHE_COUNTERS)
    return {
        "requests": requests,
        "errors": errors,
        "qps": round(requests / wall_s, 2) if wall_s > 0 else 0.0,
        "p50_ms": round(percentile(latencies_ms, 0.50), 2),
        "p99_ms": round(percentile(latencies_ms, 0.99), 2),
        "dedup_rate": round(dedup / requests, 4) if requests else 0.0,
        "cache_hit_rate": round(cached / requests, 4) if requests else 0.0,
    }


def build_summary(
    scale: str,
    cores: int,
    concurrency: int,
    replicas: int,
    single: Dict[str, Dict[str, Any]],
    fleet: Dict[str, Dict[str, Any]],
    checks: Dict[str, Any],
) -> Dict[str, Any]:
    """The per-scale summary document.  Pure, importable, and the single
    place the schema is produced — tests pin its key set here."""
    single_qps = single["miss"]["qps"]
    ratio = fleet["miss"]["qps"] / single_qps if single_qps else 0.0
    return {
        "cores": cores,
        "concurrency": concurrency,
        "replicas": replicas,
        "single": {"miss": single["miss"], "mixed": single["mixed"]},
        "fleet": {
            "miss": fleet["miss"],
            "mixed": fleet["mixed"],
            "kill": fleet["kill"],
        },
        "checks": {
            "byte_identity": bool(checks["byte_identity"]),
            "single_drain_dropped": int(checks["single_drain_dropped"]),
            "fleet_drain_dropped": int(checks["fleet_drain_dropped"]),
            "kill_errors": int(checks["kill_errors"]),
            "kill_wrong_answers": int(checks["kill_wrong_answers"]),
        },
        "fleet_vs_single_qps": round(ratio, 3),
    }


# ----------------------------------------------------------------------
# workload construction
# ----------------------------------------------------------------------
def miss_cells(count: int) -> List[Tuple[str, int]]:
    """``count`` distinct (source, processors) simulation cells."""
    cells = []
    n = 8
    while len(cells) < count:
        for p in range(2, 14):
            cells.append((GEMM_TEMPLATE.format(n=n), p))
            if len(cells) == count:
                break
        n += 1
    return cells


def mixed_ops(count: int, base_source: str) -> List[Tuple[str, dict]]:
    """compile / duplicate-simulate / fresh-simulate round robin."""
    pool = [(GEMM_TEMPLATE.format(n=100 + i), 4) for i in range(4)]
    fresh = miss_cells(count)  # overlaps the miss mix: warm-cache traffic
    ops = []
    for index in range(count):
        if index % 3 == 0:
            ops.append(("compile", {"source": base_source, "emit": "report"}))
        elif index % 3 == 1:
            source, procs = pool[index % len(pool)]
            ops.append(("simulate", {"source": source, "processors": procs}))
        else:
            source, procs = fresh[index]
            ops.append(("simulate", {"source": source, "processors": procs}))
    return ops


# ----------------------------------------------------------------------
# topologies
# ----------------------------------------------------------------------
class Topology:
    """A running service endpoint (single replica or fleet router)."""

    def __init__(self, name: str, port: int) -> None:
        from repro.service.client import ServiceClient

        self.name = name
        self.port = port
        self.client = ServiceClient("127.0.0.1", port, timeout=120.0)

    def wait_healthy(self, timeout: float = 60.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if self.client.health()["status"] in ("ok", "draining"):
                    return
            except Exception:
                pass
            time.sleep(0.1)
        raise SystemExit(f"{self.name}: never became healthy on :{self.port}")

    def counters(self) -> Dict[str, int]:
        snapshot = self.client.metrics()
        merged = dict(snapshot["metrics"]["counters"])
        router = snapshot.get("router", {})
        for name, value in (
            router.get("metrics", {}).get("counters", {}).items()
        ):
            merged[name] = merged.get(name, 0) + value
        return merged


def start_single(cache_dir: str, log_path: str, queue_limit: int):
    port = free_port()
    log_file = open(log_path, "w", encoding="utf-8")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", str(port),
            "--jobs", "1", "--queue-limit", str(queue_limit),
            "--cache-dir", cache_dir,
        ],
        env=_env(), cwd=ROOT, stdout=subprocess.DEVNULL, stderr=log_file,
    )
    log_file.close()
    topology = Topology("single", port)
    topology.wait_healthy()
    return process, topology


def start_fleet(
    cache_dir: str, log_dir: str, state_path: str,
    queue_limit: int, replicas: int,
):
    port = free_port()
    log_path = os.path.join(log_dir, "fleet.log")
    log_file = open(log_path, "w", encoding="utf-8")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "fleet", "--port", str(port),
            "--replicas", str(replicas), "--jobs", "1",
            "--queue-limit", str(queue_limit), "--cache-dir", cache_dir,
            "--log-dir", log_dir, "--state-file", state_path,
            "--quiet",
        ],
        env=_env(), cwd=ROOT, stdout=subprocess.DEVNULL, stderr=log_file,
    )
    log_file.close()
    topology = Topology("fleet", port)
    topology.wait_healthy(timeout=90.0)
    deadline = time.monotonic() + 30
    while not os.path.exists(state_path) and time.monotonic() < deadline:
        time.sleep(0.1)
    with open(state_path, encoding="utf-8") as handle:
        state = json.load(handle)
    return process, topology, state


def stop_process(process: subprocess.Popen, name: str,
                 failures: List[str]) -> None:
    try:
        process.send_signal(signal.SIGTERM)
    except ProcessLookupError:
        pass
    try:
        process.wait(timeout=90)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()
        failures.append(f"{name}: did not exit after SIGTERM")


def drained_dropped(log_paths: List[str], failures: List[str],
                    name: str) -> int:
    """Total ``dropped`` across every drain_complete event, requiring at
    least one such event per log."""
    total = 0
    for path in log_paths:
        events = []
        try:
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    if line.startswith("{") and '"event"' in line:
                        events.append(json.loads(line))
        except FileNotFoundError:
            failures.append(f"{name}: missing log {path}")
            continue
        finals = [e for e in events if e.get("event") == "drain_complete"]
        if not finals:
            failures.append(f"{name}: no drain_complete in {path}")
            continue
        total += int(finals[-1].get("dropped", 0))
    return total


# ----------------------------------------------------------------------
# load phases
# ----------------------------------------------------------------------
def drive(
    topology: Topology,
    tasks: List[Callable[[Any], Dict[str, Any]]],
    concurrency: int,
    on_response: Optional[Callable[[int, Dict[str, Any]], None]] = None,
    mid_load: Optional[Callable[[], None]] = None,
) -> Tuple[int, List[float], float, Dict[str, int], List[str]]:
    """Run ``tasks`` through a thread pool of per-thread clients.

    Returns (errors, latencies_ms, wall_s, counter_deltas, messages).
    """
    from repro.service.client import ServiceClient

    before = topology.counters()
    local = threading.local()
    lock = threading.Lock()
    latencies: List[float] = []
    messages: List[str] = []
    errors = 0

    def worker(index: int) -> None:
        nonlocal errors
        client = getattr(local, "client", None)
        if client is None:
            client = local.client = ServiceClient(
                "127.0.0.1", topology.port, timeout=120.0, retries=3,
                backoff_base_s=0.05,
            )
        begin = time.monotonic()
        try:
            response = tasks[index](client)
        except Exception as error:  # noqa: BLE001
            with lock:
                errors += 1
                if len(messages) < 5:
                    messages.append(f"request {index}: {error!r}")
            return
        elapsed_ms = (time.monotonic() - begin) * 1000.0
        with lock:
            latencies.append(elapsed_ms)
        if on_response is not None:
            on_response(index, response)

    start = time.monotonic()
    with concurrent.futures.ThreadPoolExecutor(concurrency) as pool:
        futures = [pool.submit(worker, i) for i in range(len(tasks))]
        if mid_load is not None:
            # Fire once a third of the load has completed: requests are
            # genuinely in flight when the replica dies.
            while sum(f.done() for f in futures) < len(futures) // 3:
                time.sleep(0.01)
            mid_load()
        concurrent.futures.wait(futures)
    wall = time.monotonic() - start
    after = topology.counters()
    deltas = {
        name: after.get(name, 0) - before.get(name, 0)
        for name in set(before) | set(after)
    }
    return errors, latencies, wall, deltas, messages


def run_miss_phase(topology, cells, concurrency, record=None):
    tasks = [
        (lambda client, s=source, p=procs:
         client.simulate({"source": s, "processors": p}))
        for source, procs in cells
    ]

    def keep(index: int, response: Dict[str, Any]) -> None:
        if record is not None:
            record[cells[index]] = response.get("result")

    errors, latencies, wall, deltas, messages = drive(
        topology, tasks, concurrency,
        on_response=keep if record is not None else None,
    )
    return mix_stats(len(tasks), errors, latencies, wall, deltas), messages


def run_mixed_phase(topology, ops, concurrency):
    tasks = [
        (lambda client, o=op, p=payload: client.submit(o, p))
        for op, payload in ops
    ]
    errors, latencies, wall, deltas, messages = drive(
        topology, tasks, concurrency
    )
    return mix_stats(len(ops), errors, latencies, wall, deltas), messages


def run_kill_phase(topology, state, canonical, count, concurrency):
    """Replay canonical cells against the fleet, SIGKILL one replica
    mid-load, and demand zero errors and zero wrong answers."""
    cells = list(canonical)
    tasks = []
    for index in range(count):
        source, procs = cells[index % len(cells)]
        tasks.append(
            lambda client, s=source, p=procs:
            client.simulate({"source": s, "processors": p})
        )
    wrong = []
    lock = threading.Lock()

    def check(index: int, response: Dict[str, Any]) -> None:
        cell = cells[index % len(cells)]
        if response.get("result") != canonical[cell]:
            with lock:
                wrong.append(cell)

    victim = state["replicas"][0]

    def kill() -> None:
        try:
            os.kill(victim["pid"], signal.SIGKILL)
        except ProcessLookupError:
            pass

    errors, latencies, wall, deltas, messages = drive(
        topology, tasks, concurrency, on_response=check, mid_load=kill,
    )
    stats = mix_stats(count, errors, latencies, wall, deltas)
    stats["failovers"] = int(deltas.get("router.failovers", 0))
    return stats, len(wrong), messages


def check_byte_identity(ports: List[int], failures: List[str]) -> bool:
    """``repro submit`` through every port must match the direct CLI."""
    example = os.path.join("examples", "programs", "figure1.an")
    cases = [
        ("compile", [example]),
        ("compile", [example, "--json"]),
        ("simulate", [example, "-P", "1,4"]),
    ]
    ok = True
    for command, extra in cases:
        direct = run_cli(command, *extra)
        if direct.returncode != 0:
            failures.append(f"direct {command} {extra}: exit "
                            f"{direct.returncode}")
            ok = False
            continue
        for port in ports:
            served = run_cli(
                "submit", command, "--port", str(port), *extra
            )
            if served.returncode != direct.returncode:
                failures.append(
                    f"submit {command} via :{port}: exit "
                    f"{served.returncode} != {direct.returncode}"
                )
                ok = False
            elif served.stdout != direct.stdout:
                failures.append(
                    f"submit {command} {extra} via :{port}: output drift"
                )
                ok = False
    return ok


def drain_with_inflight(topology, process, log_paths, failures, name):
    """SIGTERM the topology with a slow request in flight; it must
    finish, and every log must report a zero-drop drain."""
    from repro.service.client import ServiceClient

    outcome: List[bool] = []

    def slow() -> None:
        client = ServiceClient(
            "127.0.0.1", topology.port, timeout=120.0
        )
        try:
            response = client.compile(
                {"source": GEMM_TEMPLATE.format(n=8), "delay_ms": 1000}
            )
            outcome.append(bool(response.get("ok")))
        except Exception:  # noqa: BLE001
            outcome.append(False)

    thread = threading.Thread(target=slow)
    thread.start()
    time.sleep(0.3)  # let the request get admitted
    stop_process(process, name, failures)
    thread.join(timeout=90)
    if outcome != [True]:
        failures.append(f"{name}: in-flight request dropped during drain "
                        f"({outcome})")
    return drained_dropped(log_paths, failures, name)


# ----------------------------------------------------------------------
# main
# ----------------------------------------------------------------------
def run_scale(scale: str, concurrency_override: Optional[int],
              verbose: bool = True):
    params = SCALES[scale]
    concurrency = concurrency_override or params["concurrency"]
    replicas = params["replicas"]
    queue_limit = max(256, 4 * concurrency)
    failures: List[str] = []
    checks: Dict[str, Any] = {}
    canonical: Dict[Tuple[str, int], Any] = {}

    def note(message: str) -> None:
        if verbose:
            print(message, file=sys.stderr)

    cells = miss_cells(params["miss"])
    base_source = GEMM_TEMPLATE.format(n=8)
    mixes = mixed_ops(params["mixed"], base_source)
    with tempfile.TemporaryDirectory(prefix="repro-load-") as workdir:
        # ---------------- single replica ------------------------------
        single_cache = os.path.join(workdir, "cache-single")
        single_log = os.path.join(workdir, "single.log")
        process, single = start_single(single_cache, single_log, queue_limit)
        note(f"single replica up on :{single.port}")
        single_stats: Dict[str, Any] = {}
        try:
            single_stats["miss"], errs = run_miss_phase(
                single, cells, concurrency, record=canonical
            )
            failures.extend(f"single/miss: {m}" for m in errs)
            note(f"single/miss: {single_stats['miss']['qps']} qps, "
                 f"p99 {single_stats['miss']['p99_ms']} ms")
            single_stats["mixed"], errs = run_mixed_phase(
                single, mixes, concurrency
            )
            failures.extend(f"single/mixed: {m}" for m in errs)
            note(f"single/mixed: {single_stats['mixed']['qps']} qps, "
                 f"dedup {single_stats['mixed']['dedup_rate']}, "
                 f"cache {single_stats['mixed']['cache_hit_rate']}")
            byte_single = check_byte_identity([single.port], failures)
        finally:
            checks["single_drain_dropped"] = drain_with_inflight(
                single, process, [single_log], failures, "single"
            )
        note("single replica drained")

        # ---------------- fleet --------------------------------------
        fleet_cache = os.path.join(workdir, "cache-fleet")
        fleet_logs = os.path.join(workdir, "fleet-logs")
        os.makedirs(fleet_logs)
        state_path = os.path.join(workdir, "fleet-state.json")
        process, fleet, state = start_fleet(
            fleet_cache, fleet_logs, state_path, queue_limit, replicas
        )
        note(f"fleet up on :{fleet.port} "
             f"({len(state['replicas'])} replicas)")
        fleet_stats: Dict[str, Any] = {}
        try:
            fleet_stats["miss"], errs = run_miss_phase(
                fleet, cells, concurrency
            )
            failures.extend(f"fleet/miss: {m}" for m in errs)
            note(f"fleet/miss: {fleet_stats['miss']['qps']} qps, "
                 f"p99 {fleet_stats['miss']['p99_ms']} ms")
            fleet_stats["mixed"], errs = run_mixed_phase(
                fleet, mixes, concurrency
            )
            failures.extend(f"fleet/mixed: {m}" for m in errs)
            byte_fleet = check_byte_identity([fleet.port], failures)
            fleet_stats["kill"], wrong, errs = run_kill_phase(
                fleet, state, canonical, params["kill"], concurrency
            )
            failures.extend(f"fleet/kill: {m}" for m in errs)
            checks["kill_errors"] = fleet_stats["kill"]["errors"]
            checks["kill_wrong_answers"] = wrong
            note(f"fleet/kill: {fleet_stats['kill']['errors']} errors, "
                 f"{wrong} wrong answers, "
                 f"{fleet_stats['kill']['failovers']} failovers")
        finally:
            survivor_logs = [
                replica["log"] for replica in state["replicas"][1:]
            ]
            checks["fleet_drain_dropped"] = drain_with_inflight(
                fleet, process, survivor_logs, failures, "fleet"
            )
        note("fleet drained")

    checks["byte_identity"] = byte_single and byte_fleet
    summary = build_summary(
        scale, os.cpu_count() or 1, concurrency, replicas,
        single_stats, fleet_stats, checks,
    )
    return summary, failures


def hard_invariants(summary: Dict[str, Any]) -> List[str]:
    """The machine-independent gates every run must pass."""
    problems = []
    checks = summary["checks"]
    if not checks["byte_identity"]:
        problems.append("byte-identity violated")
    for key in ("single_drain_dropped", "fleet_drain_dropped",
                "kill_errors", "kill_wrong_answers"):
        if checks[key]:
            problems.append(f"{key} = {checks[key]} (want 0)")
    for topology in ("single", "fleet"):
        for mix, stats in summary[topology].items():
            if stats["errors"]:
                problems.append(
                    f"{topology}/{mix}: {stats['errors']} errors"
                )
    return problems


def check_against(recorded: Dict[str, Any],
                  fresh: Dict[str, Any]) -> List[str]:
    """Perf floors: fresh numbers vs the recorded trajectory."""
    problems = []
    for topology in ("single", "fleet"):
        fresh_miss = fresh[topology]["miss"]
        recorded_miss = recorded[topology]["miss"]
        floor = QPS_FLOOR_FACTOR * recorded_miss["qps"]
        if fresh_miss["qps"] < floor:
            problems.append(
                f"{topology}/miss qps {fresh_miss['qps']} < floor "
                f"{floor:.1f} (recorded {recorded_miss['qps']})"
            )
        ceiling = P99_CEIL_FACTOR * recorded_miss["p99_ms"]
        if recorded_miss["p99_ms"] and fresh_miss["p99_ms"] > ceiling:
            problems.append(
                f"{topology}/miss p99 {fresh_miss['p99_ms']} ms > ceiling "
                f"{ceiling:.1f} (recorded {recorded_miss['p99_ms']})"
            )
    ratio = fresh["fleet_vs_single_qps"]
    if fresh["cores"] >= FLEET_GATE_MIN_CORES:
        if ratio < FLEET_RATIO_MULTICORE:
            problems.append(
                f"fleet_vs_single_qps {ratio} < {FLEET_RATIO_MULTICORE} "
                f"on a {fresh['cores']}-core machine"
            )
    elif ratio < FLEET_RATIO_STARVED:
        problems.append(
            f"fleet_vs_single_qps {ratio} < {FLEET_RATIO_STARVED} even on "
            f"a starved {fresh['cores']}-core machine"
        )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(
        description="drive load against repro serve and repro fleet"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale instead of full scale")
    parser.add_argument("--check", action="store_true",
                        help="compare a fresh run against the recorded "
                        "BENCH_service.json instead of rewriting it")
    parser.add_argument("--json", action="store_true",
                        help="print the fresh summary JSON to stdout")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="override the scale's client concurrency")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    scale = "smoke" if args.smoke else "full"

    sys.path.insert(0, SRC)
    summary, failures = run_scale(scale, args.concurrency)
    failures.extend(hard_invariants(summary))

    if args.check:
        try:
            with open(args.output, encoding="utf-8") as handle:
                recorded = json.load(handle)["scales"][scale]
        except (FileNotFoundError, KeyError):
            failures.append(
                f"no recorded '{scale}' scale in {args.output}; "
                "regenerate it without --check first"
            )
        else:
            failures.extend(check_against(recorded, summary))
    else:
        document = {"schema": SCHEMA,
                    "generated_with": "scripts/service_load.py",
                    "scales": {}}
        if os.path.exists(args.output):
            try:
                with open(args.output, encoding="utf-8") as handle:
                    existing = json.load(handle)
                if existing.get("schema") == SCHEMA:
                    document["scales"].update(existing.get("scales", {}))
            except (json.JSONDecodeError, OSError):
                pass
        document["scales"][scale] = summary
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {os.path.relpath(args.output, ROOT)} "
              f"[{scale}]", file=sys.stderr)

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"service load [{scale}]: all checks passed "
          f"(fleet_vs_single_qps={summary['fleet_vs_single_qps']}, "
          f"cores={summary['cores']})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
