#!/usr/bin/env python
"""Benchmark the accounting-tier trajectory on the paper's kernels.

Times the account-mode sweeps behind Figure 4 (GEMM) and Figure 5 (banded
SYR2K) three times — with the interpreter walk forced (tier 3), with the
symbolic engine forced (tier 0: derive each program's piecewise form
once, evaluate it per cell), and with automatic tier selection — and
writes ``BENCH_simulator.json`` with per-config wall-clock, the tier
histogram of the auto run, and a checksum over every per-processor
count.  All runs must produce identical checksums (the tiers are
bit-identical by construction; this script hard fails otherwise), so the
recorded speedups are purely an engine effect.  The forced-symbolic run
is the derive-once-evaluate-many measurement: one derivation per node
program serves every (N, P) cell of the sweep.

Everything simulated here is deterministic — there is no randomness to
seed — and the JSON carries no wall-clock timestamps beyond the optional
``SOURCE_DATE_EPOCH`` stamp, so regenerating at the same scale changes
only the timing fields.

Usage (from the repo root):

    PYTHONPATH=src python scripts/bench_trajectory.py           # paper scale
    PYTHONPATH=src python scripts/bench_trajectory.py --smoke   # CI scale
    PYTHONPATH=src python scripts/bench_trajectory.py --smoke --check

``--check`` re-measures symbolic and analytic coverage (at whatever
scale is selected) and fails if either drops below the value recorded in
the JSON — the CI ``perf-smoke`` job runs this so a change that silently
demotes the paper kernels off the symbolic (or any analytic) engine
cannot land.  Two fresh (record-independent) gates ride along: the
banded SYR2K sweep must keep nonzero symbolic coverage, and auto's
sweep wall must not exceed the forced walk's in the same run (enforced
only when the walk took long enough for one-time derivation costs to
amortize; vacuous at smoke scale).

The ``tune`` section records the transformation autotuner on the same
two kernels: candidates explored under the budget, search wall clock,
and the best found schedule validated at *full* kernel scale against the
paper's hand-picked transformation (``best_vs_paper <= 1`` means the
search matched or beat the paper).  ``--check`` gates both properties:
at least 100 legality-pruned candidates explored, and the best schedule
no slower than the paper's.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench import PAPER_PROCS, gemm_variants, syr2k_variants
from repro.bench.figures import figure_machine
from repro.runtime.cache import SimulationCache, shared_cache
from repro.runtime.executor import SweepCell, run_grid
from repro.runtime.metrics import Metrics

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_simulator.json")

#: The measured configurations: the account-mode sweeps behind the
#: paper's two results figures, at paper scale and at a CI smoke scale.
SCALES = {
    "paper": {
        "fig4-gemm": {"kind": "gemm", "n": 400, "procs": list(PAPER_PROCS)},
        "fig5-syr2k": {
            "kind": "syr2k", "n": 400, "b": 48, "procs": list(PAPER_PROCS)
        },
    },
    "smoke": {
        "fig4-gemm": {"kind": "gemm", "n": 64, "procs": [1, 4, 8]},
        "fig5-syr2k": {
            "kind": "syr2k", "n": 80, "b": 10, "procs": [1, 4, 8]
        },
    },
}


#: The autotuner benchmark: search with scoring at a scaled-down size
#: (the relative ranking is what matters), then validate the top
#: candidates and the paper baseline at full kernel scale.
TUNE_SCALES = {
    "paper": {
        # 216 distribution assignments per kernel: a 250 budget covers
        # the full derived pass and then explores exotic recipes (row
        # subsets, skews, scalings), exercising the legality pruner.
        "fig4-gemm": {
            "kind": "gemm", "n": 400, "score": {"N": 24},
            "procs": [4, 16], "budget": 250, "top_k": 3,
        },
        "fig5-syr2k": {
            "kind": "syr2k", "n": 400, "b": 48, "score": {"N": 24, "b": 3},
            "procs": [4, 16], "budget": 250, "top_k": 3,
        },
    },
    "smoke": {
        "fig4-gemm": {
            "kind": "gemm", "n": 64, "score": {"N": 16},
            "procs": [4, 16], "budget": 120, "top_k": 3,
        },
        "fig5-syr2k": {
            "kind": "syr2k", "n": 80, "b": 10, "score": {"N": 16, "b": 2},
            "procs": [4, 16], "budget": 120, "top_k": 3,
        },
    },
}

#: The ``--check`` floors for the tune section (the PR's acceptance
#: criteria): candidates explored per kernel, and how the best found
#: schedule may compare to the paper's hand-picked one at full scale.
TUNE_MIN_EXPLORED = 100
TUNE_MAX_VS_PAPER = 1.0005  # exact tie expected; tiny float headroom

#: The auto-vs-walk wall bound in ``--check`` only applies when the
#: forced walk itself took at least this long: below it (CI smoke
#: scale) the sweep is dominated by the analytic tiers' one-time
#: derivation cost and the comparison carries no signal.
WALL_GATE_MIN_WALK_S = 2.0


def _variants(config):
    if config["kind"] == "gemm":
        return gemm_variants(config["n"])
    return syr2k_variants(config["n"], config["b"])


def _cells(nodes, procs, machine, engine):
    cells = []
    for processors in procs:
        for name, node in nodes.items():
            cells.append(
                SweepCell(name, node, processors, None, machine, engine=engine)
            )
    return cells


def _checksum(results):
    digest = hashlib.sha256()
    for result in results:
        for proc in result.per_proc:
            counts = proc.counts
            digest.update(
                json.dumps(
                    [
                        counts.local, counts.remote, counts.block_transfers,
                        counts.block_bytes, counts.guards, counts.statements,
                        counts.iterations, counts.syncs,
                    ]
                ).encode("ascii")
            )
    return digest.hexdigest()


def _measure(config, engine, jobs):
    """One timed sweep with an isolated cache (no cross-engine hits).

    The process-wide shared cache (symbolic forms, compiled kernels) is
    cleared first so every measurement pays its own derivation cost —
    the forced-symbolic wall clock really is "derive once, then evaluate
    every cell", not "evaluate forms a previous run derived".
    """
    shared_cache().clear()
    nodes = _variants(config)
    machine = figure_machine()
    cells = _cells(nodes, config["procs"], machine, engine)
    metrics = Metrics()
    start = time.perf_counter()
    results = run_grid(
        cells, jobs=jobs, cache=SimulationCache(), metrics=metrics
    )
    wall = time.perf_counter() - start
    tiers = {
        name[len("sim.tier."):]: value
        for name, value in metrics.counters.items()
        if name.startswith("sim.tier.")
    }
    return {
        "wall_s": round(wall, 4),
        "tiers": tiers,
        "cells": len(cells),
        "checksum": _checksum(results),
    }


def _tune_full_program(config):
    from repro.blas import gemm_program, syr2k_program

    if config["kind"] == "gemm":
        return gemm_program(config["n"]), None
    from repro.blas import PAPER_PRIORITY

    return (
        syr2k_program(config["n"], config["b"]),
        list(PAPER_PRIORITY),
    )


def _validate_candidate(program, candidate, procs, machine):
    """Simulated time of one tuner candidate at *full* kernel scale."""
    from repro.codegen.spmd import generate_spmd
    from repro.core.transform import apply_transformation
    from repro.numa.simulator import simulate
    from repro.tune.search import _trial_program

    trial = _trial_program(program, candidate.distributions, None)
    transformation = apply_transformation(
        trial.nest, candidate.matrix,
        assumptions=tuple(trial.assumptions),
    )
    node = generate_spmd(trial.with_nest(transformation.nest))
    times = {
        str(p): simulate(node, processors=p, machine=machine).total_time_us
        for p in procs
    }
    return times, sum(times.values())


def _measure_tune(config, jobs):
    """Run the autotuner on one kernel and validate at full scale."""
    from repro.codegen.spmd import generate_spmd
    from repro.core.normalize import access_normalize
    from repro.numa.simulator import simulate
    from repro.tune.search import tune_program

    shared_cache().clear()
    program, priority = _tune_full_program(config)
    machine = figure_machine()
    procs = config["procs"]
    start = time.perf_counter()
    result = tune_program(
        program,
        processors=tuple(procs),
        machine=machine,
        params=config["score"],
        priority=priority,
        budget=config["budget"],
        jobs=jobs,
    )
    wall = time.perf_counter() - start

    # The paper's configuration at full scale: declared distributions,
    # derived transformation.
    paper_node = generate_spmd(
        access_normalize(program, priority=priority).transformed
    )
    paper_times = {
        str(p): simulate(
            paper_node, processors=p, machine=machine
        ).total_time_us
        for p in procs
    }
    paper_total = sum(paper_times.values())

    best_entry = None
    for candidate in result.ranking[: config["top_k"]]:
        times, total = _validate_candidate(program, candidate, procs, machine)
        if best_entry is None or total < best_entry["total_us"]:
            best_entry = {
                "rank_at_score_scale": result.ranking.index(candidate) + 1,
                "distributions": candidate.describe_distributions(),
                "recipe": candidate.recipe.describe(),
                "matrix": candidate.describe_matrix(),
                "times_us": times,
                "total_us": total,
            }
    return {
        "score_params": dict(config["score"]),
        "processors": list(procs),
        "budget": config["budget"],
        "explored": result.enumerated,
        "admitted": result.admitted,
        "scored": result.scored,
        "pruned": len(result.pruned),
        "wall_s": round(wall, 4),
        "best": best_entry,
        "paper_times_us": paper_times,
        "paper_total_us": paper_total,
        "best_vs_paper": (
            round(best_entry["total_us"] / paper_total, 4)
            if best_entry and paper_total
            else None
        ),
    }


def run_benchmark(scale, jobs):
    document = {
        "schema": 1,
        "scale": scale,
        "source_date_epoch": int(os.environ.get("SOURCE_DATE_EPOCH", "0")),
        "configs": {},
    }
    for name, config in SCALES[scale].items():
        walk = _measure(config, "walk", jobs)
        auto = _measure(config, "auto", jobs)
        symbolic = _measure(config, "symbolic", jobs)
        for label, run in (("auto", auto), ("symbolic", symbolic)):
            if walk["checksum"] != run["checksum"]:
                raise SystemExit(
                    f"{name}: {label} results diverge from the walk engine "
                    f"({run['checksum']} vs {walk['checksum']})"
                )
        cells = auto["cells"]
        symbolic_cells = auto["tiers"].get("symbolic", 0)
        analytic_cells = symbolic_cells + auto["tiers"].get("closed_form", 0)
        symbolic_coverage = symbolic_cells / cells if cells else 0.0
        coverage = analytic_cells / cells if cells else 0.0
        speedup = walk["wall_s"] / auto["wall_s"] if auto["wall_s"] else 0.0
        symbolic_speedup = (
            walk["wall_s"] / symbolic["wall_s"] if symbolic["wall_s"] else 0.0
        )
        document["configs"][name] = {
            "params": {k: v for k, v in config.items() if k != "kind"},
            "counts_checksum": auto["checksum"],
            "engines": {
                "walk": {"wall_s": walk["wall_s"], "tiers": walk["tiers"]},
                "auto": {"wall_s": auto["wall_s"], "tiers": auto["tiers"]},
                "symbolic": {
                    "wall_s": symbolic["wall_s"], "tiers": symbolic["tiers"]
                },
            },
            "speedup_vs_walk": round(speedup, 2),
            "symbolic_speedup_vs_walk": round(symbolic_speedup, 2),
            "tier1_coverage": round(coverage, 4),
            "symbolic_coverage": round(symbolic_coverage, 4),
        }
        print(
            f"{name}: walk {walk['wall_s']:.3f}s -> auto {auto['wall_s']:.3f}s "
            f"({speedup:.1f}x; forced symbolic {symbolic['wall_s']:.3f}s, "
            f"{symbolic_speedup:.1f}x), symbolic coverage "
            f"{symbolic_coverage:.0%}, analytic coverage {coverage:.0%}"
        )
    document["tune"] = {}
    for name, config in TUNE_SCALES[scale].items():
        section = _measure_tune(config, jobs)
        document["tune"][name] = section
        ratio = section["best_vs_paper"]
        print(
            f"{name}: tune explored {section['explored']} candidates "
            f"({section['scored']} scored, {section['pruned']} pruned) in "
            f"{section['wall_s']:.1f}s; best vs paper at full scale: "
            f"{ratio:.4f}x"
        )
    return document


def check_coverage(document, recorded_path):
    """Fail if symbolic or analytic coverage dropped below the record."""
    with open(recorded_path, "r", encoding="utf-8") as handle:
        recorded = json.load(handle)
    failures = []
    for name, fresh in document["configs"].items():
        baseline = recorded.get("configs", {}).get(name)
        if baseline is None:
            continue
        for metric, label in (
            ("tier1_coverage", "analytic coverage"),
            ("symbolic_coverage", "symbolic coverage"),
        ):
            floor = baseline.get(metric)
            if floor is None:
                continue  # pre-symbolic record: nothing to hold
            if fresh[metric] < floor:
                failures.append(
                    f"{name}: {label} {fresh[metric]:.0%} "
                    f"dropped below recorded {floor:.0%}"
                )
    # The banded-nest acceptance criterion measured fresh, not against
    # the record: auto must answer some of the SYR2K sweep from the
    # symbolic tier (residue-class forms make tier 0 win on banded
    # nests; a cost-model change that silently demotes them all fails
    # here even if the recorded JSON predates the criterion).
    syr2k = document["configs"].get("fig5-syr2k")
    if syr2k is not None and syr2k["symbolic_coverage"] <= 0:
        failures.append(
            "fig5-syr2k: symbolic coverage is 0 — auto answers no banded "
            "cell from the symbolic tier"
        )
    # Machine-independent wall bound, also measured fresh: within one
    # run, auto must never be slower than the walk it tiers above (a
    # mis-calibrated promotion gate shows up here without needing a
    # host-comparable recorded wall clock).  Only enforced when the
    # walk is slow enough for the analytic tiers' one-time derivation
    # cost to amortize — at CI smoke scale the whole walk finishes in
    # tens of milliseconds and any engine with fixed setup "loses",
    # which would make the bound pure noise.
    for name, fresh in document["configs"].items():
        auto_wall = fresh["engines"]["auto"]["wall_s"]
        walk_wall = fresh["engines"]["walk"]["wall_s"]
        if walk_wall >= WALL_GATE_MIN_WALK_S and auto_wall > walk_wall:
            failures.append(
                f"{name}: auto sweep ({auto_wall:.3f}s) is slower than the "
                f"forced walk ({walk_wall:.3f}s) in the same run"
            )
    for name, fresh in document.get("tune", {}).items():
        if fresh["explored"] < TUNE_MIN_EXPLORED:
            failures.append(
                f"{name}: tuner explored only {fresh['explored']} "
                f"candidates (floor {TUNE_MIN_EXPLORED})"
            )
        ratio = fresh["best_vs_paper"]
        if ratio is None or ratio > TUNE_MAX_VS_PAPER:
            failures.append(
                f"{name}: tuner best is {ratio}x of the paper's hand-picked "
                f"schedule at full scale (must be <= {TUNE_MAX_VS_PAPER})"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced scale for CI (does not overwrite the recorded JSON)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare symbolic/analytic coverage against the recorded "
        "JSON and fail on regression instead of rewriting it",
    )
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "paper"
    document = run_benchmark(scale, args.jobs)

    if args.check:
        failures = check_coverage(document, args.output)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"symbolic/analytic coverage holds against {args.output}")
        return 0

    # Re-recording the sweeps must not drop sections other tools own
    # (bench_sympoly.py writes the evaluator micro-benchmark here).
    if os.path.exists(args.output):
        with open(args.output, "r", encoding="utf-8") as handle:
            previous = json.load(handle)
        if "sympoly" in previous:
            document["sympoly"] = previous["sympoly"]
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
