"""Regression tests for the sweep/CLI/simulator bugfix round.

Each test pins one previously-broken behavior:

* the speedup sweep double-simulated the baseline's P=1 cell,
* ``render_chart`` crashed on empty input and wrote x-axis labels at
  negative indices,
* ``repro simulate --processors ""`` crashed with ``IndexError``,
* non-integral affine values inside ownership tests and guards surfaced
  as bare ``TypeError`` instead of :class:`SimulationError`,
* RESULTS.md regeneration was never byte-identical because of the
  timestamp.
"""

from fractions import Fraction

import pytest

from repro.bench.ascii_plot import render_chart
from repro.bench.figures import figure_machine, gemm_variants
from repro.bench.harness import run_speedup_sweep
from repro.bench.report import build_report, main as report_main
from repro.cli import main as cli_main
from repro.codegen.locality import LocalityPlan
from repro.codegen.spmd import NodeProgram
from repro.distributions import Wrapped
from repro.errors import SimulationError
from repro.ir.affine import AffineExpr
from repro.ir.loop import Loop, LoopNest
from repro.ir.program import ArrayDecl, Program
from repro.ir.scalar import ArrayRef, Load
from repro.ir.stmt import Assign, IfThen, ModEq
from repro.numa.simulator import simulate
from repro.runtime import Metrics, SimulationCache


class TestBaselineReuse:
    def test_baseline_p1_simulated_once(self):
        """3 variants x 2 procs with 1 in procs: 7 grid cells, 6 simulations."""
        metrics = Metrics()
        series = run_speedup_sweep(
            gemm_variants(8), [1, 2], machine=figure_machine(),
            baseline="gemmB", cache=SimulationCache(), metrics=metrics,
        )
        assert metrics.counter("grid_cells") == 7
        assert metrics.counter("simulate_calls") == 6
        assert metrics.counter("dedup_hits") == 1
        assert series["gemmB"][0] == pytest.approx(1.0)

    def test_baseline_reused_without_one_in_procs(self):
        """No P=1 column: the baseline cell is extra, nothing is reused."""
        metrics = Metrics()
        run_speedup_sweep(
            gemm_variants(8), [2, 4], machine=figure_machine(),
            baseline="gemmB", cache=SimulationCache(), metrics=metrics,
        )
        assert metrics.counter("grid_cells") == 7
        assert metrics.counter("simulate_calls") == 7
        assert metrics.counter("dedup_hits") == 0


class TestChartGuards:
    def test_empty_everything_raises_value_error(self):
        with pytest.raises(ValueError, match="non-empty"):
            render_chart([], {})

    def test_empty_series_raises_value_error(self):
        with pytest.raises(ValueError, match="non-empty"):
            render_chart([1, 2], {"s": []})

    def test_no_series_raises_value_error(self):
        with pytest.raises(ValueError, match="non-empty"):
            render_chart([1, 2], {})

    def test_wide_label_clamped_not_negative(self):
        """A label wider than the remaining chart used to land at a
        negative index, wrapping to the end of the axis line."""
        chart = render_chart(
            [1, 1000000], {"s": [1.0, 2.0]}, width=5, height=4
        )
        axis_line = [l for l in chart.splitlines() if "(processors)" in l][0]
        assert "10000" in axis_line  # truncated to the chart width
        body = axis_line[8:8 + 5]
        assert body == "10000"

    def test_narrow_chart_still_renders(self):
        chart = render_chart([1, 28], {"s": [1.0, 9.0]}, width=3, height=4)
        assert "(processors)" in chart


class TestProcsValidation:
    def test_empty_processors_is_clean_argparse_error(self, tmp_path, capsys):
        source = tmp_path / "p.an"
        source.write_text(
            "program p\nparam N = 4\nreal A(N) distribute (wrapped)\n\n"
            "for i = 0, N-1\n    A[i] = A[i] + 1\n"
        )
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["simulate", str(source), "--processors", "", "--detail"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "processor list is empty" in err

    def test_non_numeric_processors_rejected(self, tmp_path, capsys):
        source = tmp_path / "p.an"
        source.write_text("program p\nreal A(4)\n\nfor i = 0, 3\n    A[i] = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["simulate", str(source), "-P", "1,two"])
        assert excinfo.value.code == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_non_positive_processors_rejected(self, tmp_path, capsys):
        source = tmp_path / "p.an"
        source.write_text("program p\nreal A(4)\n\nfor i = 0, 3\n    A[i] = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["simulate", str(source), "-P", "1,0"])
        assert excinfo.value.code == 2
        assert "positive" in capsys.readouterr().err


def _node_with_body(body, arrays, distributions):
    nest = LoopNest((Loop.make("i", 0, 7),), tuple(body))
    program = Program(
        nest=nest,
        arrays=tuple(arrays),
        distributions=dict(distributions),
        params={},
        name="halfsub",
    )
    return NodeProgram(
        program=program,
        schedule="all",
        plan=LocalityPlan(refs=(), block_reads=()),
    )


class TestNonIntegralSimulationErrors:
    def test_wrapped_ownership_names_subscript(self):
        ref = ArrayRef("A", (AffineExpr({"i": Fraction(1, 2)}),))
        node = _node_with_body(
            [Assign(ref, Load(ref))],
            [ArrayDecl.make("A", 8)],
            {"A": Wrapped(0)},
        )
        with pytest.raises(SimulationError, match=r"non-integral subscript"):
            simulate(node, processors=2)
        with pytest.raises(SimulationError, match=r"'A'"):
            simulate(node, processors=2)

    def test_guard_names_condition(self):
        ref = ArrayRef("A", (AffineExpr({"i": 1}),))
        guard = ModEq(
            expr=AffineExpr({"i": Fraction(1, 2)}),
            modulus=AffineExpr.constant(2),
            target=AffineExpr.constant(0),
        )
        node = _node_with_body(
            [IfThen((guard,), Assign(ref, Load(ref)))],
            [ArrayDecl.make("A", 8)],
            {},
        )
        with pytest.raises(SimulationError, match=r"non-integral value in guard"):
            simulate(node, processors=1)

    def test_integral_fractional_subscripts_still_work(self):
        """i/2 over an even-strided loop is integral everywhere: no error."""
        ref = ArrayRef("A", (AffineExpr({"i": Fraction(1, 2)}),))
        nest = LoopNest(
            (Loop.make("i", 0, 6, 2),), (Assign(ref, Load(ref)),)
        )
        program = Program(
            nest=nest,
            arrays=(ArrayDecl.make("A", 8),),
            distributions={"A": Wrapped(0)},
            params={},
            name="evensub",
        )
        node = NodeProgram(
            program=program, schedule="all",
            plan=LocalityPlan(refs=(), block_reads=()),
        )
        outcome = simulate(node, processors=2)
        assert outcome.totals.local + outcome.totals.remote == 16


class TestDeterministicReport:
    def test_build_report_no_timestamp_is_reproducible(self):
        cache = SimulationCache()
        first = build_report(32, 32, 6, timestamp=False, cache=cache)
        second = build_report(32, 32, 6, timestamp=False, cache=cache)
        assert first == second
        assert "Generated by" in first
        assert "Generated 2" not in first  # no wall-clock year

    def test_source_date_epoch_pins_stamp(self, monkeypatch):
        monkeypatch.setenv("SOURCE_DATE_EPOCH", "0")
        report = build_report(32, 32, 6, cache=SimulationCache())
        assert "Generated 1970-01-01 00:00:00" in report

    def test_main_no_timestamp_flag(self, tmp_path, capsys):
        output = tmp_path / "RESULTS.md"
        args = ["--output", str(output), "--gemm-n", "32", "--syr2k-n", "32",
                "--band", "6", "--no-timestamp"]
        assert report_main(args) == 0
        first = output.read_text()
        assert report_main(args) == 0
        assert output.read_text() == first
        assert "wrote" in capsys.readouterr().out

    def test_main_profile_flag(self, tmp_path, capsys):
        output = tmp_path / "RESULTS.md"
        assert report_main(
            ["--output", str(output), "--gemm-n", "32", "--syr2k-n", "32",
             "--band", "6", "--no-timestamp", "--jobs", "2", "--profile"]
        ) == 0
        err = capsys.readouterr().err
        assert "pipeline profile" in err
        # The report runs against the process-wide shared cache, so cells
        # may be hits or misses depending on test order; the grid counter
        # is always present.
        assert "grid_cells" in err

    def test_report_jobs_byte_identical(self):
        serial = build_report(
            32, 32, 6, jobs=1, timestamp=False, cache=SimulationCache()
        )
        parallel = build_report(
            32, 32, 6, jobs=4, timestamp=False, cache=SimulationCache()
        )
        assert serial == parallel

    def test_report_warm_cache_zero_simulate_calls(self):
        cache = SimulationCache()
        cold = Metrics()
        build_report(32, 32, 6, timestamp=False, cache=cache, metrics=cold)
        warm = Metrics()
        build_report(32, 32, 6, timestamp=False, cache=cache, metrics=warm)
        assert cold.counter("simulate_calls") > 0
        assert warm.counter("simulate_calls") == 0
        assert warm.counter("cache_misses") == 0
