"""Edge-case tests for nest/program validation (`repro.ir.validate`)."""

import pytest

from repro.errors import IRError
from repro.ir import Loop, make_nest, make_program, validate_nest, validate_program


class TestBoundSymbols:
    def test_implicit_parameters_allowed_without_params(self):
        nest = make_nest(
            loops=[("i", 0, "N-1"), ("j", "i", "i+b-1")],
            body=["A[i, j] = A[i, j] + 1"],
        )
        validate_nest(nest)  # N and b are implicit parameters

    def test_unknown_bound_symbol_rejected_with_params(self):
        nest = make_nest(
            loops=[("i", 0, "N-1"), ("j", 0, "M-1")],
            body=["A[i, j] = A[i, j] + 1"],
        )
        validate_nest(nest, {"N", "M"})
        with pytest.raises(IRError, match="unknown symbol 'M'"):
            validate_nest(nest, {"N"})

    def test_own_index_in_bound_rejected(self):
        nest = make_nest(
            loops=[("i", 0, "i+1")], body=["A[i] = A[i] + 1"]
        )
        with pytest.raises(IRError, match="non-outer index 'i'"):
            validate_nest(nest)

    def test_own_index_in_bound_rejected_even_with_params(self):
        # The non-outer-index diagnosis must win over "unknown symbol".
        nest = make_nest(
            loops=[("i", 0, "i+1")], body=["A[i] = A[i] + 1"]
        )
        with pytest.raises(IRError, match="non-outer index 'i'"):
            validate_nest(nest, {"N"})

    def test_inner_index_in_outer_bound_rejected(self):
        nest = make_nest(
            loops=[("i", 0, "j"), ("j", 0, 5)],
            body=["A[i, j] = A[i, j] + 1"],
        )
        with pytest.raises(IRError, match="non-outer index 'j'"):
            validate_nest(nest)

    def test_outer_index_in_inner_bound_allowed(self):
        nest = make_nest(
            loops=[("i", 0, 5), ("j", "i", "i+3")],
            body=["A[i, j] = A[i, j] + 1"],
        )
        validate_nest(nest)


class TestAlignmentExpressions:
    def make_aligned(self, align):
        return make_nest(
            loops=[("i", 0, 11), Loop.make("j", 0, 11, step=2, align=align)],
            body=["A[i, j] = A[i, j] + 1"],
        )

    def test_alignment_in_outer_index_allowed(self):
        validate_nest(self.make_aligned("i"))

    def test_alignment_in_parameter_allowed(self):
        validate_nest(self.make_aligned("c"), {"c"})

    def test_alignment_referencing_own_index_rejected(self):
        with pytest.raises(IRError, match="alignment of loop 'j'.*'j'"):
            validate_nest(self.make_aligned("j"))

    def test_alignment_with_unknown_symbol_rejected_with_params(self):
        # Before the rewrite, alignments skipped the unknown-symbol check.
        with pytest.raises(IRError, match="alignment of loop 'j'.*unknown symbol 'q'"):
            validate_nest(self.make_aligned("q"), {"N"})


class TestSubscripts:
    def test_subscript_unknown_symbol_rejected_with_params(self):
        nest = make_nest(
            loops=[("i", 0, 5)], body=["A[i + z] = A[i + z] + 1"]
        )
        validate_nest(nest)  # implicit-parameter mode
        with pytest.raises(IRError, match="subscript of 'A'.*unknown symbol 'z'"):
            validate_nest(nest, {"N"})


class TestForeignIndices:
    """Indices of *other* nests in the same compilation must not leak in."""

    def plain(self):
        return make_nest(
            loops=[("i", 0, 5), ("j", 0, 5)],
            body=["A[i, j] = A[i, j] + 1"],
        )

    def test_duplicate_index_across_nests_rejected(self):
        with pytest.raises(IRError, match="collides with a loop index"):
            validate_nest(self.plain(), foreign_indices=frozenset({"i"}))

    def test_foreign_index_in_bound_rejected(self):
        nest = make_nest(
            loops=[("i", 0, "k-1")], body=["A[i] = A[i] + 1"]
        )
        with pytest.raises(IRError, match="bound of loop 'i'.*index 'k' of another nest"):
            validate_nest(nest, foreign_indices=frozenset({"k"}))

    def test_foreign_index_in_subscript_rejected(self):
        nest = make_nest(
            loops=[("i", 0, 5)], body=["A[i + k] = A[i + k] + 1"]
        )
        # Without the marker, k is an implicit parameter; with it, an error.
        validate_nest(nest)
        with pytest.raises(IRError, match="subscript of 'A'.*index 'k' of another nest"):
            validate_nest(nest, foreign_indices=frozenset({"k"}))

    def test_foreign_index_beats_params_whitelist(self):
        # Even a params entry does not legitimize another nest's iterator.
        nest = make_nest(
            loops=[("i", 0, "k-1")], body=["A[i] = A[i] + 1"]
        )
        with pytest.raises(IRError, match="index 'k' of another nest"):
            validate_nest(nest, {"N"}, foreign_indices=frozenset({"k"}))

    def test_validate_program_passthrough(self):
        program = make_program(
            loops=[("i", 0, 5)],
            body=["A[i] = A[i] + 1"],
            arrays=[("A", 6)],
        )
        validate_program(program)
        with pytest.raises(IRError, match="collides with a loop index"):
            validate_program(program, foreign_indices=frozenset({"i"}))


class TestProgramLevel:
    def test_duplicate_loop_index_rejected(self):
        nest = make_nest(
            loops=[("i", 0, 5), ("i", 0, 5)],
            body=["A[i] = A[i] + 1"],
        )
        with pytest.raises(IRError, match="duplicate loop index"):
            validate_nest(nest)

    def test_undeclared_array_rejected(self):
        program = make_program(
            loops=[("i", 0, 5)],
            body=["A[i] = B[i] + 1"],
            arrays=[("A", 6)],
        )
        with pytest.raises(IRError, match="'B' used but not declared"):
            validate_program(program)

    def test_rank_mismatch_rejected(self):
        program = make_program(
            loops=[("i", 0, 5)],
            body=["A[i] = A[i] + 1"],
            arrays=[("A", 6, 6)],
        )
        with pytest.raises(IRError, match="declared rank 2"):
            validate_program(program)
