"""Tests for the data access matrix, basis, padding and legality algorithms.

Every worked example from the paper's Sections 2, 5 and 6 appears here as a
test (experiment ids EX1, EX3, EX4 in DESIGN.md).
"""

import pytest

from repro.core import (
    basis_matrix,
    build_access_matrix,
    classify,
    derive_transformation_matrix,
    is_identity,
    is_interchange,
    is_legal_transformation,
    is_reversal,
    is_scaling,
    legal_basis,
    legal_invertible,
    pad_to_invertible,
    padding_matrix,
)
from repro.distributions import wrapped_column
from repro.errors import IllegalTransformationError, LinalgError
from repro.ir import make_nest
from repro.linalg import Matrix


def figure1_nest():
    return make_nest(
        loops=[("i", 0, "N1-1"), ("j", "i", "i+b-1"), ("k", 0, "N2-1")],
        body=["B[i, j-i] = B[i, j-i] + A[i, j+k]"],
    )


def gemm_nest():
    return make_nest(
        loops=[("i", 1, "N"), ("j", 1, "N"), ("k", 1, "N")],
        body=["C[i, j] = C[i, j] + A[i, k] * B[k, j]"],
    )


class TestAccessMatrix:
    def test_figure1_matrix(self):
        # Section 2.2: rows j-i, j+k, i in that order.
        access = build_access_matrix(
            figure1_nest(), {"A": wrapped_column(), "B": wrapped_column()}
        )
        assert access.matrix == Matrix([[-1, 1, 0], [0, 1, 1], [1, 0, 0]])

    def test_figure1_ranking_reasons(self):
        access = build_access_matrix(
            figure1_nest(), {"A": wrapped_column(), "B": wrapped_column()}
        )
        assert access.rows[0].distribution_count == 2  # j-i in B twice
        assert access.rows[1].distribution_count == 1  # j+k in A once
        assert access.rows[2].distribution_count == 0  # i never distributed

    def test_gemm_matrix(self):
        # Section 8.1: rows j, k, i.
        access = build_access_matrix(
            gemm_nest(),
            {"A": wrapped_column(), "B": wrapped_column(), "C": wrapped_column()},
        )
        assert access.matrix == Matrix([[0, 1, 0], [0, 0, 1], [1, 0, 0]])

    def test_without_distributions_count_ordering(self):
        access = build_access_matrix(gemm_nest())
        # Without distribution info, ordering falls back to occurrence
        # counts: i and j appear three times each, k twice.
        assert access.matrix.nrows == 3
        assert access.rows[-1].expr.variables() == ("k",)

    def test_constant_subscripts_skipped(self):
        nest = make_nest(loops=[("i", 0, 9)], body=["A[0, i] = A[0, i] + 1"])
        access = build_access_matrix(nest)
        assert access.matrix == Matrix([[1]])

    def test_priority_override(self):
        access = build_access_matrix(
            gemm_nest(),
            {"A": wrapped_column(), "B": wrapped_column(), "C": wrapped_column()},
            priority=["i", "k"],
        )
        assert access.matrix == Matrix([[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_duplicate_subscripts_collapse(self):
        access = build_access_matrix(figure1_nest())
        exprs = [str(row.expr) for row in access.rows]
        assert len(exprs) == len(set(exprs))

    def test_describe_mentions_sources(self):
        access = build_access_matrix(
            figure1_nest(), {"B": wrapped_column()}
        )
        text = access.describe()
        assert "B[dim 1]*" in text

    def test_empty_body_gives_empty_matrix(self):
        nest = make_nest(loops=[("i", 0, 3)], body=["A[0] = 1"])
        access = build_access_matrix(nest)
        assert access.matrix.nrows == 0


class TestBasisMatrix:
    def test_paper_section5_example(self):
        # R[i+j-k, 2i+2j-2k, k-l]: rows 1 and 3 independent, rank 2.
        x = Matrix([[1, 1, -1, 0], [2, 2, -2, 0], [0, 0, 1, -1]])
        result = basis_matrix(x)
        assert result.rank == 2
        assert result.kept_rows == (0, 2)
        assert result.basis_of(x) == Matrix([[1, 1, -1, 0], [0, 0, 1, -1]])
        # The paper reports the permutation putting rows 1 and 3 first.
        assert result.permutation == Matrix(
            [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_full_rank_keeps_everything(self):
        x = Matrix([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        result = basis_matrix(x)
        assert result.rank == 3
        assert result.kept_rows == (0, 1, 2)

    def test_greedy_prefers_earlier_rows(self):
        # Row 2 = row 0 + row 1; the greedy scan keeps rows 0, 1.
        x = Matrix([[1, 0], [0, 1], [1, 1]])
        assert basis_matrix(x).kept_rows == (0, 1)


class TestPadding:
    def test_paper_section5_padding(self):
        basis = Matrix([[1, 1, -1, 0], [0, 0, 1, -1]])
        # Columns 1 and 3 are the pivots; pad with e_2 and e_4.
        assert padding_matrix(basis) == Matrix(
            [[0, 1, 0, 0], [0, 0, 0, 1]]
        )
        full = pad_to_invertible(basis)
        assert full.is_invertible()

    def test_padding_requires_full_row_rank(self):
        with pytest.raises(LinalgError):
            padding_matrix(Matrix([[1, 0], [2, 0]]))

    def test_square_basis_needs_no_padding(self):
        basis = Matrix([[0, 1], [1, 0]])
        assert padding_matrix(basis).nrows == 0
        assert pad_to_invertible(basis) == basis


class TestLegalBasis:
    def test_paper_section6_negation(self):
        # A = [[-1,1,0],[0,1,-1]], D = (0,0,1)^T: second row negated.
        basis = Matrix([[-1, 1, 0], [0, 1, -1]])
        deps = Matrix([[0], [0], [1]])
        result = legal_basis(basis, deps)
        assert result.basis == Matrix([[-1, 1, 0], [0, -1, 1]])
        assert result.row_map == ((0, False), (1, True))

    def test_mixed_signs_drop_row(self):
        basis = Matrix([[1, 0], [0, 1]])
        deps = Matrix([[1, -1], [0, 1]])
        # Row (1,0): products (1, -1) mixed -> dropped.  Row (0,1):
        # products (0, 1) -> kept, second dependence carried.
        result = legal_basis(basis, deps)
        assert result.basis == Matrix([[0, 1]])
        assert result.row_map == ((1, False),)

    def test_carried_dependences_removed(self):
        basis = Matrix([[1, 0], [0, 1]])
        deps = Matrix([[1], [0]])
        result = legal_basis(basis, deps)
        assert result.basis == basis
        assert result.remaining_deps.ncols == 0

    def test_empty_deps_keep_all(self):
        basis = Matrix([[2, 3], [1, 1]])
        result = legal_basis(basis, Matrix.zeros(2, 0))
        assert result.basis == basis


class TestLegalInvertible:
    def test_paper_section62_example(self):
        # B = [-1 1 0], D = [[0,0],[1,0],[0,1]]: first dependence carried by
        # the basis row; the projection adds e_3; padding completes with e_2.
        basis = Matrix([[-1, 1, 0]])
        deps = Matrix([[0, 0], [1, 0], [0, 1]])
        transform = legal_invertible(basis, deps)
        assert transform == Matrix([[-1, 1, 0], [0, 0, 1], [0, 1, 0]])
        assert transform.is_invertible()
        assert is_legal_transformation(transform, deps)

    def test_projection_onto_dependence_span(self):
        # No basis rows at all: two dependences spanning a plane.
        basis = Matrix.zeros(0, 3)
        deps = Matrix([[1, 0], [0, 1], [0, 0]])
        transform = legal_invertible(basis, deps)
        assert transform.is_invertible()
        assert is_legal_transformation(transform, deps)

    def test_illegal_basis_rejected(self):
        basis = Matrix([[0, -1, 0]])
        deps = Matrix([[0], [1], [0]])
        with pytest.raises(IllegalTransformationError):
            legal_invertible(basis, deps)

    def test_no_deps_pads_directly(self):
        basis = Matrix([[1, 1, 0]])
        transform = legal_invertible(basis, Matrix.zeros(3, 0))
        assert transform.is_invertible()
        assert transform.row_at(0) == (1, 1, 0)


class TestDeriveTransformation:
    def test_gemm_paper_matrix(self):
        access = Matrix([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        deps = Matrix([[0], [0], [1]])
        transform, provenance = derive_transformation_matrix(access, deps)
        assert transform == access  # Section 8.1: T is the access matrix.
        assert provenance == ((0, False), (1, False), (2, False))

    def test_syr2k_paper_matrix(self):
        # Section 8.2: 5-row access matrix; basis = first three rows;
        # LegalBasis negates the second row.
        access = Matrix(
            [[-1, 1, 0], [0, 1, -1], [0, 0, 1], [1, 0, -1], [1, 0, 0]]
        )
        deps = Matrix([[0], [0], [1]])
        transform, provenance = derive_transformation_matrix(access, deps)
        assert transform == Matrix([[-1, 1, 0], [0, -1, 1], [0, 0, 1]])
        assert provenance == ((0, False), (1, True), (2, False))

    def test_rank_deficient_padded(self):
        access = Matrix([[1, 1, -1, 0], [2, 2, -2, 0], [0, 0, 1, -1]])
        transform, provenance = derive_transformation_matrix(
            access, Matrix.zeros(4, 0)
        )
        assert transform.is_invertible()
        assert [p[0] for p in provenance] == [0, 2]

    def test_empty_access_matrix_gives_identity(self):
        transform, provenance = derive_transformation_matrix(
            Matrix.zeros(0, 2), Matrix.zeros(2, 0)
        )
        assert is_identity(transform)
        assert provenance == ()


class TestClassify:
    def test_identity(self):
        assert classify(Matrix.identity(2)) == ["identity", "unimodular"]

    def test_interchange(self):
        labels = classify(Matrix([[0, 1], [1, 0]]))
        assert "interchange" in labels
        assert "unimodular" in labels
        assert is_interchange(Matrix([[0, 1], [1, 0]]))

    def test_reversal(self):
        assert is_reversal(Matrix([[1, 0], [0, -1]]))
        assert "reversal" in classify(Matrix([[1, 0], [0, -1]]))

    def test_scaling_is_non_unimodular(self):
        matrix = Matrix([[2, 0], [0, 1]])
        assert is_scaling(matrix)
        labels = classify(matrix)
        assert "scaling" in labels
        assert "non-unimodular" in labels

    def test_skewing(self):
        labels = classify(Matrix([[1, 1], [0, 1]]))
        assert "skewing" in labels
        assert "unimodular" in labels

    def test_section3_matrix_is_scaling_and_skewing(self):
        labels = classify(Matrix([[2, 4], [1, 5]]))
        assert "non-unimodular" in labels
        assert "skewing" in labels

    def test_negatives(self):
        assert not is_interchange(Matrix.identity(2))
        assert not is_reversal(Matrix([[2, 0], [0, 1]]))
        assert not is_scaling(Matrix([[1, 0], [0, 1]]))
        assert not is_scaling(Matrix([[1, 1], [0, 1]]))
