"""Unit tests for the closed-form accounting engine and its math substrate.

The tier-1 engine (``repro.numa.counting``) collapses whole processor
nests into closed form on top of the progression-counting primitives in
``repro.linalg.progression``.  These tests pin the primitives against
brute force, the per-level strategy selection on the paper kernels, the
forced-engine error contract of :func:`repro.numa.simulate`, and the
innermost-summary fallback of the interpreter walk (a fractional
remainder expression must fall back to enumeration, not raise).
"""

from fractions import Fraction

import pytest

from repro.bench import gemm_variants, syr2k_variants
from repro.distributions import Blocked, Wrapped
from repro.errors import SimulationError
from repro.linalg import (
    Progression,
    affine_segment_starts,
    congruence_period,
    count_congruent,
    count_in_interval,
    residue_classes,
    sum_affine_range,
)
from repro.numa import AccessCounts, simulate
from repro.numa.counting import ClosedFormEngine, owned_elements
from repro.numa.simulator import _compile_affine, _ProcWalker
from repro.ir.affine import AffineExpr


# ----------------------------------------------------------------------
# progression primitives vs brute force
# ----------------------------------------------------------------------
def test_count_congruent_matches_enumeration():
    for a in (-2, 0, 1, 3):
        for first in (-3, 0, 2):
            for step in (1, 2, 3):
                for trips in (0, 1, 7):
                    for modulus in (2, 3, 4):
                        for target in range(modulus):
                            brute = sum(
                                1
                                for q in range(trips)
                                if (a * (first + step * q)) % modulus == target
                            )
                            got = count_congruent(
                                a, 0, first, step, trips, modulus, target
                            )
                            assert got == brute, (a, first, step, trips,
                                                  modulus, target)


def test_count_congruent_with_remainder():
    assert count_congruent(1, 5, 0, 1, 12, 4, 1) == sum(
        1 for q in range(12) if (q + 5) % 4 == 1
    )


def test_count_in_interval_matches_enumeration():
    for a in (-2, -1, 0, 1, 2):
        for r in (-1, 0, 3):
            for first in (-2, 0):
                for step in (1, 3):
                    for trips in (0, 1, 9):
                        for low, high in ((-4, 4), (0, 0), (3, 1)):
                            brute = sum(
                                1
                                for q in range(trips)
                                if low <= a * (first + step * q) + r <= high
                            )
                            got = count_in_interval(
                                a, r, first, step, trips, low, high
                            )
                            assert got == brute, (a, r, first, step, trips,
                                                  low, high)


def test_residue_classes_cover_progression():
    progression = Progression(first=3, step=2, trips=11)
    for period in (1, 2, 3, 5, 16):
        classes = residue_classes(progression, period)
        assert sum(size for _, size in classes) == progression.trips
        # Each representative is the value at position c < period, and its
        # class collects exactly the positions congruent to c.
        for c, (value, size) in enumerate(classes):
            assert value == progression.value(c)
            assert size == sum(
                1 for q in range(progression.trips) if q % period == c
            )


def test_congruence_period_is_sound_and_minimal_per_slope():
    for modulus in (2, 3, 4, 6, 12):
        for slope in (0, 1, 2, 3, 8):
            period = congruence_period(modulus, slope)
            assert modulus % period == 0 or slope == 0
            # Sound: residues repeat with the period...
            for q in range(24):
                assert (slope * q) % modulus == (slope * (q + period)) % modulus
            # ...and not with any shorter lag when slope != 0.
            if slope:
                for shorter in range(1, period):
                    assert any(
                        (slope * q) % modulus != (slope * (q + shorter)) % modulus
                        for q in range(modulus)
                    )


def test_congruence_period_combines_with_lcm():
    assert congruence_period(12, 4, 6) == 6  # lcm(3, 2)
    assert congruence_period(4) == 1


def test_sum_affine_range_matches_enumeration():
    for slope in (-3, 0, 2):
        for intercept in (-1, 0, 5):
            for start in (-2, 0, 4):
                for end in (start - 1, start, start + 7):
                    assert sum_affine_range(slope, intercept, start, end) == sum(
                        slope * q + intercept for q in range(start, end + 1)
                    )


def test_affine_segment_starts_are_sign_stable():
    differences = [(2, -5), (-3, 7), (0, 4), (1, 0)]
    trips = 12
    starts = affine_segment_starts(differences, trips)
    assert starts[0] == 0 and starts == sorted(set(starts))
    boundaries = starts + [trips]
    for begin, end in zip(boundaries, boundaries[1:]):
        for slope, intercept in differences:
            values = [slope * q + intercept for q in range(begin, end)]
            assert not (min(values) < 0 < max(values)), (begin, end, slope)
            if end - begin > 1 and slope != 0:
                assert values[0] != 0


# ----------------------------------------------------------------------
# ownership counting
# ----------------------------------------------------------------------
def test_owned_elements_matches_owner_enumeration():
    from itertools import product

    shape = (7, 5)
    for distribution in (
        Wrapped(dim=1),
        Wrapped(dim=0),
        Blocked(dim=0),
        Blocked(dim=1),
    ):
        for processors in (1, 2, 3, 4):
            counted = sum(
                owned_elements(distribution, shape, processors, proc)
                for proc in range(processors)
            )
            assert counted == shape[0] * shape[1]
            for proc in range(processors):
                brute = sum(
                    1
                    for indices in product(*(range(e) for e in shape))
                    if distribution.owner(indices, processors, shape) == proc
                )
                assert owned_elements(
                    distribution, shape, processors, proc
                ) == brute, (distribution, processors, proc)


# ----------------------------------------------------------------------
# per-level strategy selection on the paper kernels
# ----------------------------------------------------------------------
def test_gemm_strategies():
    nodes = gemm_variants(12)
    # Naive GEMM: B[k, j]'s owner depends on the middle index only through
    # a wrapped test, so the middle level collapses to residue classes.
    assert ClosedFormEngine(nodes["gemm"]).describe_strategies() == (
        "const", "periodic", "inner",
    )
    # Normalized GEMM with block transfers: every ownership test left in
    # the nest is loop-invariant below the top level.
    assert ClosedFormEngine(nodes["gemmB"]).describe_strategies() == (
        "const", "const", "inner",
    )


def test_syr2k_strategies():
    nodes = syr2k_variants(24, 4)
    # Normalized banded SYR2K with block transfers: triangular middle
    # bounds collapse into breakpoint segments summed as arithmetic series.
    assert ClosedFormEngine(nodes["syr2kB"]).describe_strategies() == (
        "enumerate", "segmented", "inner",
    )
    assert ClosedFormEngine(nodes["syr2kT"]).describe_strategies() == (
        "enumerate", "enumerate", "inner",
    )


# ----------------------------------------------------------------------
# forced-engine error contract
# ----------------------------------------------------------------------
def test_unknown_engine_is_rejected():
    node = gemm_variants(8)["gemmT"]
    with pytest.raises(SimulationError, match="unknown engine 'turbo'"):
        simulate(node, processors=2, engine="turbo")


def test_forced_tiers_reject_execute_mode():
    node = gemm_variants(8)["gemmT"]
    for engine in ("closed-form", "compiled"):
        with pytest.raises(SimulationError, match="only supports account mode"):
            simulate(
                node, processors=2, mode="execute", arrays={}, engine=engine
            )


def test_closed_form_rejects_block_cache():
    node = gemm_variants(8)["gemmB"]
    with pytest.raises(SimulationError, match="does not model the block cache"):
        simulate(node, processors=2, block_cache=True, engine="closed-form")
    # auto still works: the compiled kernel models the cache.
    outcome = simulate(node, processors=2, block_cache=True)
    assert outcome.engine in ("compiled", "walk")


# ----------------------------------------------------------------------
# innermost-summary fallback (fractional remainder expressions)
# ----------------------------------------------------------------------
def test_summary_falls_back_on_fractional_rest():
    node = gemm_variants(8)["gemm"]
    env = node.program.bound_params(None)
    env[node.procs_param] = 2
    env[node.proc_param] = 0
    walker = _ProcWalker(node, env, 2, 0, "account", None)
    # Force a remainder expression of i/2: integral only at even i.
    half_i = AffineExpr.var("i") * Fraction(1, 2)
    walker._inner_plan = [("wrapped", 1, _compile_affine(half_i), None)]
    walker.env["i"] = walker.env["j"] = 2
    inner = walker._compiled[-1]
    assert walker._summarize_innermost(inner) is True
    assert walker.counts.iterations == 8  # N=8 trips charged in one step
    charged = walker.counts.local + walker.counts.remote
    assert charged == 8
    # At odd i the remainder is fractional: the summary must decline
    # without charging anything, so the caller can enumerate the loop.
    walker.counts = AccessCounts()
    walker.env["i"] = 3
    assert walker._summarize_innermost(inner) is False
    assert walker.counts == AccessCounts()
