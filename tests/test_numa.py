"""Tests for the NUMA machine model and simulator."""

import numpy as np
import pytest

from repro.blas import gemm_program, gemm_reference, syr2k_program, syr2k_reference
from repro.codegen import generate_ownership, generate_spmd
from repro.core import access_normalize
from repro.errors import SimulationError
from repro.ir import allocate_arrays, execute
from repro.numa import (
    butterfly_gp1000,
    ipsc860,
    sequential_time,
    simulate,
    uniform_memory,
)
from repro.numa.model import gemm_model, gemm_speedup_series
from repro.numa.simulator import _count_congruent, _count_in_interval


class TestMachineConfig:
    def test_paper_constants(self):
        machine = butterfly_gp1000()
        assert machine.local_access_us == 0.6
        assert machine.remote_access_us == 6.6
        assert machine.block_startup_us == 8.0
        assert machine.block_per_byte_us == 0.31

    def test_block_transfer_cost(self):
        machine = butterfly_gp1000()
        assert machine.block_transfer_us(100) == pytest.approx(8.0 + 31.0)

    def test_breakeven(self):
        machine = butterfly_gp1000()
        # 8 / (6.6 - 2.48) ~= 1.94 elements: block transfers win almost
        # immediately on the Butterfly (the Section 1 argument).
        assert machine.block_breakeven_elements(8) == pytest.approx(1.94, abs=0.01)

    def test_breakeven_never(self):
        machine = butterfly_gp1000(remote_access_us=1.0)
        assert machine.block_breakeven_elements(8) == float("inf")

    def test_presets(self):
        assert ipsc860().block_startup_us == 70.0
        assert uniform_memory().remote_access_us == uniform_memory().local_access_us

    def test_with_contention(self):
        assert butterfly_gp1000().with_contention(0.1).contention_coefficient == 0.1


class TestCountingHelpers:
    @pytest.mark.parametrize("a,r,first,step,trips,mod,target", [
        (1, 0, 0, 1, 20, 4, 2),
        (3, 5, -7, 2, 33, 6, 1),
        (0, 5, 0, 1, 10, 4, 1),
        (-2, 1, 3, 3, 17, 5, 0),
        (4, 0, 0, 2, 25, 8, 4),
    ])
    def test_count_congruent_matches_bruteforce(self, a, r, first, step, trips, mod, target):
        expected = sum(
            1 for q in range(trips) if (a * (first + step * q) + r) % mod == target % mod
        )
        assert _count_congruent(a, r, first, step, trips, mod, target) == expected

    @pytest.mark.parametrize("a,r,first,step,trips,low,high", [
        (1, 0, 0, 1, 20, 5, 11),
        (-3, 40, 0, 2, 15, 10, 25),
        (0, 7, 0, 1, 9, 5, 10),
        (0, 7, 0, 1, 9, 8, 10),
        (2, -3, -5, 3, 12, -4, 4),
    ])
    def test_count_interval_matches_bruteforce(self, a, r, first, step, trips, low, high):
        expected = sum(
            1 for q in range(trips) if low <= a * (first + step * q) + r <= high
        )
        assert _count_in_interval(a, r, first, step, trips, low, high) == expected


class TestSimulatorBasics:
    def make_node(self, n=12, block=True):
        return generate_spmd(
            access_normalize(gemm_program(n)).transformed,
            block_transfers=block,
        )

    def test_one_processor_all_local(self):
        node = self.make_node()
        result = simulate(node, processors=1)
        totals = result.totals
        assert totals.remote == 0
        assert totals.block_transfers == 0
        assert totals.local == 4 * 12 ** 3

    def test_iterations_partitioned(self):
        node = self.make_node()
        sequential = simulate(node, processors=1).totals.iterations
        for processors in (2, 3, 5):
            result = simulate(node, processors=processors)
            assert result.totals.iterations == sequential

    def test_blocked_schedule_partitions(self):
        node = generate_spmd(
            access_normalize(gemm_program(12)).transformed, schedule="blocked"
        )
        result = simulate(node, processors=5)
        assert result.totals.iterations == 12 ** 3

    def test_all_schedule_replicates(self):
        node = generate_ownership(gemm_program(6))
        result = simulate(node, processors=3)
        assert result.totals.iterations == 3 * 6 ** 3
        # but each element is written exactly once in total:
        assert result.totals.statements == 6 ** 3
        assert result.totals.guards == 3 * 6 ** 3

    def test_block_transfer_counts(self):
        node = self.make_node(n=10)
        result = simulate(node, processors=5)
        totals = result.totals
        # One transfer per (u, v) with v not owned: N * (N - N/P) columns.
        assert totals.block_transfers == 10 * (10 - 2)
        assert totals.block_bytes == totals.block_transfers * 10 * 8
        assert totals.remote == 0

    def test_no_block_transfers_variant(self):
        node = self.make_node(n=10, block=False)
        result = simulate(node, processors=5)
        totals = result.totals
        assert totals.block_transfers == 0
        # A[w, v] remote whenever v is not local: N * (N - N/P) * N elements.
        assert totals.remote == 10 * (10 - 2) * 10

    def test_access_conservation(self):
        # local + remote must equal refs-per-iteration * iterations.
        node = self.make_node(n=9, block=False)
        for processors in (1, 2, 4):
            totals = simulate(node, processors=processors).totals
            assert totals.local + totals.remote == 4 * 9 ** 3

    def test_speedup_and_summary(self):
        node = self.make_node()
        seq = sequential_time(node)
        result = simulate(node, processors=4)
        assert 1.0 < result.speedup(seq) <= 4.0
        assert "P=4" in result.summary()

    def test_invalid_arguments(self):
        node = self.make_node()
        with pytest.raises(SimulationError):
            simulate(node, processors=0)
        with pytest.raises(SimulationError):
            simulate(node, processors=2, mode="warp")
        with pytest.raises(SimulationError):
            simulate(node, processors=2, mode="execute")  # arrays missing


class TestExecuteMode:
    def test_gemm_parallel_execution_correct(self):
        program = gemm_program(8)
        node = generate_spmd(access_normalize(program).transformed)
        arrays = allocate_arrays(program, seed=21)
        expected = gemm_reference(arrays)
        simulate(node, processors=3, arrays=arrays, mode="execute")
        np.testing.assert_allclose(arrays["C"], expected, atol=1e-9)

    def test_syr2k_parallel_execution_correct(self):
        program = syr2k_program(10, 3)
        result = access_normalize(program, priority=["j-i", "j-k", "k", "i-k", "i"])
        node = generate_spmd(result.transformed)
        arrays = allocate_arrays(program, seed=22)
        expected = syr2k_reference(arrays, 10, 3)
        simulate(node, processors=4, arrays=arrays, mode="execute")
        np.testing.assert_allclose(arrays["Cb"], expected, atol=1e-9)

    def test_execute_and_account_counts_agree(self):
        program = gemm_program(7)
        node = generate_spmd(access_normalize(program).transformed)
        arrays = allocate_arrays(program, seed=23)
        executed = simulate(node, processors=3, arrays=arrays, mode="execute")
        accounted = simulate(node, processors=3, mode="account")
        for lhs, rhs in zip(executed.per_proc, accounted.per_proc):
            assert lhs.counts == rhs.counts


class TestContention:
    def test_multiplier_grows_with_remote_traffic(self):
        machine = butterfly_gp1000(contention_coefficient=0.1)
        node = generate_spmd(
            access_normalize(gemm_program(12)).transformed, block_transfers=False
        )
        result = simulate(node, processors=8, machine=machine)
        assert result.remote_multiplier > 1.0
        base = simulate(node, processors=8, machine=butterfly_gp1000())
        assert result.total_time_us > base.total_time_us

    def test_no_contention_on_single_processor(self):
        machine = butterfly_gp1000(contention_coefficient=0.5)
        node = generate_spmd(access_normalize(gemm_program(8)).transformed)
        result = simulate(node, processors=1, machine=machine)
        assert result.remote_multiplier == 1.0


class TestModelCrossValidation:
    @pytest.mark.parametrize("variant,block", [
        ("gemmT", False),
        ("gemmB", True),
    ])
    @pytest.mark.parametrize("processors", [1, 3, 7])
    def test_normalized_variants_match_simulator(self, variant, block, processors):
        n = 24
        machine = butterfly_gp1000(contention_coefficient=0.05)
        node = generate_spmd(
            access_normalize(gemm_program(n)).transformed, block_transfers=block
        )
        simulated = simulate(node, processors=processors, machine=machine)
        modeled = gemm_model(n, processors, variant, machine)
        assert simulated.total_time_us == pytest.approx(modeled.time_us, rel=1e-9)

    @pytest.mark.parametrize("processors", [1, 3, 7])
    def test_naive_variant_matches_simulator(self, processors):
        n = 24
        machine = butterfly_gp1000(contention_coefficient=0.05)
        node = generate_spmd(gemm_program(n), block_transfers=False)
        simulated = simulate(node, processors=processors, machine=machine)
        modeled = gemm_model(n, processors, "gemm", machine)
        assert simulated.total_time_us == pytest.approx(modeled.time_us, rel=1e-9)

    def test_speedup_series_shape(self):
        series = gemm_speedup_series(64, [1, 4, 8, 16])
        assert series["gemmB"][-1] > series["gemmT"][-1] > series["gemm"][-1]
        assert series["gemmB"][0] == pytest.approx(1.0)

    def test_unknown_variant(self):
        with pytest.raises(SimulationError):
            gemm_model(16, 2, "gemmX")
