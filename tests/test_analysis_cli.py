"""Tests for the ``repro analyze`` subcommand."""

import json
import os

import pytest

from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO_ROOT, "examples", "programs")
CORPUS = os.path.join(REPO_ROOT, "tests", "corpus")

CLEAN_SOURCE = """\
program clean
param N = 8
real A(N) distribute (wrapped)

for i = 0, N-1
    A[i] = A[i] + 1
"""

UNUSED_INDEX_SOURCE = """\
program unused
param N = 8
real A(N) distribute (wrapped)

for i = 0, N-1
    for j = 0, N-1
        A[i] = A[i] + 1
"""


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return str(path)


class TestAnalyzeExamples:
    def test_examples_are_clean_at_error(self, capsys):
        files = sorted(
            os.path.join(EXAMPLES, name)
            for name in os.listdir(EXAMPLES)
            if name.endswith(".an")
        )
        assert files
        assert main(["analyze", *files]) == 0
        out = capsys.readouterr().out
        assert "figure1: clean" in out

    def test_corpus_entries_are_clean_at_error(self):
        files = sorted(
            os.path.join(CORPUS, name)
            for name in os.listdir(CORPUS)
            if name.endswith(".json")
        )
        assert files
        assert main(["analyze", *files]) == 0

    def test_json_output_is_stable_and_structured(self, capsys):
        path = os.path.join(EXAMPLES, "figure1.an")
        assert main(["analyze", "--json", path]) == 0
        first = capsys.readouterr().out
        payload = json.loads(first)
        assert payload["tool"] == "repro-analyze"
        assert payload["fail_on"] == "error"
        assert payload["failed"] == 0
        (report,) = payload["reports"]
        assert report["program"] == "figure1"
        assert report["diagnostics"] == []
        assert set(report["counts"]) == {"info", "warning", "error"}
        assert main(["analyze", "--json", path]) == 0
        assert capsys.readouterr().out == first


class TestFailOnGating:
    def test_error_threshold_passes_warnings(self, tmp_path, capsys):
        path = write(tmp_path, "unused.an", UNUSED_INDEX_SOURCE)
        assert main(["analyze", path]) == 0
        assert "[LINT002]" in capsys.readouterr().out

    def test_warning_threshold_fails_warnings(self, tmp_path):
        path = write(tmp_path, "unused.an", UNUSED_INDEX_SOURCE)
        assert main(["analyze", "--fail-on", "warning", path]) == 1

    def test_info_threshold_is_strictest(self, tmp_path):
        clean = write(tmp_path, "clean.an", CLEAN_SOURCE)
        assert main(["analyze", "--fail-on", "info", clean]) == 0


class TestSuppressions:
    def test_dsl_comment_suppresses_a_code(self, tmp_path, capsys):
        source = UNUSED_INDEX_SOURCE + "# analyze: ignore[LINT002]\n"
        path = write(tmp_path, "suppressed.an", source)
        assert main(["analyze", "--fail-on", "warning", path]) == 0
        out = capsys.readouterr().out
        assert "clean (1 suppressed)" in out

    def test_corpus_json_ignore_field(self, tmp_path, capsys):
        entry = {
            "analyze": {"ignore": ["LINT002"]},
            "spec": {
                "name": "json-suppressed",
                "loops": [["i", "0", "N-1", 1], ["j", "0", "N-1", 1]],
                "statements": ["A[i] = A[i] + 1"],
                "arrays": {"A": [8]},
                "distributions": {"A": {"kind": "wrapped", "dim": 0}},
                "params": {"N": 8},
            },
        }
        path = write(tmp_path, "entry.json", json.dumps(entry))
        assert main(["analyze", "--fail-on", "warning", path]) == 0
        assert "suppressed" in capsys.readouterr().out

    def test_unknown_suppression_code_is_an_error(self, tmp_path):
        source = CLEAN_SOURCE + "# analyze: ignore[NOPE01]\n"
        path = write(tmp_path, "bad.an", source)
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            main(["analyze", path])


class TestPipelineFailures:
    def test_unparseable_file_exits_1(self, tmp_path, capsys):
        path = write(tmp_path, "garbage.an", "this is not a program\n")
        assert main(["analyze", path]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exits_2(self):
        assert main(["analyze", "/nonexistent/nowhere.an"]) == 2

    def test_race_errors_fail_without_sync_and_pass_with(self, tmp_path, capsys):
        source = (
            "program carried\n"
            "param N = 6\n"
            "real A(11) distribute (wrapped)\n"
            "real C(N, N)\n"
            "\n"
            "for i = 0, N-1\n"
            "    for j = 0, N-1\n"
            "        C[j, j] = C[j, j] + A[i + j]\n"
        )
        path = write(tmp_path, "carried.an", source)
        assert main(["analyze", path]) == 1
        out = capsys.readouterr().out
        assert "[RACE001]" in out or "[RACE002]" in out
        assert main(["analyze", "--assume-sync", path]) == 0
        assert "[RACE004]" in capsys.readouterr().out
