"""Tests for the four analysis passes over real and injected artifacts."""

from dataclasses import replace
from fractions import Fraction

from repro.analysis import (
    BoundsPass,
    LegalityPass,
    LintPass,
    RacePass,
    analyze_artifacts,
    analyze_program,
    build_context,
    run_passes,
)
from repro.core import access_normalize
from repro.distributions import Wrapped
from repro.ir import AffineExpr, IfThen, ModEq, make_program, parse_assignment
from repro.linalg.fraction_matrix import Matrix


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def flow_dep_program():
    """A nest with a flow dependence of distance (1, 0) on A."""
    return make_program(
        loops=[("i", 1, 9), ("j", 0, 9)],
        body=["A[i, j] = A[i-1, j] + 1"],
        arrays=[("A", 10, 10)],
        name="flowdep",
    )


def dep_free_program():
    return make_program(
        loops=[("i", 0, 9), ("j", 0, 9)],
        body=["A[i, j] = B[i, j] * 2"],
        arrays=[("A", 10, 10), ("B", 10, 10)],
        name="depfree",
    )


def inject_matrix(result, matrix, inverse):
    """Swap the transformation matrix of a normalization result."""
    transformation = replace(result.transformation, matrix=matrix, inverse=inverse)
    return replace(result, transformation=transformation)


class TestLegalityPass:
    def test_clean_result_has_no_findings(self):
        program = flow_dep_program()
        result = access_normalize(program)
        report = analyze_artifacts(program, result=result, passes=[LegalityPass()])
        assert report.diagnostics == ()

    def test_injected_negated_distance_is_leg002(self):
        """An illegal transformation (loop reversal against a flow
        dependence) must be caught with LEG002."""
        program = flow_dep_program()
        result = access_normalize(program)
        reversal = Matrix([[-1, 0], [0, 1]])
        bad = inject_matrix(result, reversal, reversal)
        report = analyze_artifacts(program, result=bad, passes=[LegalityPass()])
        assert "LEG002" in codes(report.diagnostics)
        finding = next(d for d in report.diagnostics if d.code == "LEG002")
        assert finding.severity.label == "error"
        assert "A" in finding.message
        assert "(1, 0)" in finding.message

    def test_singular_matrix_is_leg001(self):
        program = dep_free_program()
        result = access_normalize(program)
        singular = Matrix([[1, 0], [1, 0]])
        bad = inject_matrix(result, singular, singular)
        report = analyze_artifacts(program, result=bad, passes=[LegalityPass()])
        assert codes(report.diagnostics) == ["LEG001"]

    def test_non_integer_matrix_is_leg001(self):
        program = dep_free_program()
        result = access_normalize(program)
        fractional = Matrix([[Fraction(1, 2), 0], [0, 1]])
        bad = inject_matrix(result, fractional, Matrix([[2, 0], [0, 1]]))
        report = analyze_artifacts(program, result=bad, passes=[LegalityPass()])
        assert codes(report.diagnostics) == ["LEG001"]

    def test_wrong_inverse_is_leg001(self):
        program = dep_free_program()
        result = access_normalize(program)
        bad = inject_matrix(result, Matrix.identity(2), Matrix([[1, 1], [0, 1]]))
        report = analyze_artifacts(program, result=bad, passes=[LegalityPass()])
        assert codes(report.diagnostics) == ["LEG001"]

    def test_stride_mismatch_is_leg003(self):
        """A non-unimodular T whose emitted loops kept step 1 violates the
        image-lattice stride requirement."""
        program = dep_free_program()
        result = access_normalize(program)
        scaled = Matrix([[2, 0], [0, 1]])
        bad = inject_matrix(
            result, scaled, Matrix([[Fraction(1, 2), 0], [0, 1]])
        )
        report = analyze_artifacts(program, result=bad, passes=[LegalityPass()])
        assert "LEG003" in codes(report.diagnostics)


class TestBoundsPass:
    def test_in_bounds_program_is_clean(self):
        report = analyze_artifacts(
            dep_free_program(), passes=[BoundsPass()]
        )
        assert report.diagnostics == ()

    def test_out_of_bounds_subscript_is_bnd001_with_witness(self):
        program = make_program(
            loops=[("i", 0, 9)],
            body=["A[i + 2] = A[i + 2] + 1"],
            arrays=[("A", 10)],
            name="oob",
        )
        report = analyze_artifacts(program, passes=[BoundsPass()])
        assert "BND001" in codes(report.diagnostics)
        finding = next(d for d in report.diagnostics if d.code == "BND001")
        assert finding.severity.label == "error"
        # The first violating iteration is i = 8 (subscript value 10).
        assert "i=8" in finding.message
        assert "10" in finding.message

    def test_symbolic_proof_uses_assumptions(self):
        program = make_program(
            loops=[("i", 0, "N-1")],
            body=["A[i] = A[i] + 1"],
            arrays=[("A", "M")],
            name="symbolic",
        )
        clean = analyze_artifacts(
            program, assumptions=("M >= N",), passes=[BoundsPass()]
        )
        assert clean.diagnostics == ()
        unknown = analyze_artifacts(program, passes=[BoundsPass()])
        # Without the fact (and without bound params) the upper side is
        # unprovable — and unfalsifiable, so it is a warning, not an error.
        assert codes(unknown.diagnostics) == ["BND002"]
        assert all(d.severity.label == "warning" for d in unknown.diagnostics)

    def test_concrete_params_fold_into_the_proof(self):
        program = make_program(
            loops=[("i", 0, "N-1")],
            body=["A[i] = A[i] + 1"],
            arrays=[("A", 6)],
            params={"N": 6},
            name="folded",
        )
        report = analyze_artifacts(program, passes=[BoundsPass()])
        assert report.diagnostics == ()


class TestRacePass:
    def racey_program(self):
        """C[j, j] accumulates across i: flow/anti/output all carried by
        the outer (distributed) loop after normalization."""
        return make_program(
            loops=[("i", 0, 5), ("j", 0, 5)],
            body=["C[j, j] = C[j, j] + A[i + j]"],
            arrays=[("A", 11), ("C", 6, 6)],
            distributions={"A": Wrapped(0)},
            name="racey",
        )

    def test_unsynchronized_carried_dependence_is_an_error(self):
        report = analyze_program(self.racey_program(), passes=[RacePass()])
        found = codes(report.diagnostics)
        assert "RACE001" in found
        assert "RACE002" in found

    def test_synchronized_carried_dependence_is_race004_info(self):
        report = analyze_program(
            self.racey_program(), sync=True, passes=[RacePass()]
        )
        found = codes(report.diagnostics)
        assert "RACE001" not in found
        assert "RACE002" not in found
        assert "RACE004" in found
        assert all(d.severity.label == "info" for d in report.diagnostics)

    def test_independent_loop_has_no_findings(self):
        report = analyze_program(dep_free_program(), passes=[RacePass()])
        assert report.diagnostics == ()


class TestLintPass:
    def test_unused_index_is_lint002(self):
        program = make_program(
            loops=[("i", 0, 5), ("j", 0, 5)],
            body=["A[i] = A[i] + 1"],
            arrays=[("A", 6)],
            name="unused",
        )
        report = analyze_artifacts(program, passes=[LintPass()])
        assert "LINT002" in codes(report.diagnostics)
        finding = next(d for d in report.diagnostics if d.code == "LINT002")
        assert finding.span.loop == "j"

    def test_constant_guard_is_lint003(self):
        indices = ["i"]
        guarded = IfThen(
            conditions=(
                ModEq(
                    AffineExpr.parse("2*i"),
                    AffineExpr.constant(2),
                    AffineExpr.constant(1),
                ),
            ),
            body=parse_assignment("A[i] = A[i] + 1", indices),
        )
        program = make_program(
            loops=[("i", 0, 5)],
            body=[guarded],
            arrays=[("A", 6)],
            name="deadguard",
        )
        report = analyze_artifacts(program, passes=[LintPass()])
        assert "LINT003" in codes(report.diagnostics)
        finding = next(d for d in report.diagnostics if d.code == "LINT003")
        assert "always false" in finding.message
        assert "dead" in finding.message

    def test_always_true_guard_is_lint003(self):
        indices = ["i"]
        guarded = IfThen(
            conditions=(
                ModEq(
                    AffineExpr.parse("2*i"),
                    AffineExpr.constant(2),
                    AffineExpr.constant(0),
                ),
            ),
            body=parse_assignment("A[i] = A[i] + 1", indices),
        )
        program = make_program(
            loops=[("i", 0, 5)],
            body=[guarded],
            arrays=[("A", 6)],
            name="trueguard",
        )
        report = analyze_artifacts(program, passes=[LintPass()])
        finding = next(d for d in report.diagnostics if d.code == "LINT003")
        assert "always true" in finding.message


class TestManager:
    def test_pipeline_failure_is_ana001(self):
        # An undeclared array makes validation (and the pipeline) fail.
        program = make_program(
            loops=[("i", 0, 5)],
            body=["A[i] = B[i] + 1"],
            arrays=[("A", 6)],
            name="broken",
        )
        report = analyze_program(program)
        assert "ANA001" in codes(report.diagnostics)
        assert report.has_errors

    def test_crashing_pass_is_ana002_and_does_not_stop_others(self):
        class Exploding:
            name = "exploding"

            def run(self, context):
                raise RuntimeError("boom")

        program = dep_free_program()
        context = build_context(program)
        report = run_passes(context, passes=[Exploding(), LintPass()])
        assert "ANA002" in codes(report.diagnostics)
        finding = next(d for d in report.diagnostics if d.code == "ANA002")
        assert "boom" in finding.message

    def test_full_pipeline_on_clean_program(self):
        report = analyze_program(dep_free_program())
        assert not report.has_errors
